"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package inside its build
environment; on fully offline machines that may be unavailable, in which
case ``python setup.py develop`` installs the same editable package using
only setuptools.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
