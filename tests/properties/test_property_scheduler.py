"""Scheduler/remote property tests: scheduled answers == dict oracle.

The shard-aware scheduler must never change answers, only their
batching: for arbitrary random (possibly disconnected) graphs in both
orientations, bucketed/coalesced/degenerate scheduling over the sharded
engine — and the remote engine over a localhost shard server — must be
bit-identical to per-query ``distance()`` on the dict reference.
"""

import math
import random

import pytest
from hypothesis import given, settings

from repro.core.directed import DirectedISLabelIndex
from repro.core.index import ISLabelIndex
from repro.serving.remote import RemoteEngine
from repro.serving.scheduler import SchedulerPolicy, ShardScheduler
from repro.serving.server import ShardServer
from tests.properties.strategies import digraphs, graphs

#: The degenerate and adversarial policies every example is checked under.
POLICIES = (
    None,  # default: coalesced shard-pair buckets
    SchedulerPolicy(max_batch=1),  # per-query dispatch
    SchedulerPolicy(max_batch=3, coalesce_source=False),  # tiny strict buckets
)


def _all_pairs(graph):
    vertices = sorted(graph.vertices())
    return [(s, t) for s in vertices for t in vertices]


@settings(max_examples=25, deadline=None)
@given(graphs())
def test_scheduled_matches_dict_oracle_undirected(g):
    oracle = ISLabelIndex.build(g, engine="dict")
    served = ISLabelIndex.build(g, engine="sharded")  # spill-and-adopt shards
    pairs = _all_pairs(g)
    expected = [oracle.distance(s, t) for s, t in pairs]
    for policy in POLICIES:
        scheduler = ShardScheduler.for_engine(served, policy=policy)
        assert scheduler.schedule(pairs) == expected


@settings(max_examples=15, deadline=None)
@given(digraphs())
def test_scheduled_matches_dict_oracle_directed(dg):
    oracle = DirectedISLabelIndex.build(dg, engine="dict")
    served = DirectedISLabelIndex.build(dg, engine="sharded")
    pairs = _all_pairs(dg)
    expected = [oracle.distance(s, t) for s, t in pairs]
    for policy in POLICIES:
        scheduler = ShardScheduler.for_engine(served, policy=policy)
        assert scheduler.schedule(pairs) == expected


@settings(max_examples=15, deadline=None)
@given(graphs())
def test_streaming_submit_matches_batch_schedule(g):
    served = ISLabelIndex.build(g, engine="sharded")
    pairs = _all_pairs(g)
    expected = served.distances(pairs)
    scheduler = ShardScheduler.for_engine(
        served, policy=SchedulerPolicy(max_batch=4)
    )
    tickets = [scheduler.submit(s, t) for s, t in pairs]
    results = scheduler.drain()
    assert [results[t] for t in tickets] == expected


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_remote_roundtrip_matches_dict_oracle(seed, tmp_path):
    """Localhost server roundtrip: remote == dict, incl. disconnected."""
    from repro.core.serialization import load_index, save_snapshot
    from repro.serving.server import load_serving_index

    rng = random.Random(seed)
    from repro.graph.graph import Graph

    g = Graph()
    n = rng.randint(12, 40)
    for v in range(n):
        g.add_vertex(v)
    for _ in range(rng.randint(0, 3 * n)):
        u, v = rng.sample(range(n), 2)
        g.merge_edge(u, v, rng.randint(1, 9))
    oracle = ISLabelIndex.build(g, engine="dict")
    path = tmp_path / f"g{seed}.shards"
    save_snapshot(oracle, path, shards=3)
    pairs = _all_pairs(g)
    expected = [oracle.distance(s, t) for s, t in pairs]
    with ShardServer(load_serving_index(str(path))) as server:
        host, port = server.address
        with RemoteEngine(addresses=[(host, port)]) as engine:
            assert engine.distances(pairs) == expected
            degenerate = RemoteEngine(
                addresses=[(host, port)], policy=SchedulerPolicy(max_batch=1)
            )
            sample = pairs[:: max(len(pairs) // 25, 1)]
            want = [expected[pairs.index(p)] for p in sample]
            assert degenerate.distances(sample) == want
            degenerate.close()
    if any(math.isinf(d) for d in expected):
        assert True  # disconnected pairs exercised over the wire
