"""Property-based correctness of the directed index (§8.2)."""

import math

from hypothesis import given, settings

from repro.baselines.dijkstra import dijkstra_digraph
from repro.core.directed import DirectedISLabelIndex
from tests.properties.strategies import digraphs


@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_directed_index_matches_dijkstra(dg):
    index = DirectedISLabelIndex.build(dg)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            assert index.distance(s, t) == truth.get(t, math.inf), (s, t)


@settings(max_examples=30, deadline=None)
@given(digraphs(max_vertices=12))
def test_directed_full_hierarchy_matches(dg):
    index = DirectedISLabelIndex.build(dg, full=True)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            assert index.distance(s, t) == truth.get(t, math.inf)


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_out_in_labels_bound_true_distances(dg):
    index = DirectedISLabelIndex.build(dg)
    for v in dg.vertices():
        forward = dijkstra_digraph(dg, v)
        backward = dijkstra_digraph(dg, v, reverse=True)
        for w, d in index.out_label(v):
            assert d >= forward.get(w, math.inf) or w in forward
            assert d >= forward[w]
        for w, d in index.in_label(v):
            assert d >= backward[w]


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_reachability_consistent(dg):
    index = DirectedISLabelIndex.build(dg)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            assert index.reachable(s, t) == (t in truth)


@settings(max_examples=30, deadline=None)
@given(digraphs(max_vertices=12))
def test_directed_paths_valid_and_tight(dg):
    index = DirectedISLabelIndex.build(dg, with_paths=True)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            dist, path = index.shortest_path(s, t)
            expected = truth.get(t, math.inf)
            assert dist == expected
            if math.isinf(expected):
                assert path is None
            else:
                assert path[0] == s and path[-1] == t
                assert all(dg.has_edge(a, b) for a, b in zip(path, path[1:]))
                assert (
                    sum(dg.weight(a, b) for a, b in zip(path, path[1:]))
                    == expected
                )
