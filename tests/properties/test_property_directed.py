"""Property-based correctness of the directed index (§8.2).

Includes the cross-engine properties: the directed fast engine (packed
out/in label arrays, per-direction CSR search) must be answer-identical to
the dict reference and to a bidirectional Dijkstra oracle on arbitrary
random digraphs — including reachability mode (all weights 1), disconnected
pairs, and serialization round-trips.
"""

import math
import os
import tempfile

from hypothesis import given, settings

from repro.baselines.dijkstra import dijkstra_digraph
from repro.core.directed import DirectedISLabelIndex
from repro.core.query import label_bidijkstra
from repro.core.serialization import load_directed_index, save_directed_index
from tests.properties.strategies import digraphs


def _bidijkstra_oracle(dg, s, t):
    """Directed bidirectional Dijkstra over the whole graph (no labels)."""
    if s == t:
        return 0
    return label_bidijkstra(
        lambda v: dg.successors(v).items(),
        lambda v: dg.predecessors(v).items(),
        [(s, 0)],
        [(t, 0)],
    ).distance


def _all_pairs(dg):
    vertices = sorted(dg.vertices())
    return [(s, t) for s in vertices for t in vertices]


@settings(max_examples=50, deadline=None)
@given(digraphs())
def test_directed_index_matches_dijkstra(dg):
    index = DirectedISLabelIndex.build(dg)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            assert index.distance(s, t) == truth.get(t, math.inf), (s, t)


@settings(max_examples=30, deadline=None)
@given(digraphs(max_vertices=12))
def test_directed_full_hierarchy_matches(dg):
    index = DirectedISLabelIndex.build(dg, full=True)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            assert index.distance(s, t) == truth.get(t, math.inf)


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_out_in_labels_bound_true_distances(dg):
    index = DirectedISLabelIndex.build(dg)
    for v in dg.vertices():
        forward = dijkstra_digraph(dg, v)
        backward = dijkstra_digraph(dg, v, reverse=True)
        for w, d in index.out_label(v):
            assert d >= forward.get(w, math.inf) or w in forward
            assert d >= forward[w]
        for w, d in index.in_label(v):
            assert d >= backward[w]


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_reachability_consistent(dg):
    index = DirectedISLabelIndex.build(dg)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            assert index.reachable(s, t) == (t in truth)


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_directed_engines_agree_with_bidijkstra(dg):
    """fast == dict == bidirectional Dijkstra, per query and batched."""
    fast = DirectedISLabelIndex.build(dg)  # engine="fast" is the default
    ref = DirectedISLabelIndex.build(dg, engine="dict")
    assert fast.engine == "fast" and ref.engine == "dict"
    pairs = _all_pairs(dg)
    got_fast = fast.distances(pairs)
    got_ref = ref.distances(pairs)
    assert got_fast == got_ref
    for (s, t), d in zip(pairs, got_fast):
        assert d == _bidijkstra_oracle(dg, s, t), (s, t)
        assert fast.distance(s, t) == d, (s, t)


@settings(max_examples=25, deadline=None)
@given(digraphs(max_vertices=12))
def test_directed_csr_search_path_engines_agree(dg):
    """Force the flat-array bi-Dijkstra (no distance table) and re-compare."""
    fast = DirectedISLabelIndex.build(dg)
    fast._fast.freeze()
    fast._fast._apsp = None  # drop the G_k table: search must use the CSR path
    fast._fast._apsp_done = None
    assert fast.search_mode == "csr"
    ref = DirectedISLabelIndex.build(dg, engine="dict")
    pairs = _all_pairs(dg)
    assert fast.distances(pairs) == ref.distances(pairs)


@settings(max_examples=40, deadline=None)
@given(digraphs(max_weight=1))
def test_directed_reachability_mode_engines_agree(dg):
    """All weights 1 turns the index into a reachability oracle (§9)."""
    fast = DirectedISLabelIndex.build(dg)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            assert fast.reachable(s, t) == (t in truth), (s, t)
            assert fast.distance(s, t) == truth.get(t, math.inf), (s, t)


@settings(max_examples=25, deadline=None)
@given(digraphs(max_vertices=10), digraphs(max_vertices=6))
def test_directed_disconnected_pairs_are_inf_on_both_engines(dga, dgb):
    """Two disjoint components: every cross pair must be inf on each engine."""
    offset = max(dga.vertices()) + 1
    combined = dga.copy()
    for v in dgb.vertices():
        combined.add_vertex(v + offset)
    for u, v, w in dgb.edges():
        combined.add_edge(u + offset, v + offset, w)
    fast = DirectedISLabelIndex.build(combined)
    ref = DirectedISLabelIndex.build(combined, engine="dict")
    cross = [(s, t + offset) for s in dga.vertices() for t in dgb.vertices()]
    cross += [(t + offset, s) for s in dga.vertices() for t in dgb.vertices()]
    assert all(math.isinf(d) for d in fast.distances(cross))
    assert all(math.isinf(d) for d in ref.distances(cross))


@settings(max_examples=20, deadline=None)
@given(digraphs(max_vertices=12))
def test_directed_serialization_round_trip_engines_agree(dg):
    """Save/load preserves answers under both loaded engines."""
    index = DirectedISLabelIndex.build(dg)
    pairs = _all_pairs(dg)
    expected = index.distances(pairs)
    fd, path = tempfile.mkstemp(suffix=".isld")
    os.close(fd)
    try:
        save_directed_index(index, path)
        loaded_fast = load_directed_index(path)  # engine="fast" default
        loaded_ref = load_directed_index(path, engine="dict")
        assert loaded_fast.engine == "fast" and loaded_ref.engine == "dict"
        assert loaded_fast.distances(pairs) == expected
        assert loaded_ref.distances(pairs) == expected
    finally:
        os.unlink(path)


@settings(max_examples=30, deadline=None)
@given(digraphs(max_vertices=12))
def test_directed_paths_valid_and_tight(dg):
    index = DirectedISLabelIndex.build(dg, with_paths=True)
    for s in dg.vertices():
        truth = dijkstra_digraph(dg, s)
        for t in dg.vertices():
            dist, path = index.shortest_path(s, t)
            expected = truth.get(t, math.inf)
            assert dist == expected
            if math.isinf(expected):
                assert path is None
            else:
                assert path[0] == s and path[-1] == t
                assert all(dg.has_edge(a, b) for a, b in zip(path, path[1:]))
                assert (
                    sum(dg.weight(a, b) for a, b in zip(path, path[1:]))
                    == expected
                )


@settings(max_examples=15, deadline=None)
@given(digraphs())
def test_directed_snapshot_engines_agree(dg):
    """Directed ``mmap``/``sharded`` equal the dict oracle.

    Built directly (temporary-snapshot spill) and through explicit
    snapshot→load→query roundtrips of both layouts; digraphs may be
    unreachable in either direction, exercising ``inf`` answers.
    """
    from repro.core.serialization import save_snapshot

    ref = DirectedISLabelIndex.build(dg, engine="dict")
    pairs = _all_pairs(dg)
    expected = ref.distances(pairs)
    for name in ("mmap", "sharded"):
        built = DirectedISLabelIndex.build(dg, engine=name)
        assert built.engine == name
        assert built.distances(pairs) == expected, name
    fast = DirectedISLabelIndex.build(dg)
    mid = len(pairs) // 2
    with tempfile.TemporaryDirectory() as tmp:
        single = os.path.join(tmp, "dg.snap")
        sharded = os.path.join(tmp, "dg.shards")
        save_snapshot(fast, single)
        save_snapshot(fast, sharded, shards=3)
        for path in (single, sharded):
            for name in ("mmap", "sharded"):
                loaded = load_directed_index(path, engine=name)
                assert loaded.engine == name
                assert loaded.distances(pairs) == expected, (path, name)
                assert loaded.distance(*pairs[mid]) == expected[mid]
