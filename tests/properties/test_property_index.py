"""Property-based end-to-end correctness: every index variant == Dijkstra.

These are the strongest tests in the suite: hypothesis generates arbitrary
weighted graphs (connected and disconnected) and every query answer must
match the reference Dijkstra exactly, for every index configuration.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra
from repro.core.index import ISLabelIndex
from tests.properties.strategies import connected_graphs, graphs


def _assert_all_pairs_match(graph, index):
    for s in graph.vertices():
        truth = dijkstra(graph, s)
        for t in graph.vertices():
            expected = truth.get(t, math.inf)
            assert index.distance(s, t) == expected, (s, t)


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_sigma_index_matches_dijkstra(g):
    _assert_all_pairs_match(g, ISLabelIndex.build(g))


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_full_hierarchy_matches_dijkstra(g):
    _assert_all_pairs_match(g, ISLabelIndex.build(g, full=True))


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(2, 6))
def test_explicit_k_matches_dijkstra(g, k):
    _assert_all_pairs_match(g, ISLabelIndex.build(g, k=k))


@settings(max_examples=30, deadline=None)
@given(connected_graphs())
def test_disk_storage_matches_dijkstra(g):
    _assert_all_pairs_match(g, ISLabelIndex.build(g, storage="disk"))


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(0, 3))
def test_random_is_strategy_matches_dijkstra(g, seed):
    _assert_all_pairs_match(
        g, ISLabelIndex.build(g, is_strategy="random", seed=seed)
    )


@settings(max_examples=30, deadline=None)
@given(connected_graphs(max_vertices=14), st.floats(0.5, 1.0))
def test_any_sigma_matches_dijkstra(g, sigma):
    _assert_all_pairs_match(g, ISLabelIndex.build(g, sigma=sigma))
