"""Property-based invariants of the hierarchy and reduction (§4.1)."""

import math

from hypothesis import given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.hierarchy import build_hierarchy
from repro.core.independent_set import greedy_independent_set, is_independent_set
from repro.core.reduce import reduce_graph
from tests.properties.strategies import graphs


@settings(max_examples=80, deadline=None)
@given(graphs())
def test_greedy_is_independent_and_maximal(g):
    selected, adj_of = greedy_independent_set(g)
    assert is_independent_set(g, selected)
    chosen = set(selected)
    for v in g.vertices():
        assert v in chosen or any(u in chosen for u in g.neighbors(v))
    assert set(adj_of) == chosen


@settings(max_examples=50, deadline=None)
@given(graphs(max_vertices=18))
def test_reduction_preserves_distances(g):
    """Lemma 2 as a universal property."""
    selected, adj_of = greedy_independent_set(g)
    g2 = reduce_graph(g, selected, adj_of)
    for s in g2.vertices():
        before = dijkstra(g, s)
        after = dijkstra(g2, s)
        for t in g2.vertices():
            assert after.get(t, math.inf) == before.get(t, math.inf)


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_hierarchy_partitions_and_levels(g):
    h = build_hierarchy(g)
    # Partition property of Definition 1.
    seen = set()
    for peeled in h.levels:
        assert not set(peeled) & seen
        seen |= set(peeled)
    seen |= set(h.gk.vertices())
    assert seen == set(g.vertices())
    # Level numbers are consistent and removal adjacency points upward.
    h.validate_level_numbers()
    for i in range(1, h.k):
        for v in h.level_vertices(i):
            for u, _ in h.removal_adjacency(v):
                assert h.level(u) > i


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_sigma_trace_monotone_until_stop(g):
    h = build_hierarchy(g, sigma=0.95)
    for i in range(1, len(h.sizes) - 1):
        assert h.sizes[i] <= 0.95 * h.sizes[i - 1]
