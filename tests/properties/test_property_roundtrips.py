"""Property-based round trips: serialization, file formats, updates."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra
from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_index
from repro.core.updates import DynamicISLabelIndex
from repro.graph.io import (
    read_binary_adjacency,
    read_edge_list,
    write_binary_adjacency,
    write_edge_list,
)
from tests.properties.strategies import connected_graphs, graphs


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=16))
def test_index_serialization_round_trip(g):
    import tempfile
    from pathlib import Path

    index = ISLabelIndex.build(g)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "x.islx"
        save_index(index, path)
        loaded = load_index(path)
    for s in g.vertices():
        truth = dijkstra(g, s)
        for t in g.vertices():
            assert loaded.distance(s, t) == truth.get(t, math.inf)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_edge_list_round_trip(g):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_binary_adjacency_round_trip(g):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "g.bin"
        write_binary_adjacency(g, path)
        assert read_binary_adjacency(path) == g


@settings(max_examples=20, deadline=None)
@given(
    connected_graphs(min_vertices=4, max_vertices=14),
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 5)), min_size=1, max_size=4
    ),
)
def test_lazy_inserts_never_underestimate(g, insert_specs):
    """§8.3 invariant: after any insertion sequence, answers >= truth."""
    dyn = DynamicISLabelIndex(g)
    n = g.num_vertices
    for i, (anchor_idx, weight) in enumerate(insert_specs):
        anchor = sorted(dyn.graph.vertices())[anchor_idx % n]
        dyn.insert_vertex(10_000 + i, {anchor: weight})
    for s in dyn.graph.vertices():
        truth = dijkstra(dyn.graph, s)
        for t in dyn.graph.vertices():
            # Upper-bound semantics: never less than the true distance
            # (inf >= finite means a missed route, which is allowed; a
            # value below the truth would be a soundness bug).
            assert dyn.distance(s, t) >= truth.get(t, math.inf)
