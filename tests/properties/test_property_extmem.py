"""Property-based equivalence of external and in-memory algorithms (§6)."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.independent_set import external_independent_set, greedy_independent_set
from repro.core.labeling import external_top_down_labels, top_down_labels
from repro.core.hierarchy import build_hierarchy
from repro.extmem.blockdev import BlockDevice
from repro.extmem.extgraph import ExternalGraph
from repro.extmem.extsort import external_sort
from repro.extmem.iomodel import CostModel
from tests.properties.strategies import graphs

_REC = struct.Struct("<q")


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-(2**40), 2**40), max_size=200), st.integers(64, 256))
def test_external_sort_sorts_anything(values, block_size):
    device = BlockDevice(CostModel(block_size=block_size, memory=4 * block_size))
    src = device.create()
    for v in values:
        src.append(_REC.pack(v))
    src.close()
    out = external_sort(device, src, key=_REC.unpack)
    assert [_REC.unpack(r)[0] for r in out.records()] == sorted(values)


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=20), st.integers(2, 40))
def test_external_is_equals_in_memory(g, buffer_capacity):
    device = BlockDevice(CostModel(block_size=128, memory=2048))
    eg = ExternalGraph.from_graph(device, g)
    adj_li, _ = external_independent_set(
        device, eg, excluded_buffer_capacity=buffer_capacity
    )
    ext = dict(adj_li.rows())
    mem_selected, mem_adj = greedy_independent_set(g)
    assert set(ext) == set(mem_selected)
    assert all(ext[v] == mem_adj[v] for v in mem_selected)


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=18), st.integers(1, 30))
def test_external_labeling_equals_in_memory(g, block_vertices):
    h = build_hierarchy(g)
    expected, _ = top_down_labels(h)
    device = BlockDevice(CostModel(block_size=256, memory=4096))
    got, _ = external_top_down_labels(h, device, block_vertices=block_vertices)
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=20))
def test_external_graph_round_trip(g):
    device = BlockDevice(CostModel(block_size=128, memory=2048))
    assert ExternalGraph.from_graph(device, g).to_graph() == g
