"""Property-based invariants of path reconstruction (§8.1)."""

import math

from hypothesis import given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.index import ISLabelIndex
from repro.core.paths import PathReconstructor, is_valid_path, path_length
from tests.properties.strategies import graphs


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=16))
def test_all_pairs_paths_valid_and_tight(g):
    index = ISLabelIndex.build(g, with_paths=True)
    reconstructor = PathReconstructor(index)
    for s in g.vertices():
        truth = dijkstra(g, s)
        for t in g.vertices():
            dist, path = reconstructor.shortest_path(s, t)
            expected = truth.get(t, math.inf)
            assert dist == expected
            if math.isinf(expected):
                assert path is None
            else:
                assert path[0] == s and path[-1] == t
                assert is_valid_path(g, path)
                assert path_length(g, path) == expected


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=14))
def test_full_hierarchy_paths(g):
    index = ISLabelIndex.build(g, full=True, with_paths=True)
    reconstructor = PathReconstructor(index)
    for s in g.vertices():
        truth = dijkstra(g, s)
        for t in g.vertices():
            dist, path = reconstructor.shortest_path(s, t)
            assert dist == truth.get(t, math.inf)
            if path is not None:
                assert path_length(g, path) == dist


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=14))
def test_paths_have_no_cycles(g):
    reconstructor = PathReconstructor(ISLabelIndex.build(g, with_paths=True))
    for s in g.vertices():
        for t in g.vertices():
            _, path = reconstructor.shortest_path(s, t)
            if path is not None:
                assert len(path) == len(set(path))
