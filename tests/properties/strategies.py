"""Hypothesis strategies for random weighted graphs and digraphs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph


@st.composite
def graphs(
    draw,
    min_vertices: int = 2,
    max_vertices: int = 24,
    max_weight: int = 9,
    edge_density: float = 0.35,
) -> Graph:
    """A random simple weighted graph (possibly disconnected)."""
    n = draw(st.integers(min_vertices, max_vertices))
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    count = draw(st.integers(0, max(1, int(edge_density * len(possible)))))
    chosen = draw(
        st.lists(
            st.sampled_from(possible) if possible else st.nothing(),
            min_size=0,
            max_size=count,
            unique=True,
        )
        if possible
        else st.just([])
    )
    for u, v in chosen:
        g.add_edge(u, v, draw(st.integers(1, max_weight)))
    return g


@st.composite
def connected_graphs(
    draw,
    min_vertices: int = 2,
    max_vertices: int = 20,
    max_weight: int = 9,
) -> Graph:
    """A connected random graph: spanning tree plus extra edges."""
    n = draw(st.integers(min_vertices, max_vertices))
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        g.add_edge(v, parent, draw(st.integers(1, max_weight)))
    extra = draw(st.integers(0, 2 * n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            g.merge_edge(u, v, draw(st.integers(1, max_weight)))
    return g


@st.composite
def digraphs(
    draw,
    min_vertices: int = 2,
    max_vertices: int = 16,
    max_weight: int = 9,
) -> DiGraph:
    """A random simple weighted digraph."""
    n = draw(st.integers(min_vertices, max_vertices))
    dg = DiGraph()
    for v in range(n):
        dg.add_vertex(v)
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(0, min(len(possible), 3 * n)))
    chosen = draw(
        st.lists(st.sampled_from(possible), min_size=0, max_size=count, unique=True)
    )
    for u, v in chosen:
        dg.add_edge(u, v, draw(st.integers(1, max_weight)))
    return dg
