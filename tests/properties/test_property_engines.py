"""Cross-engine property tests: fast engine == dict engine == Dijkstra.

The fast engine (packed array labels, CSR / distance-table search) must be
*bit-identical* to the dict reference on every query — distances, Table 5
query types, I/O accounting — and both must match the Dijkstra oracle,
on arbitrary random weighted graphs including disconnected ones, across
every hierarchy configuration (σ-rule, explicit k, full) and both storage
modes, plus the batch path.
"""

import math
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra
from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_snapshot
from tests.properties.strategies import connected_graphs, graphs


def _all_pairs(graph):
    vertices = sorted(graph.vertices())
    return [(s, t) for s in vertices for t in vertices]


def _assert_engines_and_oracle_agree(graph, **build_kwargs):
    fast = ISLabelIndex.build(graph, engine="fast", **build_kwargs)
    ref = ISLabelIndex.build(graph, engine="dict", **build_kwargs)
    assert fast.engine == "fast" and ref.engine == "dict"
    for s in graph.vertices():
        truth = dijkstra(graph, s)
        for t in graph.vertices():
            expected = truth.get(t, math.inf)
            qf = fast.query(s, t)
            qd = ref.query(s, t)
            assert qf.distance == expected, (s, t, "fast")
            assert qd.distance == expected, (s, t, "dict")
            assert qf.query_type == qd.query_type, (s, t)
            assert qf.label_ios == qd.label_ios, (s, t)
    pairs = _all_pairs(graph)
    assert fast.distances(pairs) == ref.distances(pairs)


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_sigma_engines_agree(g):
    _assert_engines_and_oracle_agree(g)


@settings(max_examples=30, deadline=None)
@given(graphs())
def test_full_hierarchy_engines_agree(g):
    _assert_engines_and_oracle_agree(g, full=True)


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(2, 6))
def test_explicit_k_engines_agree(g, k):
    _assert_engines_and_oracle_agree(g, k=k)


@settings(max_examples=20, deadline=None)
@given(connected_graphs())
def test_disk_storage_engines_agree(g):
    _assert_engines_and_oracle_agree(g, storage="disk")


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=18))
def test_csr_search_path_engines_agree(g):
    """Force the CSR bi-Dijkstra stage (no distance table) and re-compare."""
    fast = ISLabelIndex.build(g, engine="fast")
    fast._fast.freeze()
    fast._fast._apsp = None  # drop the G_k table: search must use the CSR path
    fast._fast._apsp_done = None
    assert fast.search_mode == "csr"
    ref = ISLabelIndex.build(g, engine="dict")
    for s in g.vertices():
        truth = dijkstra(g, s)
        for t in g.vertices():
            expected = truth.get(t, math.inf)
            assert fast.query(s, t).distance == expected, (s, t)
            assert ref.query(s, t).distance == expected, (s, t)


@settings(max_examples=15, deadline=None)
@given(graphs())
def test_snapshot_engines_agree(g):
    """``mmap``/``sharded`` equal the dict oracle on arbitrary graphs.

    Covers both lifecycles: built directly (the engines spill and re-adopt
    a temporary snapshot) and an explicit snapshot→load→query roundtrip of
    single-file and sharded layouts.  ``graphs()`` may be disconnected, so
    ``inf`` answers are exercised throughout.
    """
    ref = ISLabelIndex.build(g, engine="dict")
    pairs = _all_pairs(g)
    expected = ref.distances(pairs)
    for name in ("mmap", "sharded"):
        built = ISLabelIndex.build(g, engine=name)
        assert built.engine == name
        assert built.distances(pairs) == expected, name
    fast = ISLabelIndex.build(g, engine="fast")
    mid = len(pairs) // 2
    with tempfile.TemporaryDirectory() as tmp:
        single = os.path.join(tmp, "g.snap")
        sharded = os.path.join(tmp, "g.shards")
        save_snapshot(fast, single)
        save_snapshot(fast, sharded, shards=3)
        for path in (single, sharded):
            for name in ("mmap", "sharded"):
                loaded = load_index(path, engine=name)
                assert loaded.engine == name
                assert loaded.distances(pairs) == expected, (path, name)
                assert loaded.distance(*pairs[mid]) == expected[mid]


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=16))
def test_query_types_cover_all_three(g):
    """Per-query Table 5 types agree between engines for every pair."""
    fast = ISLabelIndex.build(g, engine="fast")
    ref = ISLabelIndex.build(g, engine="dict")
    for s in g.vertices():
        for t in g.vertices():
            assert fast.query(s, t).query_type == ref.query(s, t).query_type
