"""Cross-engine property tests for §8.3 dynamic maintenance.

Random interleavings of insert_vertex / delete_vertex / query over three
instances of the same dynamic index — fast with incremental invalidation,
fast with the incremental path disabled (every update forces a full
re-freeze), and the dict reference — must agree on every answer, on both
orientations.  All three run the same label maintenance, so agreement is
exact; the fast configurations additionally exercise the engine's
incremental re-pack, the APSP grow/pivot-repair, and the full-drop
fallback (G_k deletions).  Insert-only undirected sequences are also
checked against the Dijkstra oracle for the paper's upper-bound guarantee.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.updates import DynamicDirectedISLabelIndex, DynamicISLabelIndex
from tests.properties.strategies import connected_graphs, digraphs

_FRESH_ID = 100_000


def _triple(graph, cls, **kwargs):
    """(incremental-fast, forced-full-fast, dict) over the same graph."""
    incremental = cls(graph, **kwargs)
    full = cls(graph, **kwargs)
    full.index._fast.incremental_max_fraction = 0.0
    reference = cls(graph, engine="dict", **kwargs)
    assert incremental.engine == "fast" and reference.engine == "dict"
    return incremental, full, reference


def _assert_agree(dyns, rng, queries=25):
    vertices = sorted(dyns[0].graph.vertices())
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(queries)]
    incremental, full, reference = dyns
    expected = [reference.distance(s, t) for s, t in pairs]
    assert [incremental.distance(s, t) for s, t in pairs] == expected
    assert [full.distance(s, t) for s, t in pairs] == expected
    # The batch path must agree with the single-query path.
    assert incremental.distances(pairs) == expected


@settings(max_examples=20, deadline=None)
@given(connected_graphs(max_vertices=14), st.integers(0, 2**32 - 1))
def test_undirected_interleavings_agree(g, seed):
    rng = random.Random(seed)
    dyns = _triple(g, DynamicISLabelIndex)
    next_id = _FRESH_ID
    for _ in range(8):
        vertices = sorted(dyns[0].graph.vertices())
        if rng.random() < 0.65 or len(vertices) <= 2:
            adjacency = {
                v: rng.randint(1, 4)
                for v in rng.sample(vertices, rng.randint(1, min(3, len(vertices))))
            }
            for dyn in dyns:
                dyn.insert_vertex(next_id, dict(adjacency))
            next_id += 1
        else:
            victim = rng.choice(vertices)
            for dyn in dyns:
                dyn.delete_vertex(victim)
        _assert_agree(dyns, rng)


@settings(max_examples=20, deadline=None)
@given(connected_graphs(max_vertices=12), st.integers(0, 2**32 - 1))
def test_undirected_inserts_never_underestimate(g, seed):
    """Insert-only sequences keep the paper's upper-bound guarantee."""
    rng = random.Random(seed)
    dyn = DynamicISLabelIndex(g)
    next_id = _FRESH_ID
    for _ in range(5):
        vertices = sorted(dyn.graph.vertices())
        adjacency = {
            v: rng.randint(1, 4)
            for v in rng.sample(vertices, rng.randint(1, min(3, len(vertices))))
        }
        dyn.insert_vertex(next_id, adjacency)
        next_id += 1
    vertices = sorted(dyn.graph.vertices())
    for _ in range(20):
        s, t = rng.choice(vertices), rng.choice(vertices)
        assert dyn.distance(s, t) >= dijkstra_distance(dyn.graph, s, t)


@settings(max_examples=20, deadline=None)
@given(digraphs(max_vertices=10), st.integers(0, 2**32 - 1))
def test_directed_interleavings_agree(g, seed):
    rng = random.Random(seed)
    dyns = _triple(g, DynamicDirectedISLabelIndex)
    next_id = _FRESH_ID
    for _ in range(7):
        vertices = sorted(dyns[0].graph.vertices())
        if rng.random() < 0.65 or len(vertices) <= 2:
            outs = {
                v: rng.randint(1, 4)
                for v in rng.sample(vertices, rng.randint(0, min(2, len(vertices))))
            }
            ins = {
                v: rng.randint(1, 4)
                for v in rng.sample(vertices, rng.randint(0, min(2, len(vertices))))
                if v not in outs
            }
            if not outs and not ins:
                outs = {rng.choice(vertices): rng.randint(1, 4)}
            for dyn in dyns:
                dyn.insert_vertex(next_id, dict(outs), dict(ins))
            next_id += 1
        else:
            victim = rng.choice(vertices)
            for dyn in dyns:
                dyn.delete_vertex(victim)
        _assert_agree(dyns, rng)


@settings(max_examples=10, deadline=None)
@given(connected_graphs(max_vertices=12), st.integers(0, 2**32 - 1))
def test_rebuild_restores_dijkstra_exactness(g, seed):
    """After arbitrary updates, rebuild() restores exact answers everywhere."""
    rng = random.Random(seed)
    dyn = DynamicISLabelIndex(g)
    next_id = _FRESH_ID
    for _ in range(4):
        vertices = sorted(dyn.graph.vertices())
        if rng.random() < 0.6 or len(vertices) <= 2:
            dyn.insert_vertex(next_id, {rng.choice(vertices): rng.randint(1, 4)})
            next_id += 1
        else:
            dyn.delete_vertex(rng.choice(vertices))
    dyn.rebuild()
    assert dyn.staleness == 0 and not dyn.approximate
    vertices = sorted(dyn.graph.vertices())
    for _ in range(15):
        s, t = rng.choice(vertices), rng.choice(vertices)
        expected = dijkstra_distance(dyn.graph, s, t)
        assert dyn.distance(s, t) == expected
        assert math.isinf(expected) or dyn.exact_distance(s, t) == expected
