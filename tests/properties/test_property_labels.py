"""Property-based invariants of the labeling (§4.2, Lemmas 4-5)."""

import math

from hypothesis import given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.hierarchy import build_hierarchy
from repro.core.labeling import definition3_label, top_down_labels
from tests.properties.strategies import graphs


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_topdown_equals_definition3(g):
    """Corollary 1 as a universal property."""
    h = build_hierarchy(g)
    labels, _ = top_down_labels(h)
    for v in g.vertices():
        assert labels[v] == definition3_label(h, v)


@settings(max_examples=50, deadline=None)
@given(graphs())
def test_label_entries_are_reachable_upper_bounds(g):
    h = build_hierarchy(g)
    labels, _ = top_down_labels(h)
    for v in g.vertices():
        truth = dijkstra(g, v)
        label = labels[v]
        assert label[v] == 0
        for w, d in label.items():
            assert w in truth, "label entries must be reachable"
            assert d >= truth[w]
            assert h.level(w) >= h.level(v)


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=16))
def test_max_level_gateway_is_exact(g):
    """Lemma 5: for connected s,t the max-level vertex of some shortest
    path appears in both labels with exact distances."""
    h = build_hierarchy(g, full=True)
    labels, _ = top_down_labels(h)
    vertices = sorted(g.vertices())
    for s in vertices:
        truth_s = dijkstra(g, s)
        for t in vertices:
            if t not in truth_s:
                continue
            best = math.inf
            for w, ds in labels[s].items():
                dt = labels[t].get(w)
                if dt is not None:
                    best = min(best, ds + dt)
            assert best == truth_s[t], (s, t)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_pred_entries_decompose_distances(g):
    h = build_hierarchy(g)
    labels, preds = top_down_labels(h, with_preds=True)
    for v in g.vertices():
        if h.in_gk(v):
            continue
        adjacency = dict(h.removal_adjacency(v))
        for w, pred in preds[v].items():
            if pred is None:
                continue
            assert labels[v][w] == adjacency[pred] + labels[pred][w]
