"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("1 2 4\n1 3 1\n3 2 2\n2 4 5\n4 5 1\n")
    return path


@pytest.fixture
def built(edge_list, tmp_path):
    index_path = tmp_path / "g.islx"
    code = main(["build", str(edge_list), "-o", str(index_path), "--with-paths"])
    assert code == 0
    return index_path


def test_build_reports_stats(edge_list, tmp_path, capsys):
    index_path = tmp_path / "out.islx"
    assert main(["build", str(edge_list), "-o", str(index_path)]) == 0
    out = capsys.readouterr().out
    assert "|V|=5" in out
    assert index_path.exists()


def test_build_full_mode(edge_list, tmp_path):
    index_path = tmp_path / "full.islx"
    assert main(["build", str(edge_list), "-o", str(index_path), "--full"]) == 0


def test_build_explicit_k(edge_list, tmp_path, capsys):
    index_path = tmp_path / "k2.islx"
    assert main(["build", str(edge_list), "-o", str(index_path), "--k", "2"]) == 0
    assert "k=2" in capsys.readouterr().out


def test_query_distance(built, capsys):
    assert main(["query", str(built), "1", "5"]) == 0
    assert "dist(1, 5) = 9" in capsys.readouterr().out


def test_query_with_path(built, capsys):
    assert main(["query", str(built), "1", "5", "--path"]) == 0
    out = capsys.readouterr().out
    assert "dist(1, 5) = 9" in out
    assert "->" in out


def test_query_disconnected_prints_inf(tmp_path, capsys):
    graph = tmp_path / "disc.txt"
    graph.write_text("1 2\n8 9\n")
    index_path = tmp_path / "disc.islx"
    main(["build", str(graph), "-o", str(index_path)])
    assert main(["query", str(index_path), "1", "9"]) == 0
    assert "inf" in capsys.readouterr().out


def test_query_unknown_vertex_fails_cleanly(built, capsys):
    assert main(["query", str(built), "1", "999"]) == 2
    assert "error" in capsys.readouterr().err


def test_stats_command(built, capsys):
    assert main(["stats", str(built)]) == 0
    out = capsys.readouterr().out
    assert "label entries" in out
    assert "G_k vertices" in out


def test_dataset_command(tmp_path, capsys):
    out_path = tmp_path / "google.txt"
    assert main(["dataset", "google", "-o", str(out_path), "--scale", "0.05"]) == 0
    assert out_path.exists()
    assert "avg deg" in capsys.readouterr().out


def test_dataset_then_build_round_trip(tmp_path):
    data = tmp_path / "wiki.txt"
    index_path = tmp_path / "wiki.islx"
    assert main(["dataset", "wikitalk", "-o", str(data), "--scale", "0.05"]) == 0
    assert main(["build", str(data), "-o", str(index_path)]) == 0
    assert main(["stats", str(index_path)]) == 0


@pytest.fixture
def directed_edge_list(tmp_path):
    path = tmp_path / "dg.txt"
    path.write_text("1 2 4\n2 3 1\n3 1 2\n3 4 5\n4 5 1\n")
    return path


@pytest.fixture
def built_directed(directed_edge_list, tmp_path):
    index_path = tmp_path / "dg.isld"
    code = main(
        [
            "build-directed",
            str(directed_edge_list),
            "-o",
            str(index_path),
            "--with-paths",
        ]
    )
    assert code == 0
    return index_path


def test_build_directed_reports_stats(directed_edge_list, tmp_path, capsys):
    index_path = tmp_path / "out.isld"
    assert main(["build-directed", str(directed_edge_list), "-o", str(index_path)]) == 0
    out = capsys.readouterr().out
    assert "directed index" in out
    assert index_path.exists()


@pytest.mark.parametrize("engine", ["fast", "dict"])
def test_query_directed_both_engines(built_directed, capsys, engine):
    assert main(
        ["query-directed", str(built_directed), "1", "5", "--engine", engine]
    ) == 0
    assert "dist(1, 5) = 11" in capsys.readouterr().out


def test_query_directed_unreachable_prints_inf(built_directed, capsys):
    assert main(["query-directed", str(built_directed), "5", "1"]) == 0
    assert "inf" in capsys.readouterr().out


def test_query_directed_with_path(built_directed, capsys):
    assert main(["query-directed", str(built_directed), "1", "5", "--path"]) == 0
    out = capsys.readouterr().out
    assert "dist(1, 5) = 11" in out
    assert "->" in out


def test_build_directed_engine_flag(directed_edge_list, tmp_path):
    index_path = tmp_path / "dict.isld"
    assert (
        main(
            [
                "build-directed",
                str(directed_edge_list),
                "-o",
                str(index_path),
                "--engine",
                "dict",
            ]
        )
        == 0
    )
    assert index_path.exists()


def test_query_directed_rejects_undirected_index(built, capsys):
    assert main(["query-directed", str(built), "1", "5"]) == 2
    assert "error" in capsys.readouterr().err


def test_example_command(capsys):
    assert main(["example"]) == 0
    out = capsys.readouterr().out
    assert "L1 = {c, f, i}" in out
    assert "dist(h, e) = 3" in out


def test_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "ghost.islx")]) == 2
    assert "error" in capsys.readouterr().err


def test_module_entry_point():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "example"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "Figure 1" in result.stdout
