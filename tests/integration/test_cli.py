"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("1 2 4\n1 3 1\n3 2 2\n2 4 5\n4 5 1\n")
    return path


@pytest.fixture
def built(edge_list, tmp_path):
    index_path = tmp_path / "g.islx"
    code = main(["build", str(edge_list), "-o", str(index_path), "--with-paths"])
    assert code == 0
    return index_path


def test_build_reports_stats(edge_list, tmp_path, capsys):
    index_path = tmp_path / "out.islx"
    assert main(["build", str(edge_list), "-o", str(index_path)]) == 0
    out = capsys.readouterr().out
    assert "|V|=5" in out
    assert index_path.exists()


def test_build_full_mode(edge_list, tmp_path):
    index_path = tmp_path / "full.islx"
    assert main(["build", str(edge_list), "-o", str(index_path), "--full"]) == 0


def test_build_explicit_k(edge_list, tmp_path, capsys):
    index_path = tmp_path / "k2.islx"
    assert main(["build", str(edge_list), "-o", str(index_path), "--k", "2"]) == 0
    assert "k=2" in capsys.readouterr().out


def test_query_distance(built, capsys):
    assert main(["query", str(built), "1", "5"]) == 0
    assert "dist(1, 5) = 9" in capsys.readouterr().out


def test_query_with_path(built, capsys):
    assert main(["query", str(built), "1", "5", "--path"]) == 0
    out = capsys.readouterr().out
    assert "dist(1, 5) = 9" in out
    assert "->" in out


def test_query_disconnected_prints_inf(tmp_path, capsys):
    graph = tmp_path / "disc.txt"
    graph.write_text("1 2\n8 9\n")
    index_path = tmp_path / "disc.islx"
    main(["build", str(graph), "-o", str(index_path)])
    assert main(["query", str(index_path), "1", "9"]) == 0
    assert "inf" in capsys.readouterr().out


def test_query_unknown_vertex_fails_cleanly(built, capsys):
    assert main(["query", str(built), "1", "999"]) == 2
    assert "error" in capsys.readouterr().err


def test_stats_command(built, capsys):
    assert main(["stats", str(built)]) == 0
    out = capsys.readouterr().out
    assert "label entries" in out
    assert "G_k vertices" in out


def test_dataset_command(tmp_path, capsys):
    out_path = tmp_path / "google.txt"
    assert main(["dataset", "google", "-o", str(out_path), "--scale", "0.05"]) == 0
    assert out_path.exists()
    assert "avg deg" in capsys.readouterr().out


def test_dataset_then_build_round_trip(tmp_path):
    data = tmp_path / "wiki.txt"
    index_path = tmp_path / "wiki.islx"
    assert main(["dataset", "wikitalk", "-o", str(data), "--scale", "0.05"]) == 0
    assert main(["build", str(data), "-o", str(index_path)]) == 0
    assert main(["stats", str(index_path)]) == 0


@pytest.fixture
def directed_edge_list(tmp_path):
    path = tmp_path / "dg.txt"
    path.write_text("1 2 4\n2 3 1\n3 1 2\n3 4 5\n4 5 1\n")
    return path


@pytest.fixture
def built_directed(directed_edge_list, tmp_path):
    index_path = tmp_path / "dg.isld"
    code = main(
        [
            "build-directed",
            str(directed_edge_list),
            "-o",
            str(index_path),
            "--with-paths",
        ]
    )
    assert code == 0
    return index_path


def test_build_directed_reports_stats(directed_edge_list, tmp_path, capsys):
    index_path = tmp_path / "out.isld"
    assert main(["build-directed", str(directed_edge_list), "-o", str(index_path)]) == 0
    out = capsys.readouterr().out
    assert "directed index" in out
    assert index_path.exists()


@pytest.mark.parametrize("engine", ["fast", "dict"])
def test_query_directed_both_engines(built_directed, capsys, engine):
    assert main(
        ["query-directed", str(built_directed), "1", "5", "--engine", engine]
    ) == 0
    assert "dist(1, 5) = 11" in capsys.readouterr().out


def test_query_directed_unreachable_prints_inf(built_directed, capsys):
    assert main(["query-directed", str(built_directed), "5", "1"]) == 0
    assert "inf" in capsys.readouterr().out


def test_query_directed_with_path(built_directed, capsys):
    assert main(["query-directed", str(built_directed), "1", "5", "--path"]) == 0
    out = capsys.readouterr().out
    assert "dist(1, 5) = 11" in out
    assert "->" in out


def test_build_directed_engine_flag(directed_edge_list, tmp_path):
    index_path = tmp_path / "dict.isld"
    assert (
        main(
            [
                "build-directed",
                str(directed_edge_list),
                "-o",
                str(index_path),
                "--engine",
                "dict",
            ]
        )
        == 0
    )
    assert index_path.exists()


def test_query_directed_rejects_undirected_index(built, capsys):
    assert main(["query-directed", str(built), "1", "5"]) == 2
    assert "error" in capsys.readouterr().err


def test_example_command(capsys):
    assert main(["example"]) == 0
    out = capsys.readouterr().out
    assert "L1 = {c, f, i}" in out
    assert "dist(h, e) = 3" in out


def test_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "ghost.islx")]) == 2
    assert "error" in capsys.readouterr().err


def test_module_entry_point():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "example"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "Figure 1" in result.stdout


class TestServeCommands:
    """`repro serve` + `serve-bench --remote` against a live fleet."""

    @pytest.fixture()
    def sharded_snapshot(self, edge_list, tmp_path):
        index_path = tmp_path / "srv.islx"
        snap_path = tmp_path / "srv.shards"
        assert main(["build", str(edge_list), "-o", str(index_path)]) == 0
        assert (
            main(["snapshot", str(index_path), "-o", str(snap_path), "--shards", "2"])
            == 0
        )
        return index_path, snap_path

    def test_serve_bench_remote_flag(self, sharded_snapshot, capsys):
        from repro.serving.server import ShardServer, load_serving_index

        index_path, snap_path = sharded_snapshot
        with ShardServer(load_serving_index(str(snap_path))) as server:
            host, port = server.address
            code = main(
                [
                    "serve-bench",
                    str(index_path),
                    "--remote",
                    f"{host}:{port}",
                    "--queries",
                    "50",
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "engine=remote" in out
            assert server.queries_served >= 50

    def test_serve_bench_remote_unreachable_fails_cleanly(
        self, sharded_snapshot, capsys
    ):
        import socket

        index_path, _ = sharded_snapshot
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        code = main(
            ["serve-bench", str(index_path), "--remote", f"127.0.0.1:{free_port}"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_serve_command_announces_and_shuts_down(self, sharded_snapshot):
        import json
        import os
        import socket
        import subprocess
        import sys

        from repro.serving import wire

        _, snap_path = sharded_snapshot
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(snap_path),
                "--owned",
                "0",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("SERVING ")
            assert "owned=0" in line and "shards=2" in line
            host, _, port = line.split()[1].rpartition(":")
            sock = socket.create_connection((host, int(port)), timeout=10)
            try:
                hello = wire.request(sock, {"op": "hello"})
                assert hello["owned"] == [0]
                assert wire.request(sock, {"op": "shutdown"}).get("bye")
            finally:
                sock.close()
            assert proc.wait(timeout=15) == 0  # reaped, exit code clean
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            proc.stdout.close()
