"""Integration tests: full pipelines over the dataset stand-ins."""

import math

import pytest

from repro.baselines.dijkstra import bidirectional_dijkstra, dijkstra_distance
from repro.baselines.pruned_landmark import PrunedLandmarkIndex
from repro.baselines.vc_index import VCIndex
from repro.core.index import ISLabelIndex
from repro.core.paths import PathReconstructor, path_length
from repro.core.serialization import load_index, save_index
from repro.workloads.datasets import DATASET_NAMES, load_dataset
from repro.workloads.queries import random_query_pairs

SCALE = 0.06
QUERIES = 40


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_all_systems_agree_on_every_dataset(name):
    """IS-LABEL (both storages), VC-Index, PLL and both Dijkstras agree."""
    graph = load_dataset(name, SCALE)
    pairs = random_query_pairs(graph, QUERIES, seed=5)
    disk = ISLabelIndex.build(graph, storage="disk")
    mem = ISLabelIndex.build(graph, storage="memory")
    vc = VCIndex.build(graph)
    pll = PrunedLandmarkIndex.build(graph)
    for s, t in pairs:
        truth = dijkstra_distance(graph, s, t)
        assert disk.distance(s, t) == truth
        assert mem.distance(s, t) == truth
        assert vc.distance(s, t) == truth
        assert pll.distance(s, t) == truth
        assert bidirectional_dijkstra(graph, s, t) == truth


@pytest.mark.parametrize("name", ("google", "wikitalk"))
def test_build_query_save_load_cycle(name, tmp_path):
    graph = load_dataset(name, SCALE)
    index = ISLabelIndex.build(graph, with_paths=True)
    file_path = tmp_path / f"{name}.islx"
    save_index(index, file_path)
    loaded = load_index(file_path)

    reconstructor = PathReconstructor(loaded)
    for s, t in random_query_pairs(graph, 25, seed=7):
        truth = dijkstra_distance(graph, s, t)
        assert loaded.distance(s, t) == truth
        dist, path = reconstructor.shortest_path(s, t)
        assert dist == truth
        if path is not None:
            assert path_length(graph, path) == truth


@pytest.mark.parametrize("name", ("google", "skitter"))
def test_sigma_sweep_consistency(name):
    """Different σ values give different indexes, identical answers."""
    graph = load_dataset(name, SCALE)
    pairs = random_query_pairs(graph, 25, seed=9)
    indexes = [ISLabelIndex.build(graph, sigma=s) for s in (0.99, 0.95, 0.90, 0.5)]
    for s, t in pairs:
        answers = {ix.distance(s, t) for ix in indexes}
        assert len(answers) == 1


def test_k_sweep_consistency():
    graph = load_dataset("google", SCALE)
    auto = ISLabelIndex.build(graph)
    pairs = random_query_pairs(graph, 25, seed=11)
    for k in range(2, auto.k + 2):
        index = ISLabelIndex.build(graph, k=k)
        for s, t in pairs:
            assert index.distance(s, t) == auto.distance(s, t)


def test_query_report_totals_consistent():
    graph = load_dataset("wikitalk", SCALE)
    index = ISLabelIndex.build(graph, storage="disk")
    summary_ios = 0
    for s, t in random_query_pairs(graph, 30, seed=13):
        report = index.query(s, t)
        summary_ios += report.label_ios
        assert report.distance >= 0 or math.isinf(report.distance)
    assert index.io_stats.block_reads == summary_ios
