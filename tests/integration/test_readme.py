"""The README's Python code blocks must actually execute.

The README doubles as the repo's front door and its quickstart is the
first code a new user runs; this test extracts every fenced ``python``
block (in order, sharing one namespace, exactly as a reader would paste
them into a session) and executes it.  A README edit that breaks an
example fails CI instead of rotting silently.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    return _BLOCK.findall(README.read_text(encoding="utf-8"))


def test_readme_exists_and_has_python_examples():
    assert README.exists(), "the repo needs a root README.md"
    assert len(_python_blocks()) >= 3, "README should carry runnable examples"


def test_readme_python_blocks_execute():
    namespace = {}
    for i, block in enumerate(_python_blocks()):
        try:
            exec(compile(block, f"README.md[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"README python block {i} failed: {exc}\n---\n{block}")


def test_readme_mentions_the_front_door_essentials():
    text = README.read_text(encoding="utf-8")
    for needle in (
        "docs/ARCHITECTURE.md",
        "examples/",
        "benchmarks/",
        "--engine",
        "ROADMAP.md",
    ):
        assert needle in text, f"README should reference {needle}"
