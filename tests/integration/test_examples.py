"""Smoke tests: every example script runs to completion.

The examples double as documentation; this keeps them from rotting.  Each
is executed in-process via runpy (they all have a fast main()).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least 3 examples"


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} should print something"


def test_quickstart_output_mentions_distance(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "dist(1, 5) = 9" in out
    assert "shortest path" in out


def test_walkthrough_matches_paper(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "paper_walkthrough.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "dist(h, e) = 3  (paper: 3)  [ok]" in out
    assert "MISMATCH" not in out


def test_dynamic_updates_serves_from_fast_engine(capsys):
    """The §8.3 example demonstrates the incremental fast path end to end."""
    runpy.run_path(str(EXAMPLES_DIR / "dynamic_updates.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "engine=fast" in out
    # Updates must not drop the engine to the dict path or force re-freezes.
    assert out.count("engine still frozen=True (incremental invalidation)") == 3
    assert "engine still frozen=False" not in out
    # The dict reference runs the same maintenance and must agree.
    assert out.count("fast == dict on 100 sampled queries: True") == 3
    assert "fast == dict on 100 sampled queries: False" not in out
    assert "after a departure: approximate=True" in out
    assert "final rebuild: exactness=100.0%" in out
