"""Property tests for the hot-pair cache and the cached:* engine tier.

The contract under test is *transparency*: a ``cached:fast`` dynamic
index replaying random §8.3 interleavings (insert_vertex /
delete_vertex / query) must answer bit-identically to the uncached fast
engine and the dict reference at every step, on both orientations —
including the queries answered straight from the cache immediately
after an invalidation wave.  Alongside the end-to-end interleavings,
the :class:`~repro.caching.cache.DistanceCache` mechanics (TTL expiry,
LRU + byte-budget eviction, targeted invalidation vs the conservative
full flush, namespace isolation) are pinned with a fake clock, and the
hub-sketch tier is checked for its one-sided error contract: bounds
never under-report, and entries flagged exact really are.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra_distance
from repro.caching import APPROX, EXACT, ENTRY_BYTES, DistanceCache
from repro.caching.engine import CachedEngine
from repro.core.directed import DirectedISLabelIndex
from repro.core.index import ISLabelIndex
from repro.core.updates import DynamicDirectedISLabelIndex, DynamicISLabelIndex
from repro.errors import IndexBuildError, QueryError
from repro.graph.graph import Graph
from tests.properties.strategies import connected_graphs, digraphs

_FRESH_ID = 100_000


class FakeClock:
    """Injectable monotonic clock so TTL tests never sleep."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _lookup(cache, s, t, namespace=EXACT):
    """The cached value, or ``None`` on a miss (unpacks ``(hit, value)``)."""
    hit, value = cache.lookup(s, t, namespace)
    return value if hit else None


# ----------------------------------------------------------------------
# §8.3 interleavings: cached == uncached == dict, both orientations
# ----------------------------------------------------------------------
def _assert_cached_agrees(cached, fast, reference, rng, queries=25):
    vertices = sorted(cached.graph.vertices())
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(queries)]
    expected = [reference.distance(s, t) for s, t in pairs]
    assert [fast.distance(s, t) for s, t in pairs] == expected
    assert cached.distances(pairs) == expected
    # Replay: the second pass is served (at least partly) from the cache
    # and must stay bit-identical to the engine answers.
    assert cached.distances(pairs) == expected
    assert [cached.distance(s, t) for s, t in pairs] == expected


@settings(max_examples=15, deadline=None)
@given(connected_graphs(max_vertices=14), st.integers(0, 2**32 - 1))
def test_undirected_interleavings_cached_agrees(g, seed):
    rng = random.Random(seed)
    cached = DynamicISLabelIndex(g, engine="cached:fast")
    fast = DynamicISLabelIndex(g)
    reference = DynamicISLabelIndex(g, engine="dict")
    assert cached.engine == "cached:fast"
    next_id = _FRESH_ID
    for _ in range(7):
        vertices = sorted(cached.graph.vertices())
        if rng.random() < 0.65 or len(vertices) <= 2:
            adjacency = {
                v: rng.randint(1, 4)
                for v in rng.sample(vertices, rng.randint(1, min(3, len(vertices))))
            }
            for dyn in (cached, fast, reference):
                dyn.insert_vertex(next_id, dict(adjacency))
            next_id += 1
        else:
            victim = rng.choice(vertices)
            for dyn in (cached, fast, reference):
                dyn.delete_vertex(victim)
        _assert_cached_agrees(cached, fast, reference, rng)


@settings(max_examples=12, deadline=None)
@given(digraphs(max_vertices=10), st.integers(0, 2**32 - 1))
def test_directed_interleavings_cached_agrees(g, seed):
    rng = random.Random(seed)
    cached = DynamicDirectedISLabelIndex(g, engine="cached:fast")
    fast = DynamicDirectedISLabelIndex(g)
    reference = DynamicDirectedISLabelIndex(g, engine="dict")
    assert cached.engine == "cached:fast"
    next_id = _FRESH_ID
    for _ in range(6):
        vertices = sorted(cached.graph.vertices())
        if rng.random() < 0.65 or len(vertices) <= 2:
            outs = {
                v: rng.randint(1, 4)
                for v in rng.sample(vertices, rng.randint(0, min(2, len(vertices))))
            }
            ins = {
                v: rng.randint(1, 4)
                for v in rng.sample(vertices, rng.randint(0, min(2, len(vertices))))
                if v not in outs
            }
            if not outs and not ins:
                outs = {rng.choice(vertices): rng.randint(1, 4)}
            for dyn in (cached, fast, reference):
                dyn.insert_vertex(next_id, dict(outs), dict(ins))
            next_id += 1
        else:
            victim = rng.choice(vertices)
            for dyn in (cached, fast, reference):
                dyn.delete_vertex(victim)
        _assert_cached_agrees(cached, fast, reference, rng)


# ----------------------------------------------------------------------
# DistanceCache mechanics (fake clock — no sleeping)
# ----------------------------------------------------------------------
class TestTTL:
    def test_entries_expire_at_lookup_time(self):
        clock = FakeClock()
        cache = DistanceCache(ttl_s=10.0, clock=clock)
        cache.put(1, 2, 3.5)
        assert _lookup(cache, 1, 2) == 3.5
        clock.advance(9.9)
        assert _lookup(cache, 1, 2) == 3.5
        clock.advance(0.2)
        assert _lookup(cache, 1, 2) is None
        stats = cache.stats()
        assert stats["expired"] == 1 and stats["misses"] == 1

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = DistanceCache(ttl_s=10.0, clock=clock)
        cache.put(1, 2, 3.5)
        clock.advance(8.0)
        cache.put(1, 2, 3.5)
        clock.advance(8.0)
        assert _lookup(cache, 1, 2) == 3.5

    def test_bad_ttl_rejected(self):
        with pytest.raises(QueryError):
            DistanceCache(ttl_s=0.0)
        with pytest.raises(QueryError):
            DistanceCache(ttl_s=-1.0)


class TestCapacity:
    def test_lru_eviction_order(self):
        cache = DistanceCache(max_entries=2)
        cache.put(1, 2, 1.0)
        cache.put(3, 4, 2.0)
        assert _lookup(cache, 1, 2) == 1.0  # touch → (3,4) is now LRU
        cache.put(5, 6, 3.0)
        assert _lookup(cache, 3, 4) is None
        assert _lookup(cache, 1, 2) == 1.0
        assert cache.stats()["evictions"] == 1

    def test_byte_budget_enforced(self):
        cache = DistanceCache(max_entries=1000, max_bytes=3 * ENTRY_BYTES)
        for i in range(5):
            cache.put(i, i + 100, float(i))
        assert len(cache) == 3
        assert cache.bytes <= 3 * ENTRY_BYTES

    def test_bad_budgets_rejected(self):
        with pytest.raises(QueryError):
            DistanceCache(max_entries=0)
        with pytest.raises(QueryError):
            DistanceCache(max_bytes=ENTRY_BYTES - 1)


class TestKeysAndNamespaces:
    def test_undirected_keys_canonicalize(self):
        cache = DistanceCache()
        cache.put(7, 3, 2.0)
        assert _lookup(cache, 3, 7) == 2.0

    def test_directed_keys_are_ordered(self):
        cache = DistanceCache(directed=True)
        cache.put(7, 3, 2.0)
        assert _lookup(cache, 3, 7) is None
        assert _lookup(cache, 7, 3) == 2.0

    def test_approx_namespace_invisible_to_exact(self):
        cache = DistanceCache()
        cache.put(1, 2, 5.0, namespace=APPROX)
        assert _lookup(cache, 1, 2) is None
        assert _lookup(cache, 1, 2, namespace=APPROX) == 5.0
        cache.put(1, 2, 4.0, namespace=EXACT)
        assert _lookup(cache, 1, 2, namespace=APPROX) == 5.0

    def test_invalidate_evicts_both_namespaces(self):
        cache = DistanceCache()
        for v in range(20):
            cache.put(v, v + 100, 1.0)
        cache.put(1, 101, 2.0, namespace=APPROX)
        cache.invalidate({1})
        assert _lookup(cache, 1, 101) is None
        assert _lookup(cache, 1, 101, namespace=APPROX) is None
        assert _lookup(cache, 2, 102) == 1.0


class TestInvalidation:
    def test_small_dirty_set_is_targeted(self):
        cache = DistanceCache()
        for v in range(40):
            cache.put(v, v + 100, 1.0)
        cache.invalidate({0})
        stats = cache.stats()
        assert stats["flushes"] == 0
        assert stats["invalidated"] == 1
        assert len(cache) == 39

    def test_wide_dirty_set_flushes(self):
        cache = DistanceCache()
        for v in range(10):
            cache.put(v, v + 100, 1.0)
        cache.invalidate(set(range(10)) | set(range(100, 110)))
        assert cache.stats()["flushes"] == 1
        assert len(cache) == 0

    def test_invalidate_none_flushes(self):
        cache = DistanceCache()
        cache.put(1, 2, 1.0)
        cache.invalidate(None)
        assert len(cache) == 0 and cache.stats()["flushes"] == 1

    def test_seed_counts_and_serves(self):
        cache = DistanceCache(seed=[(1, 2, 3.0), (4, 5, math.inf)])
        assert cache.stats()["seeded"] == 2
        assert _lookup(cache, 2, 1) == 3.0
        assert math.isinf(_lookup(cache, 4, 5))


class TestReadThrough:
    def test_dedup_and_order_preserved(self):
        cache = DistanceCache()
        calls = []

        def compute(pairs):
            calls.append(list(pairs))
            return [float(s + t) for s, t in pairs]

        out = cache.read_through([(1, 2), (2, 1), (3, 4), (1, 2)], compute)
        assert out == [3.0, 3.0, 7.0, 3.0]
        # (1,2), (2,1) and the repeat canonicalize to one key: the
        # engine sees each unique pair exactly once.
        assert calls == [[(1, 2), (3, 4)]]
        out2 = cache.read_through([(4, 3), (2, 1)], compute)
        assert out2 == [7.0, 3.0]
        assert len(calls) == 1  # fully served from cache

    def test_compute_length_mismatch_raises(self):
        cache = DistanceCache()
        with pytest.raises(QueryError):
            cache.read_through([(1, 2)], lambda pairs: [])


# ----------------------------------------------------------------------
# CachedEngine wrapper semantics
# ----------------------------------------------------------------------
class TestCachedEngine:
    def test_wrapping_nothing_rejected(self):
        with pytest.raises(IndexBuildError):
            CachedEngine(None)

    def test_ttl_staleness_bounded_by_fake_clock(self):
        clock = FakeClock()
        index = ISLabelIndex.build(Graph([(1, 2, 3), (2, 3, 1), (3, 4, 2)]))
        engine = CachedEngine(index._fast, ttl_s=5.0, clock=clock)
        assert engine.distance(1, 4) == index.distance(1, 4)
        assert engine.cache.stats()["misses"] == 1
        assert engine.distance(1, 4) == index.distance(1, 4)
        assert engine.cache.stats()["hits"] == 1
        clock.advance(6.0)
        assert engine.distance(1, 4) == index.distance(1, 4)
        assert engine.cache.stats()["expired"] == 1

    def test_registry_name_and_dict_rejection(self):
        index = ISLabelIndex.build(Graph([(1, 2)]), engine="cached:fast")
        assert index.engine == "cached:fast"
        with pytest.raises(IndexBuildError, match="not cacheable"):
            ISLabelIndex.build(Graph([(1, 2)]), engine="cached:dict")


# ----------------------------------------------------------------------
# Hub-sketch tier: one-sided error, honest exactness flags
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(connected_graphs(max_vertices=16), st.integers(0, 2**32 - 1))
def test_sketch_bounds_never_underestimate(g, seed):
    rng = random.Random(seed)
    index = ISLabelIndex.build(g)
    sketch = index.hub_sketch(h=3)
    vertices = sorted(g.vertices())
    for _ in range(30):
        s, t = rng.choice(vertices), rng.choice(vertices)
        bound, exact = sketch.bound(s, t)
        truth = dijkstra_distance(g, s, t)
        assert bound >= truth - 1e-9
        if exact:
            assert bound == truth


@settings(max_examples=10, deadline=None)
@given(digraphs(max_vertices=10), st.integers(0, 2**32 - 1))
def test_directed_sketch_bounds_never_underestimate(g, seed):
    rng = random.Random(seed)
    index = DirectedISLabelIndex.build(g)
    sketch = index.hub_sketch(h=3)
    truth_index = DirectedISLabelIndex.build(g, engine="dict")
    vertices = sorted(g.vertices())
    for _ in range(25):
        s, t = rng.choice(vertices), rng.choice(vertices)
        bound, exact = sketch.bound(s, t)
        truth = truth_index.distance(s, t)
        assert bound >= truth - 1e-9
        if exact:
            assert bound == truth


def test_facade_approx_never_served_to_exact_queries():
    g = Graph([(1, 2, 3), (2, 3, 1), (3, 4, 2), (4, 5, 4), (1, 5, 20)])
    index = ISLabelIndex.build(g, engine="cached:fast")
    pairs = [(1, 5), (2, 4), (1, 3)]
    bounds = index.distances(pairs, approx=True)
    exact = index.distances(pairs)
    assert all(b >= e for b, e in zip(bounds, exact))
    # The approx pass populated the cache's APPROX namespace; the exact
    # pass must not have seen any of it.
    stats = index._fast.cache.stats()
    assert stats["entries"] >= len(pairs)
    assert index.distances(pairs) == exact
