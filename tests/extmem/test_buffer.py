"""Unit tests for the memory-budget accountant."""

import pytest

from repro.errors import StorageError
from repro.extmem.buffer import MemoryBudget


def test_charge_and_release():
    b = MemoryBudget(100)
    b.charge(60)
    assert b.used == 60 and b.available == 40
    b.release(20)
    assert b.used == 40


def test_overdraw_raises():
    b = MemoryBudget(100)
    b.charge(90)
    with pytest.raises(StorageError):
        b.charge(20)
    assert b.used == 90  # failed charge does not count


def test_fits_predicate():
    b = MemoryBudget(100)
    b.charge(70)
    assert b.fits(30)
    assert not b.fits(31)


def test_high_water_mark():
    b = MemoryBudget(100)
    b.charge(80)
    b.release(50)
    b.charge(10)
    assert b.high_water == 80


def test_drain():
    b = MemoryBudget(100)
    b.charge(99)
    b.drain()
    assert b.used == 0


def test_release_more_than_used_raises():
    b = MemoryBudget(100)
    b.charge(10)
    with pytest.raises(StorageError):
        b.release(11)


def test_negative_charge_raises():
    with pytest.raises(StorageError):
        MemoryBudget(10).charge(-1)


def test_zero_capacity_rejected():
    with pytest.raises(StorageError):
        MemoryBudget(0)
