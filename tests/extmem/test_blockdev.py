"""Unit tests for the simulated block device and record files."""

import pytest

from repro.errors import StorageError
from repro.extmem.blockdev import BlockDevice
from repro.extmem.iomodel import CostModel


@pytest.fixture
def device() -> BlockDevice:
    return BlockDevice(CostModel(block_size=64, memory=1024))


class TestBlockFile:
    def test_round_trip_records(self, device):
        f = device.create("data")
        records = [b"alpha", b"", b"x" * 200, b"tail"]
        for r in records:
            f.append(r)
        f.close()
        assert list(f.records()) == records
        assert f.num_records == 4

    def test_records_spanning_blocks(self, device):
        f = device.create()
        big = bytes(range(256)) * 3  # 768 bytes >> 64-byte blocks
        f.append(big)
        f.close()
        assert list(f.records()) == [big]
        assert f.num_blocks >= 12

    def test_write_counts_ios(self, device):
        f = device.create()
        for _ in range(10):
            f.append(b"y" * 60)
        f.close()
        assert device.stats.block_writes == f.num_blocks
        assert device.stats.bytes_written == f.nbytes

    def test_read_counts_ios(self, device):
        f = device.create()
        for _ in range(10):
            f.append(b"z" * 60)
        f.close()
        device.stats.reset()
        list(f.records())
        assert device.stats.block_reads == f.num_blocks

    def test_append_after_close_raises(self, device):
        f = device.create()
        f.append(b"a")
        f.close()
        with pytest.raises(StorageError):
            f.append(b"b")

    def test_empty_file(self, device):
        f = device.create()
        f.close()
        assert list(f.records()) == []
        assert f.num_blocks == 0

    def test_rereading_is_stable(self, device):
        f = device.create()
        f.append(b"once")
        assert list(f.records()) == [b"once"]
        assert list(f.records()) == [b"once"]


class TestBlockDevice:
    def test_named_create_and_open(self, device):
        created = device.create("mine")
        assert device.open("mine") is created

    def test_open_missing_raises(self, device):
        with pytest.raises(StorageError):
            device.open("ghost")

    def test_anonymous_names_unique(self, device):
        a, b = device.create(), device.create()
        assert a.name != b.name

    def test_create_truncates(self, device):
        f = device.create("data")
        f.append(b"old")
        f.close()
        g = device.create("data")
        g.close()
        assert list(device.open("data").records()) == []

    def test_delete(self, device):
        device.create("gone").close()
        device.delete("gone")
        with pytest.raises(StorageError):
            device.open("gone")

    def test_total_bytes(self, device):
        f = device.create()
        f.append(b"x" * 100)
        f.close()
        assert device.total_bytes() == f.nbytes
