"""Unit tests for disk-resident adjacency graphs."""

import pytest

from repro.errors import StorageError
from repro.extmem.blockdev import BlockDevice
from repro.extmem.extgraph import ExternalGraph, pack_row, unpack_row
from repro.extmem.iomodel import CostModel
from repro.graph.generators import erdos_renyi


@pytest.fixture
def device():
    return BlockDevice(CostModel(block_size=128, memory=2048))


def test_pack_unpack_row():
    row = (7, [(1, 10), (3, 2)])
    assert unpack_row(pack_row(*row)) == row


def test_unpack_truncated_row_raises():
    data = pack_row(7, [(1, 10)])[:-4]
    with pytest.raises(StorageError):
        unpack_row(data)


def test_round_trip_graph(device):
    g = erdos_renyi(40, 90, seed=2, max_weight=5)
    eg = ExternalGraph.from_graph(device, g)
    assert eg.num_vertices == 40
    assert eg.num_edges == 90
    assert eg.to_graph() == g


def test_rows_in_ascending_vertex_order(device, small_weighted):
    eg = ExternalGraph.from_graph(device, small_weighted)
    order = [v for v, _ in eg.rows()]
    assert order == sorted(order)


def test_rows_scan_counts_reads(device, small_weighted):
    eg = ExternalGraph.from_graph(device, small_weighted)
    device.stats.reset()
    list(eg.rows())
    assert device.stats.block_reads == eg.data.num_blocks


def test_from_rows(device, small_weighted):
    eg = ExternalGraph.from_graph(device, small_weighted)
    copy = ExternalGraph.from_rows(device, eg.rows())
    assert copy.to_graph() == small_weighted


def test_from_rows_rejects_odd_slots(device):
    rows = iter([(1, [(2, 1)])])  # the mirror slot (2 -> 1) is missing
    with pytest.raises(StorageError):
        ExternalGraph.from_rows(device, rows)


def test_size_property(device, triangle):
    eg = ExternalGraph.from_graph(device, triangle)
    assert eg.size == triangle.size
