"""Unit tests for the LRU block cache and cached label store."""

import pytest

from repro.errors import StorageError
from repro.extmem.cache import CachedLabelStore, LRUBlockCache
from repro.extmem.iomodel import CostModel
from repro.extmem.labelstore import LabelStore


class TestLRUBlockCache:
    def test_miss_then_hit(self):
        cache = LRUBlockCache(4)
        assert not cache.lookup("a")
        cache.admit("a", 1)
        assert cache.lookup("a")
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_lru(self):
        cache = LRUBlockCache(2)
        cache.admit("a", 1)
        cache.admit("b", 1)
        cache.lookup("a")  # refresh a
        cache.admit("c", 1)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_multi_block_entries(self):
        cache = LRUBlockCache(4)
        cache.admit("big", 3)
        cache.admit("small", 1)
        assert cache.used_blocks == 4
        cache.admit("other", 2)  # evicts 'big' (LRU, 3 blocks)
        assert "big" not in cache and cache.used_blocks == 3

    def test_oversized_entry_not_admitted(self):
        cache = LRUBlockCache(2)
        cache.admit("huge", 10)
        assert "huge" not in cache and len(cache) == 0

    def test_readmit_replaces(self):
        cache = LRUBlockCache(4)
        cache.admit("a", 1)
        cache.admit("a", 3)
        assert cache.used_blocks == 3

    def test_invalidate_and_clear(self):
        cache = LRUBlockCache(4)
        cache.admit("a", 2)
        cache.invalidate("a")
        assert "a" not in cache and cache.used_blocks == 0
        cache.admit("b", 1)
        cache.clear()
        assert len(cache) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(StorageError):
            LRUBlockCache(0)


class TestCachedLabelStore:
    @pytest.fixture
    def cached(self):
        store = LabelStore(CostModel(block_size=64, memory=1024))
        store.put(1, [(2, 3), (4, 5)])
        store.put(2, [(3, 1)])
        store.stats.reset()
        return CachedLabelStore(store, capacity_blocks=8)

    def test_first_fetch_charges_io_second_does_not(self, cached):
        assert cached.fetch(1) == [(2, 3), (4, 5)]
        first = cached.stats.block_reads
        assert first >= 1
        assert cached.fetch(1) == [(2, 3), (4, 5)]
        assert cached.stats.block_reads == first  # served from cache

    def test_fetch_cost_zero_when_cached(self, cached):
        assert cached.fetch_cost(1) >= 1
        cached.fetch(1)
        assert cached.fetch_cost(1) == 0

    def test_put_invalidates(self, cached):
        cached.fetch(1)
        cached.put(1, [(9, 9)])
        before = cached.stats.block_reads
        assert cached.fetch(1) == [(9, 9)]
        assert cached.stats.block_reads > before  # re-read after rewrite

    def test_membership_passthrough(self, cached):
        assert 1 in cached and 77 not in cached
        assert cached.total_bytes == cached.store.total_bytes


class TestCachedIndex:
    def test_repeated_queries_get_cheaper(self):
        from repro.core.index import ISLabelIndex
        from repro.graph.generators import ensure_connected, erdos_renyi

        g = ensure_connected(erdos_renyi(100, 250, seed=141), seed=141)
        index = ISLabelIndex.build(g, storage="disk", cache_blocks=10_000)
        below = sorted(v for v in g.vertices() if not index.hierarchy.in_gk(v))
        s, t = below[0], below[1]
        first = index.query(s, t)
        second = index.query(s, t)
        assert first.label_ios >= 2
        assert second.label_ios == 0
        assert second.distance == first.distance

    def test_tiny_cache_still_correct(self):
        from repro.baselines.dijkstra import dijkstra_distance
        from repro.core.index import ISLabelIndex
        from repro.graph.generators import ensure_connected, erdos_renyi

        g = ensure_connected(erdos_renyi(80, 200, seed=142, max_weight=3), seed=142)
        index = ISLabelIndex.build(g, storage="disk", cache_blocks=1)
        import random

        rng = random.Random(3)
        vs = sorted(g.vertices())
        for _ in range(60):
            s, t = rng.choice(vs), rng.choice(vs)
            assert index.distance(s, t) == dijkstra_distance(g, s, t)
