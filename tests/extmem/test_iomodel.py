"""Unit tests for the I/O cost model (§6 / Aggarwal-Vitter)."""

import pytest

from repro.errors import StorageError
from repro.extmem.iomodel import PAPER_IO_LATENCY_S, CostModel, IOStats


class TestCostModel:
    def test_defaults_satisfy_b_le_m_over_2(self):
        m = CostModel()
        assert m.block_size <= m.memory // 2

    def test_rejects_b_gt_m_over_2(self):
        with pytest.raises(StorageError):
            CostModel(block_size=4096, memory=4096)

    def test_rejects_tiny_block(self):
        with pytest.raises(StorageError):
            CostModel(block_size=1, memory=1024)

    def test_blocks_for(self):
        m = CostModel(block_size=100, memory=1000)
        assert m.blocks_for(0) == 0
        assert m.blocks_for(1) == 1
        assert m.blocks_for(100) == 1
        assert m.blocks_for(101) == 2

    def test_scan_cost_linear(self):
        m = CostModel(block_size=100, memory=1000)
        assert m.scan_cost(1000) == 10
        assert m.scan_cost(2000) == 2 * m.scan_cost(1000)

    def test_sort_cost_at_least_scan(self):
        m = CostModel(block_size=100, memory=1000)
        for n in (50, 500, 5000, 500_000):
            assert m.sort_cost(n) >= m.scan_cost(n)

    def test_sort_cost_grows_with_passes(self):
        # With only 2 blocks in memory, sorting needs many passes.
        tight = CostModel(block_size=100, memory=200)
        roomy = CostModel(block_size=100, memory=10_000)
        assert tight.sort_cost(100_000) > roomy.sort_cost(100_000)

    def test_time_for_uses_paper_latency(self):
        m = CostModel()
        assert m.time_for(1) == pytest.approx(PAPER_IO_LATENCY_S)
        assert m.time_for(100) == pytest.approx(1.0)

    def test_blocks_in_memory(self):
        m = CostModel(block_size=100, memory=1000)
        assert m.blocks_in_memory == 10


class TestIOStats:
    def test_totals(self):
        s = IOStats(block_reads=3, block_writes=4)
        assert s.total_ios == 7

    def test_reset(self):
        s = IOStats(1, 2, 3, 4)
        s.reset()
        assert s.total_ios == 0 and s.bytes_read == 0

    def test_snapshot_and_delta(self):
        s = IOStats()
        s.block_reads = 5
        snap = s.snapshot()
        s.block_reads = 9
        s.block_writes = 2
        delta = s.delta_since(snap)
        assert delta.block_reads == 4
        assert delta.block_writes == 2

    def test_snapshot_is_independent(self):
        s = IOStats()
        snap = s.snapshot()
        s.block_reads += 1
        assert snap.block_reads == 0

    def test_add(self):
        total = IOStats(1, 2, 3, 4) + IOStats(10, 20, 30, 40)
        assert total.block_reads == 11
        assert total.bytes_written == 44
