"""Unit tests for the disk-resident label store (§6.2)."""

import pytest

from repro.errors import StorageError
from repro.extmem.iomodel import CostModel
from repro.extmem.labelstore import NO_HINT, LabelStore


@pytest.fixture
def store():
    return LabelStore(CostModel(block_size=64, memory=1024))


def test_put_fetch_round_trip(store):
    store.put(5, [(9, 3), (1, 2)])
    assert store.fetch(5) == [(1, 2), (9, 3)]  # sorted by ancestor id


def test_fetch_missing_raises(store):
    with pytest.raises(StorageError):
        store.fetch(404)


def test_fetch_charges_one_io_for_small_label(store):
    store.put(1, [(2, 3)])
    store.stats.reset()
    store.fetch(1)
    assert store.stats.block_reads == 1


def test_fetch_charges_multiple_ios_for_big_label(store):
    # 64-byte blocks, 16 bytes per entry: 20 entries -> 5 blocks.
    store.put(1, [(i, i) for i in range(2, 22)])
    store.stats.reset()
    store.fetch(1)
    assert store.stats.block_reads == 5
    assert store.fetch_cost(1) == 5


def test_fetch_cost_has_no_side_effects(store):
    store.put(1, [(2, 3)])
    store.stats.reset()
    assert store.fetch_cost(1) == 1
    assert store.stats.block_reads == 0


def test_put_counts_writes(store):
    store.stats.reset()
    store.put(1, [(2, 3), (4, 5)])
    assert store.stats.block_writes == 1
    assert store.stats.bytes_written == 32


def test_total_bytes_and_entries(store):
    store.put(1, [(2, 3)])
    store.put(2, [(3, 1), (4, 1), (5, 1)])
    assert store.total_bytes == 4 * 16
    assert store.total_entries == 4
    assert store.entry_count(2) == 3
    assert store.average_label_entries == 2.0


def test_membership_and_iteration(store):
    store.put(7, [(8, 1)])
    assert 7 in store
    assert 8 not in store
    assert list(store.vertices()) == [7]
    assert len(store) == 1


class TestHintedStore:
    def test_hinted_round_trip(self):
        store = LabelStore(with_hints=True)
        store.put(3, [(5, 2, 4), (1, 7)])  # second entry gets NO_HINT
        assert store.fetch_hinted(3) == [(1, 7, NO_HINT), (5, 2, 4)]

    def test_plain_fetch_from_hinted_store(self):
        store = LabelStore(with_hints=True)
        store.put(3, [(5, 2, 4)])
        assert store.fetch(3) == [(5, 2)]

    def test_hinted_fetch_from_plain_store_raises(self, store):
        store.put(1, [(2, 3)])
        with pytest.raises(StorageError):
            store.fetch_hinted(1)

    def test_plain_store_rejects_triples(self, store):
        with pytest.raises(StorageError):
            store.put(1, [(2, 3, 4)])
