"""Unit tests for external merge sort."""

import random
import struct

import pytest

from repro.extmem.blockdev import BlockDevice
from repro.extmem.extsort import external_sort
from repro.extmem.iomodel import CostModel

_REC = struct.Struct("<q")


def _fill(device, values):
    f = device.create("input")
    for v in values:
        f.append(_REC.pack(v))
    f.close()
    return f


def _key(record):
    return _REC.unpack(record)


@pytest.fixture
def tiny_device():
    # 64-byte blocks, 256-byte memory: forces multi-run, multi-pass merges.
    return BlockDevice(CostModel(block_size=64, memory=256))


def test_sorts_random_values(tiny_device):
    values = random.Random(3).sample(range(10_000), 500)
    src = _fill(tiny_device, values)
    out = external_sort(tiny_device, src, key=_key)
    got = [_REC.unpack(r)[0] for r in out.records()]
    assert got == sorted(values)


def test_sorts_with_duplicates(tiny_device):
    values = [5, 1, 5, 3, 1, 1, 9] * 30
    src = _fill(tiny_device, values)
    out = external_sort(tiny_device, src, key=_key)
    got = [_REC.unpack(r)[0] for r in out.records()]
    assert got == sorted(values)


def test_empty_input(tiny_device):
    src = _fill(tiny_device, [])
    out = external_sort(tiny_device, src, key=_key, output_name="out")
    assert list(out.records()) == []
    assert out.name == "out"


def test_single_run_renamed(tiny_device):
    src = _fill(tiny_device, [3, 1, 2])
    out = external_sort(tiny_device, src, key=_key, output_name="sorted")
    assert out.name == "sorted"
    assert tiny_device.open("sorted") is out


def test_custom_key_descending(tiny_device):
    values = [4, 8, 1, 9]
    src = _fill(tiny_device, values)
    out = external_sort(tiny_device, src, key=lambda r: (-_REC.unpack(r)[0],))
    got = [_REC.unpack(r)[0] for r in out.records()]
    assert got == sorted(values, reverse=True)


def test_io_cost_within_model_bound():
    # Measured sort traffic should be within a small constant of sort(N).
    device = BlockDevice(CostModel(block_size=128, memory=512))
    values = random.Random(5).sample(range(100_000), 2000)
    src = _fill(device, values)
    nbytes = src.nbytes
    device.stats.reset()
    external_sort(device, src, key=_key)
    predicted = device.cost_model.sort_cost(nbytes)
    assert device.stats.total_ios <= 6 * predicted


def test_large_memory_single_pass():
    device = BlockDevice(CostModel(block_size=128, memory=1 << 20))
    values = list(range(300))[::-1]
    src = _fill(device, values)
    out = external_sort(device, src, key=_key)
    got = [_REC.unpack(r)[0] for r in out.records()]
    assert got == sorted(values)
