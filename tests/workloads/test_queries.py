"""Unit tests for query workload generation."""

import pytest

from repro.core.index import ISLabelIndex
from repro.errors import QueryError
from repro.graph.generators import ensure_connected, erdos_renyi, path_graph
from repro.graph.graph import Graph
from repro.workloads.queries import random_query_pairs, typed_query_pairs


@pytest.fixture(scope="module")
def index():
    g = ensure_connected(erdos_renyi(100, 260, seed=99), seed=99)
    return ISLabelIndex.build(g, k=2)


class TestRandomPairs:
    def test_count_and_membership(self):
        g = path_graph(20)
        pairs = random_query_pairs(g, 50, seed=1)
        assert len(pairs) == 50
        assert all(g.has_vertex(s) and g.has_vertex(t) for s, t in pairs)

    def test_seeded_determinism(self):
        g = path_graph(20)
        assert random_query_pairs(g, 30, seed=2) == random_query_pairs(
            g, 30, seed=2
        )

    def test_too_small_graph_rejected(self):
        g = Graph()
        g.add_vertex(1)
        with pytest.raises(QueryError):
            random_query_pairs(g, 5)


class TestTypedPairs:
    @pytest.mark.parametrize("qtype", (1, 2, 3))
    def test_types_respected(self, index, qtype):
        pairs = typed_query_pairs(index, 40, qtype, seed=3)
        assert len(pairs) == 40
        for s, t in pairs:
            s_in = index.hierarchy.in_gk(s)
            t_in = index.hierarchy.in_gk(t)
            if qtype == 1:
                assert s_in and t_in
            elif qtype == 2:
                assert s_in != t_in
            else:
                assert not s_in and not t_in

    def test_queries_classified_consistently(self, index):
        for qtype in (1, 2, 3):
            for s, t in typed_query_pairs(index, 10, qtype, seed=4):
                assert index.query(s, t).query_type == qtype

    def test_bad_type_rejected(self, index):
        with pytest.raises(QueryError):
            typed_query_pairs(index, 5, 4)

    def test_type1_needs_gk_vertices(self):
        g = path_graph(8)
        full = ISLabelIndex.build(g, full=True)
        with pytest.raises(QueryError):
            typed_query_pairs(full, 5, 1)
