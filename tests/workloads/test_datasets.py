"""Unit tests for the dataset stand-ins (Table 2 shapes)."""

import pytest

from repro.errors import GraphError
from repro.graph.components import is_connected
from repro.graph.stats import graph_stats
from repro.graph.validation import validate_graph
from repro.workloads.datasets import (
    DATASET_NAMES,
    PAPER_TABLE2,
    dataset_builders,
    load_dataset,
)

SCALE = 0.08  # keep test-time builds fast


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_datasets_valid_and_connected(name):
    g = load_dataset(name, SCALE)
    validate_graph(g)
    assert is_connected(g)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_datasets_deterministic(name):
    assert load_dataset(name, SCALE) == dataset_builders()[name](SCALE)


def test_cache_returns_same_object():
    assert load_dataset("google", SCALE) is load_dataset("google", SCALE)


def test_scale_changes_size():
    small = load_dataset("google", 0.05)
    large = load_dataset("google", 0.15)
    assert large.num_vertices > small.num_vertices


def test_unknown_name_rejected():
    with pytest.raises(GraphError):
        load_dataset("facebook")


def test_bad_scale_rejected():
    with pytest.raises(GraphError):
        load_dataset("google", 0)


def test_web_has_weights_up_to_two():
    g = load_dataset("web", SCALE)
    weights = {w for _, _, w in g.edges()}
    assert weights == {1, 2}


def test_btc_is_unweighted():
    g = load_dataset("btc", SCALE)
    assert all(w == 1 for _, _, w in g.edges())


def test_vertex_count_ordering_matches_paper():
    sizes = {n: load_dataset(n, SCALE).num_vertices for n in DATASET_NAMES}
    # Paper ordering: btc > web > wikitalk > skitter > google.
    assert sizes["btc"] > sizes["web"] > sizes["google"]
    assert sizes["wikitalk"] > sizes["google"]


def test_wikitalk_hub_skew():
    stats = {n: graph_stats(load_dataset(n, SCALE)) for n in DATASET_NAMES}
    ratios = {
        n: stats[n].max_degree / stats[n].num_vertices for n in DATASET_NAMES
    }
    assert ratios["wikitalk"] == max(ratios.values())


def test_paper_reference_table_complete():
    assert set(PAPER_TABLE2) == set(DATASET_NAMES)
    for row in PAPER_TABLE2.values():
        assert row["V"] > 0 and row["E"] > 0
