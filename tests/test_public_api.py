"""The public API surface: imports, exports, and error taxonomy."""

import pytest

import repro
from repro.errors import (
    GraphError,
    IndexBuildError,
    QueryError,
    ReproError,
    StaleIndexError,
    StorageError,
    ValidationError,
)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_present():
    assert repro.__version__ == "1.0.0"


def test_core_types_reachable_from_top_level():
    g = repro.Graph([(1, 2)])
    index = repro.ISLabelIndex.build(g)
    assert index.distance(1, 2) == 1
    assert isinstance(index.stats, repro.IndexStats)
    assert isinstance(index.query(1, 2), repro.QueryResult)


def test_subpackage_all_exports_resolve():
    import repro.baselines
    import repro.bench
    import repro.core
    import repro.extmem
    import repro.graph
    import repro.workloads

    for module in (
        repro.core,
        repro.graph,
        repro.extmem,
        repro.baselines,
        repro.workloads,
        repro.bench,
    ):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


class TestErrorTaxonomy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            GraphError,
            ValidationError,
            IndexBuildError,
            QueryError,
            StorageError,
            StaleIndexError,
        ):
            assert issubclass(exc, ReproError)

    def test_validation_is_a_graph_error(self):
        assert issubclass(ValidationError, GraphError)

    def test_library_failures_catchable_with_one_clause(self):
        g = repro.Graph([(1, 2)])
        index = repro.ISLabelIndex.build(g)
        with pytest.raises(ReproError):
            index.distance(1, 999)
        with pytest.raises(ReproError):
            repro.Graph([(1, 1)])
        with pytest.raises(ReproError):
            repro.build_hierarchy(g, sigma=7.0)
