"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    WorkloadSummary,
    built_index,
    built_vc_index,
    run_query_workload,
    time_im_dij,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs

SCALE = 0.06


def test_built_index_cached():
    a = built_index("google", scale=SCALE)
    b = built_index("google", scale=SCALE)
    assert a is b


def test_built_index_distinct_configs():
    a = built_index("google", scale=SCALE, sigma=0.95)
    b = built_index("google", scale=SCALE, sigma=0.90)
    assert a is not b


def test_built_vc_index_cached():
    assert built_vc_index("google", scale=SCALE) is built_vc_index(
        "google", scale=SCALE
    )


def test_run_query_workload_aggregates():
    index = built_index("google", scale=SCALE)
    pairs = random_query_pairs(load_dataset("google", SCALE), 40, seed=1)
    summary = run_query_workload(index, pairs)
    assert summary.queries == 40
    assert sum(summary.type_counts) == 40
    assert summary.avg_total_ms == pytest.approx(
        summary.avg_time_a_ms + summary.avg_time_b_ms
    )
    assert summary.avg_time_a_ms >= 0
    assert summary.avg_label_ios >= 0


def test_disk_index_pays_label_io():
    index = built_index("google", scale=SCALE, storage="disk")
    pairs = random_query_pairs(load_dataset("google", SCALE), 40, seed=2)
    summary = run_query_workload(index, pairs)
    assert summary.avg_label_ios > 0
    assert summary.avg_time_a_ms > 0


def test_time_im_dij_positive():
    graph = load_dataset("google", SCALE)
    pairs = random_query_pairs(graph, 10, seed=3)
    assert time_im_dij(graph, pairs) > 0


def test_workload_summary_aggregate_type_counts():
    index = built_index("google", scale=SCALE)
    pairs = random_query_pairs(load_dataset("google", SCALE), 25, seed=4)
    results = [index.query(s, t) for s, t in pairs]
    summary = WorkloadSummary.aggregate(results)
    for i, count in enumerate(summary.type_counts, start=1):
        assert count == sum(1 for r in results if r.query_type == i)
