"""Unit tests for table rendering and result persistence."""

import pytest

from repro.bench.reporting import (
    emit,
    fmt_bytes,
    fmt_count,
    fmt_ms,
    render_table,
    results_dir,
)


def test_render_alignment():
    table = render_table(
        "Title", ("a", "long-header"), [(1, "x"), ("wide-cell", 2.5)]
    )
    lines = table.splitlines()
    assert lines[0] == "Title"
    assert set(lines[1]) == {"="}
    widths = {len(line) for line in lines[2:]}
    assert len(widths) == 1  # every row padded to equal width


def test_render_handles_none():
    table = render_table("t", ("x",), [(None,)])
    assert "-" in table


def test_emit_writes_file(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    emit("unit", "content")
    assert (tmp_path / "unit.txt").read_text() == "content\n"
    assert "content" in capsys.readouterr().out


def test_results_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "sub"))
    path = results_dir()
    assert path == tmp_path / "sub"
    assert path.is_dir()


class TestFormatters:
    def test_fmt_ms(self):
        assert fmt_ms(None) == "-"
        assert fmt_ms(12.345) == "12.35"
        assert fmt_ms(0.001234) == "0.0012"

    def test_fmt_bytes(self):
        assert fmt_bytes(None) == "-"
        assert fmt_bytes(100) == "100 B"
        assert fmt_bytes(10 * 1024 * 1024) == "10.0 MB"

    def test_fmt_count(self):
        assert fmt_count(None) == "-"
        assert fmt_count(950) == "950"
        assert fmt_count(95_000) == "95K"
        assert fmt_count(2_500_000) == "2.5M"


def test_paper_constants_cover_all_datasets():
    from repro.bench import paper

    for table in (paper.TABLE2, paper.TABLE3, paper.TABLE4, paper.TABLE8, paper.TABLE9):
        assert set(table) == set(paper.DATASET_ORDER)
    assert set(paper.TABLE5) == {"btc", "web"}
    assert set(paper.TABLE6) == {"btc", "web"}
