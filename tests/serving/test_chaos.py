"""Chaos suite: real worker processes dying under a live query stream.

The invariant under every fault: answers are **exact** (bit-identical to
the local fast engine) or the call errors loudly — never silently wrong,
and with replication never lost.  Workers here are genuine ``repro
serve`` subprocesses driven through :mod:`repro.serving.chaos`.
"""

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_snapshot
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.serving import wire
from repro.serving.chaos import ChaosProxy, FaultInjector
from repro.serving.membership import RetryPolicy
from repro.serving.remote import RemoteEngine
from repro.serving.scheduler import assign_shards
from repro.serving.server import ShardServer, load_serving_index

SHARDS = 6
#: Fast backoff so a three-fault test does not sleep its way to a minute.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05)


@pytest.fixture(scope="module")
def graph():
    return ensure_connected(erdos_renyi(56, 140, seed=11, max_weight=5), seed=11)


@pytest.fixture(scope="module")
def snap_path(graph, tmp_path_factory):
    index = ISLabelIndex.build(graph)
    path = tmp_path_factory.mktemp("chaos") / "g.shards"
    save_snapshot(index, path, shards=SHARDS)
    return str(path)


@pytest.fixture(scope="module")
def expected(graph, snap_path):
    index = load_index(snap_path, engine="fast")
    vertices = sorted(graph.vertices())[::4]
    pairs = [(s, t) for s in vertices for t in vertices]
    return pairs, index.distances(pairs)


def _engine(fleet, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    return RemoteEngine(addresses=fleet.addresses, **kwargs)


def _wire_shutdown(worker_id):
    host, _, port = worker_id.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=10.0)
    try:
        wire.request(sock, {"op": "shutdown"})
    finally:
        sock.close()


class TestKillFaults:
    def test_killing_any_single_worker_never_loses_a_query(
        self, snap_path, expected
    ):
        """RF2 fleet: SIGKILL one worker mid-stream; every answer stays
        exact and the failover is observable.  Then bring it back and
        kill a *different* worker — still exact."""
        pairs, want = expected
        ownership = assign_shards(SHARDS, 3, replication=2)
        with FaultInjector() as fleet:
            workers = fleet.spawn_fleet(snap_path, ownership)
            engine = _engine(fleet)
            try:
                assert engine.distances(pairs[:8]) == want[:8]  # warm routes
                workers[0].kill()
                assert engine.distances(pairs) == want
                assert engine.failovers, "the kill was never even noticed"
                for record in engine.failovers:
                    assert record["retries"] >= 1
                    assert record["recovery_s"] >= 0.0
                workers[0].restart()
                workers[1].kill()
                assert engine.distances(pairs) == want
            finally:
                engine.close()

    def test_two_dead_workers_still_exact_without_strictness(
        self, snap_path, expected
    ):
        """Non-strict survivors serve misrouted buckets correctly, so even
        losing two of three workers degrades locality, not answers."""
        pairs, want = expected
        ownership = assign_shards(SHARDS, 3, replication=2)
        with FaultInjector() as fleet:
            workers = fleet.spawn_fleet(snap_path, ownership)
            engine = _engine(fleet)
            try:
                assert engine.distances(pairs[:8]) == want[:8]
                workers[0].kill()
                workers[1].kill()
                assert engine.distances(pairs) == want
                assert engine.failovers
            finally:
                engine.close()

    def test_paused_worker_times_out_and_fails_over(
        self, snap_path, expected, monkeypatch
    ):
        """SIGSTOP is the nastiest fault: the TCP connection stays open
        but nothing answers.  The wire timeout turns the hang into a
        failover instead of an eternal stall."""
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "0.5")
        pairs, want = expected
        ownership = assign_shards(SHARDS, 3, replication=2)
        with FaultInjector() as fleet:
            workers = fleet.spawn_fleet(snap_path, ownership)
            engine = _engine(fleet)
            try:
                assert engine.distances(pairs[:8]) == want[:8]
                workers[2].pause()
                started = time.monotonic()
                assert engine.distances(pairs) == want
                # One timeout marks the worker dead; the stream must not
                # pay 0.5 s per bucket afterwards.
                assert time.monotonic() - started < 30.0
                workers[2].resume()
            finally:
                engine.close()


class TestElasticRebalance:
    def test_rebalance_hands_over_without_losing_queries(
        self, snap_path, expected
    ):
        """``repro rebalance`` under a live strict fleet: the old owner
        drains, the client follows the not_owner staleness signal to the
        freshly spawned worker, and the stream stays exact."""
        pairs, want = expected
        ownership = assign_shards(SHARDS, 3, replication=2)
        new_id = None
        with FaultInjector() as fleet:
            workers = fleet.spawn_fleet(snap_path, ownership, strict=True)
            engine = _engine(fleet)
            try:
                assert engine.distances(pairs) == want
                source = workers[0].worker_id
                env = dict(
                    os.environ,
                    PYTHONPATH=str(Path(repro.__file__).resolve().parents[1]),
                )
                done = subprocess.run(
                    [
                        sys.executable, "-m", "repro", "rebalance", snap_path,
                        "--source", source, "--strict",
                    ],
                    capture_output=True,
                    text=True,
                    timeout=120,
                    env=env,
                )
                assert done.returncode == 0, done.stderr
                line = next(
                    l for l in done.stdout.splitlines()
                    if l.startswith("REBALANCED ")
                )
                new_id = line.split()[3]
                # Reset the round-robin state so the next stream
                # deterministically routes its first bucket at the stale
                # (now draining) owner instead of skipping it by parity.
                engine._rotation.clear()
                assert engine.distances(pairs) == want  # across the handover
                # The drained owner pushed the client to refresh; the new
                # worker was discovered from the membership map and dialed.
                assert engine.failovers, "the drain was never even noticed"
                assert any(w.id == new_id for w in engine._workers)
                assert engine.membership.owned_by(new_id) == sorted(
                    workers[0].owned
                )
            finally:
                engine.close()
                if new_id is not None:
                    _wire_shutdown(new_id)


class TestWireFaultsViaProxy:
    @pytest.fixture()
    def server(self, snap_path):
        with ShardServer(load_serving_index(snap_path)) as srv:
            yield srv

    def test_truncated_response_is_a_wire_error(self, server):
        with ChaosProxy(server.address) as proxy:
            sock = socket.create_connection(proxy.address, timeout=10.0)
            try:
                proxy.mode = "truncate"
                with pytest.raises(wire.WireError):
                    wire.request(sock, {"op": "hello"})
            finally:
                sock.close()
            # A clean proxy connection works again: the fault injection is
            # per-mode, not a wedged proxy.
            proxy.mode = None
            sock = socket.create_connection(proxy.address, timeout=10.0)
            try:
                assert wire.request(sock, {"op": "ping"}) == {"ok": True}
            finally:
                sock.close()

    def test_dropped_connection_mid_frame_is_a_wire_error(self, server):
        with ChaosProxy(server.address) as proxy:
            proxy.mode = "drop"
            proxy.fault_after_bytes = 2  # inside the length prefix
            sock = socket.create_connection(proxy.address, timeout=10.0)
            try:
                with pytest.raises(wire.WireError):
                    wire.request(sock, {"op": "hello"})
            finally:
                sock.close()

    def test_delayed_response_trips_the_wire_timeout(self, server):
        with ChaosProxy(server.address) as proxy:
            proxy.mode = "delay"
            proxy.delay_s = 0.5
            sock = socket.create_connection(proxy.address, timeout=10.0)
            try:
                wire.apply_timeout(sock, timeout=0.1)
                with pytest.raises(wire.WireTimeout):
                    wire.request(sock, {"op": "ping"})
            finally:
                sock.close()

    def test_engine_fails_over_from_faulty_path_to_healthy_replica(
        self, server, expected
    ):
        """One worker reachable both through a faulting proxy and
        directly: when the proxy path starts tearing frames the engine
        abandons it for the healthy path — answers stay exact."""
        pairs, want = expected
        with ChaosProxy(server.address) as proxy:
            engine = RemoteEngine(
                addresses=[proxy.address, server.address], retry=FAST_RETRY
            )
            try:
                engine.freeze()  # healthy handshake through both paths
                proxy.mode = "drop"
                assert engine.distances(pairs) == want
                assert engine.failovers
            finally:
                engine.close()
