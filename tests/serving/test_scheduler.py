"""The shard-aware query scheduler (repro.serving.scheduler)."""

import math

import pytest

from repro.core.directed import DirectedISLabelIndex
from repro.core.index import ISLabelIndex
from repro.core.serialization import load_directed_index, load_index, save_snapshot
from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.graph.graph import Graph
from repro.serving.scheduler import (
    SchedulerPolicy,
    ShardScheduler,
    assign_shards,
    shard_starts_of,
)


@pytest.fixture(scope="module")
def graph():
    g = ensure_connected(erdos_renyi(80, 200, seed=5, max_weight=6), seed=5)
    g.add_vertex(999)  # isolated: disconnected pairs stay inf
    return g


@pytest.fixture(scope="module")
def sharded_index(graph, tmp_path_factory):
    index = ISLabelIndex.build(graph)
    path = tmp_path_factory.mktemp("sched") / "g.shards"
    save_snapshot(index, path, shards=4)
    return load_index(path, engine="sharded")


def _pairs(graph):
    vertices = sorted(graph.vertices())
    picks = vertices[::7] + [vertices[0], vertices[-1], 999]
    return [(s, t) for s in picks for t in picks]


class TestRouting:
    def test_shard_of_bisects_starts(self):
        sched = ShardScheduler([0, 10, 20], lambda p, b: [0.0] * len(p))
        assert sched.shard_of(0) == 0
        assert sched.shard_of(9) == 0
        assert sched.shard_of(10) == 1
        assert sched.shard_of(25) == 2
        assert sched.shard_of(-5) == 0  # below every start routes to 0
        assert sched.bucket_of(9, 25) == (0, 2)
        assert sched.num_shards == 3

    def test_unsharded_is_single_bucket(self):
        sched = ShardScheduler([], lambda p, b: [0.0] * len(p))
        assert sched.shard_of(12345) == 0
        assert sched.num_shards == 1

    def test_shard_starts_of_probes_engine_and_facade(self, graph, sharded_index):
        starts = shard_starts_of(sharded_index)
        assert starts == shard_starts_of(sharded_index._fast)
        assert len(starts) >= 2
        fast = ISLabelIndex.build(graph)
        assert shard_starts_of(fast) == []
        assert shard_starts_of(ISLabelIndex.build(graph, engine="dict")) == []


class TestSchedule:
    def test_scheduled_matches_per_query_oracle(self, graph, sharded_index):
        """Bit identity incl. cross-shard and disconnected pairs."""
        oracle = ISLabelIndex.build(graph, engine="dict")
        pairs = _pairs(graph)
        expected = [oracle.distance(s, t) for s, t in pairs]
        sched = ShardScheduler.for_engine(sharded_index)
        assert sched.schedule(pairs) == expected
        # Cross-shard pairs really exist in this workload.
        assert len({sched.bucket_of(s, t) for s, t in pairs}) > sched.num_shards
        assert any(math.isinf(d) for d in expected)

    def test_bucket_size_one_policy_degenerates_to_per_query(
        self, graph, sharded_index
    ):
        pairs = _pairs(graph)
        expected = sharded_index.distances(pairs)
        sched = ShardScheduler.for_engine(
            sharded_index, policy=SchedulerPolicy(max_batch=1)
        )
        assert sched.schedule(pairs) == expected
        assert sched.dispatch_calls == len(pairs)
        assert sched.queries_scheduled == len(pairs)

    def test_dispatch_amortizes_buckets(self, graph, sharded_index):
        pairs = _pairs(graph)
        sched = ShardScheduler.for_engine(sharded_index)
        sched.schedule(pairs)
        assert sched.dispatch_calls <= sched.num_shards * sched.num_shards
        assert sched.dispatch_calls < len(pairs)

    def test_coalescing_respects_max_batch(self):
        calls = []

        def dispatch(chunk, bucket):
            calls.append((bucket, len(chunk)))
            return [0.0] * len(chunk)

        sched = ShardScheduler(
            [0, 10], dispatch, SchedulerPolicy(max_batch=3, coalesce_source=True)
        )
        # 4 queries from source shard 0 across two target shards: the cap
        # of 3 forbids full coalescing.
        sched.schedule([(1, 1), (2, 12), (3, 2), (4, 13)])
        assert sum(n for _, n in calls) == 4
        assert all(n <= 3 for _, n in calls)

    def test_no_coalescing_keeps_per_pair_buckets(self):
        buckets = []
        dispatch = lambda chunk, bucket: (buckets.append(bucket), [0.0] * len(chunk))[1]
        sched = ShardScheduler(
            [0, 10], dispatch, SchedulerPolicy(coalesce_source=False)
        )
        sched.schedule([(1, 1), (2, 12), (12, 1), (13, 13)])
        assert sorted(buckets) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_dispatch_length_mismatch_rejected(self):
        sched = ShardScheduler([], lambda p, b: [0.0])
        with pytest.raises(QueryError, match="answers"):
            sched.schedule([(1, 2), (3, 4)])

    def test_bad_policy_rejected(self):
        with pytest.raises(QueryError, match="max_batch"):
            ShardScheduler([], lambda p, b: [], SchedulerPolicy(max_batch=0))


class TestStreaming:
    def test_submit_flush_drain_matches_schedule(self, graph, sharded_index):
        pairs = _pairs(graph)
        expected = sharded_index.distances(pairs)
        sched = ShardScheduler.for_engine(
            sharded_index, policy=SchedulerPolicy(max_batch=8)
        )
        tickets = [sched.submit(s, t) for s, t in pairs]
        assert sched.pending_count < len(pairs)  # full buckets flushed en route
        results = sched.drain()
        assert sched.pending_count == 0
        assert [results[t] for t in tickets] == expected

    def test_result_flushes_on_demand(self, graph, sharded_index):
        sched = ShardScheduler.for_engine(sharded_index)
        vertices = sorted(v for v in graph.vertices() if v != 999)
        ticket = sched.submit(vertices[0], vertices[1])
        assert sched.pending_count == 1
        assert sched.pending() == {ticket: (vertices[0], vertices[1])}
        got = sched.result(ticket)
        assert got == sharded_index.distance(vertices[0], vertices[1])
        with pytest.raises(QueryError, match="ticket"):
            sched.result(ticket)  # collected once

    def test_max_delay_flushes_pending(self, monkeypatch):
        dispatched = []

        def dispatch(chunk, bucket):
            dispatched.extend(chunk)
            return [0.0] * len(chunk)

        sched = ShardScheduler(
            [], dispatch, SchedulerPolicy(max_batch=100, max_delay_s=0.01)
        )
        sched.submit(1, 2)
        assert dispatched == []  # under the delay, under the cap
        import time

        time.sleep(0.02)
        sched.submit(3, 4)  # the oldest query is now over the delay budget
        assert dispatched == [(1, 2), (3, 4)]
        assert sched.pending_count == 0


class TestDirected:
    def test_directed_scheduled_matches_oracle(self, tmp_path):
        import random

        rng = random.Random(11)
        dg = DiGraph()
        for v in range(60):
            dg.add_vertex(v)
        for _ in range(240):
            u, v = rng.sample(range(60), 2)
            dg.merge_edge(u, v, rng.randint(1, 5))
        index = DirectedISLabelIndex.build(dg)
        path = tmp_path / "d.shards"
        save_snapshot(index, path, shards=3)
        served = load_directed_index(path, engine="sharded")
        oracle = DirectedISLabelIndex.build(dg, engine="dict")
        vertices = sorted(dg.vertices())[::5]
        pairs = [(s, t) for s in vertices for t in vertices]
        expected = [oracle.distance(s, t) for s, t in pairs]
        sched = ShardScheduler.for_engine(served)
        assert len(sched.starts) >= 2
        assert sched.schedule(pairs) == expected
        degenerate = ShardScheduler.for_engine(
            served, policy=SchedulerPolicy(max_batch=1)
        )
        assert degenerate.schedule(pairs) == expected


class TestAssignShards:
    def test_contiguous_cover(self):
        slices = assign_shards(8, 3)
        assert [i for s in slices for i in s] == list(range(8))
        assert all(s == list(range(s[0], s[-1] + 1)) for s in slices if s)
        sizes = [len(s) for s in slices]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_shards(self):
        slices = assign_shards(2, 5)
        assert [i for s in slices for i in s] == [0, 1]
        assert len(slices) == 5

    def test_bad_worker_count(self):
        with pytest.raises(QueryError):
            assign_shards(4, 0)

    def test_replication_gives_every_shard_multiple_owners(self):
        slices = assign_shards(6, 3, replication=2)
        for shard in range(6):
            owners = [w for w, s in enumerate(slices) if shard in s]
            assert len(owners) == 2, (shard, slices)
        # Killing any single worker leaves every shard owned.
        for dead in range(3):
            survivors = {
                i for w, s in enumerate(slices) if w != dead for i in s
            }
            assert survivors == set(range(6))

    def test_replication_one_is_the_plain_partition(self):
        assert assign_shards(8, 3, replication=1) == assign_shards(8, 3)

    def test_full_replication_everyone_owns_everything(self):
        assert assign_shards(4, 2, replication=2) == [[0, 1, 2, 3]] * 2

    def test_bad_replication_rejected(self):
        with pytest.raises(QueryError, match="replication"):
            assign_shards(4, 2, replication=3)
        with pytest.raises(QueryError, match="replication"):
            assign_shards(4, 2, replication=0)


class TestStats:
    def test_fresh_scheduler_reports_zeros(self):
        sched = ShardScheduler([0, 10], lambda p, b: [0.0] * len(p))
        assert sched.stats() == {
            "dispatch_calls": 0,
            "queries_scheduled": 0,
            "buckets_coalesced": 0,
            "pending": 0,
            "avg_batch": 0.0,
        }

    def test_counters_track_batching(self, graph, sharded_index):
        sched = ShardScheduler.for_engine(sharded_index)
        pairs = _pairs(graph)
        sched.schedule(pairs)
        stats = sched.stats()
        assert stats["queries_scheduled"] == len(pairs)
        assert stats["dispatch_calls"] == sched.dispatch_calls
        assert stats["avg_batch"] == pytest.approx(
            len(pairs) / sched.dispatch_calls
        )
        assert stats["pending"] == 0

    def test_coalescing_counter_increments_per_merge(self):
        sched = ShardScheduler(
            [0, 10],
            lambda p, b: [0.0] * len(p),
            SchedulerPolicy(coalesce_source=True),
        )
        # Source shard 0 hits both target shards: one merge per pass.
        sched.schedule([(1, 1), (2, 12)])
        assert sched.stats()["buckets_coalesced"] == 1
        sched.schedule([(1, 1), (2, 12)])
        assert sched.stats()["buckets_coalesced"] == 2

    def test_no_coalescing_means_zero_merges(self):
        sched = ShardScheduler(
            [0, 10],
            lambda p, b: [0.0] * len(p),
            SchedulerPolicy(coalesce_source=False),
        )
        sched.schedule([(1, 1), (2, 12), (12, 1)])
        assert sched.stats()["buckets_coalesced"] == 0
        assert sched.stats()["dispatch_calls"] == 3

    def test_streaming_backlog_visible_in_pending(self, graph, sharded_index):
        sched = ShardScheduler.for_engine(
            sharded_index, policy=SchedulerPolicy(max_batch=1000)
        )
        pairs = _pairs(graph)[:5]
        for s, t in pairs:
            sched.submit(s, t)
        assert sched.stats()["pending"] == 5
        sched.flush()
        assert sched.stats()["pending"] == 0
        assert sched.stats()["queries_scheduled"] == 5
