"""Remote shard serving: ShardServer + the "remote" engine end to end."""

import math
import socket

import pytest

from repro.core.directed import DirectedISLabelIndex
from repro.core.engines import (
    CAP_REMOTE,
    DIRECTED,
    UNDIRECTED,
    available_engines,
    engine_capabilities,
    engines_with_capability,
    resolve_engine,
)
from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_snapshot
from repro.errors import IndexBuildError, QueryError, StorageError
from repro.graph.digraph import DiGraph
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.serving import wire
from repro.serving.remote import (
    REMOTE_ADDRS_ENV,
    DirectedRemoteEngine,
    RemoteEngine,
    parse_addresses,
)
from repro.serving.scheduler import SchedulerPolicy, assign_shards
from repro.serving.server import ShardServer, load_serving_index


@pytest.fixture(scope="module")
def graph():
    g = ensure_connected(erdos_renyi(70, 170, seed=9, max_weight=5), seed=9)
    g.add_vertex(500)  # isolated vertex: disconnected pairs over the wire
    return g


@pytest.fixture(scope="module")
def shard_path(graph, tmp_path_factory):
    index = ISLabelIndex.build(graph)
    path = tmp_path_factory.mktemp("remote") / "g.shards"
    save_snapshot(index, path, shards=4)
    return str(path)


@pytest.fixture(scope="module")
def expected(graph, shard_path):
    index = load_index(shard_path, engine="fast")
    vertices = sorted(graph.vertices())[::4] + [500]
    pairs = [(s, t) for s in vertices for t in vertices]
    return pairs, index.distances(pairs)


@pytest.fixture()
def server(shard_path):
    with ShardServer(load_serving_index(shard_path, engine="sharded")) as srv:
        yield srv


def _addr(server):
    host, port = server.address
    return [(host, port)]


class TestRegistry:
    def test_remote_registered_both_orientations(self):
        assert "remote" in available_engines(UNDIRECTED)
        assert "remote" in available_engines(DIRECTED)
        assert resolve_engine(UNDIRECTED, "remote") is RemoteEngine
        assert resolve_engine(DIRECTED, "remote") is DirectedRemoteEngine

    def test_capability_flags(self):
        assert CAP_REMOTE in engine_capabilities(UNDIRECTED, "remote")
        assert "remote" in engines_with_capability(UNDIRECTED, CAP_REMOTE)
        assert "fast" not in engines_with_capability(UNDIRECTED, CAP_REMOTE)
        with pytest.raises(IndexBuildError):
            engine_capabilities(UNDIRECTED, "vroom")

    def test_engine_without_addresses_rejected(self, monkeypatch):
        monkeypatch.delenv(REMOTE_ADDRS_ENV, raising=False)
        with pytest.raises(IndexBuildError, match=REMOTE_ADDRS_ENV):
            RemoteEngine()

    def test_parse_addresses(self):
        assert parse_addresses("a:1,b:2") == [("a", 1), ("b", 2)]
        assert parse_addresses([("h", 9)]) == [("h", 9)]
        assert parse_addresses(None) == []
        with pytest.raises(IndexBuildError):
            parse_addresses("no-port")
        with pytest.raises(IndexBuildError):
            parse_addresses("host:nan")


class TestRoundtrip:
    def test_remote_bit_identical_to_fast(self, server, expected):
        pairs, want = expected
        with RemoteEngine(addresses=_addr(server)) as engine:
            assert engine.distances(pairs) == want
            assert engine.distance(*pairs[7]) == want[7]
        assert any(math.isinf(d) for d in want)  # disconnected pairs covered

    def test_remote_through_load_index_env_seam(
        self, server, shard_path, expected, monkeypatch
    ):
        host, port = server.address
        monkeypatch.setenv(REMOTE_ADDRS_ENV, f"{host}:{port}")
        index = load_index(shard_path, engine="remote")
        assert index.engine == "remote"
        pairs, want = expected
        assert index.distances(pairs) == want

    def test_bucket_size_one_policy(self, server, expected):
        pairs, want = expected
        engine = RemoteEngine(
            addresses=_addr(server), policy=SchedulerPolicy(max_batch=1)
        )
        try:
            assert engine.distances(pairs[:40]) == want[:40]
            assert engine.scheduler.dispatch_calls == 40
        finally:
            engine.close()

    def test_uncovered_vertex_raises_query_error(self, server, graph):
        with RemoteEngine(addresses=_addr(server)) as engine:
            with pytest.raises(QueryError, match="not covered"):
                engine.distance(10**9, sorted(graph.vertices())[0])

    def test_invalidate_redials(self, server, expected):
        pairs, want = expected
        engine = RemoteEngine(addresses=_addr(server))
        assert engine.distances(pairs[:5]) == want[:5]
        engine.invalidate()
        assert not engine.frozen
        assert engine.distances(pairs[:5]) == want[:5]
        engine.close()


class TestOwnershipRouting:
    def test_split_fleet_serves_and_routes_by_owner(self, shard_path, expected):
        pairs, want = expected
        slices = assign_shards(4, 2)
        servers = [
            ShardServer(load_serving_index(shard_path), owned=owned)
            for owned in slices
        ]
        for srv in servers:
            srv.start()
        try:
            engine = RemoteEngine(
                addresses=[srv.address for srv in servers]
            )
            assert engine.distances(pairs) == want
            engine.close()
            served = [srv.queries_served for srv in servers]
            assert all(n > 0 for n in served), served  # both owners used
        finally:
            for srv in servers:
                srv.shutdown()

    def test_fleet_layout_disagreement_rejected(self, graph, shard_path, tmp_path):
        other = ISLabelIndex.build(graph)
        other_path = tmp_path / "other.shards"
        save_snapshot(other, other_path, shards=2)  # different shard layout
        with ShardServer(load_serving_index(shard_path)) as a:
            with ShardServer(load_serving_index(str(other_path))) as b:
                with pytest.raises(StorageError, match="shard layout"):
                    RemoteEngine(addresses=[a.address, b.address]).freeze()

    def test_kind_mismatch_rejected(self, server):
        with pytest.raises(StorageError, match="orientation"):
            DirectedRemoteEngine(addresses=_addr(server)).freeze()

    def test_dead_worker_fails_loudly(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        free_port = sock.getsockname()[1]
        sock.close()
        with pytest.raises(StorageError, match="cannot connect"):
            RemoteEngine(addresses=[("127.0.0.1", free_port)]).freeze()


class TestDirectedRemote:
    def test_directed_roundtrip(self, tmp_path):
        import random

        rng = random.Random(3)
        dg = DiGraph()
        for v in range(40):
            dg.add_vertex(v)
        for _ in range(160):
            u, v = rng.sample(range(40), 2)
            dg.merge_edge(u, v, rng.randint(1, 4))
        index = DirectedISLabelIndex.build(dg)
        path = tmp_path / "d.shards"
        save_snapshot(index, path, shards=3)
        vertices = sorted(dg.vertices())[::3]
        pairs = [(s, t) for s in vertices for t in vertices]
        want = index.distances(pairs)
        with ShardServer(load_serving_index(str(path))) as srv:
            assert srv.kind == "directed"
            with DirectedRemoteEngine(addresses=_addr(srv)) as engine:
                assert engine.distances(pairs) == want


class TestServerLifecycle:
    def test_hello_reports_layout_and_ownership(self, server):
        sock = socket.create_connection(server.address)
        try:
            hello = wire.request(sock, {"op": "hello"})
            assert hello["kind"] == "undirected"
            assert hello["engine"] == "sharded"
            assert hello["num_shards"] == len(hello["shard_starts"]) >= 2
            assert hello["owned"] == list(range(hello["num_shards"]))
            assert wire.request(sock, {"op": "ping"}) == {"ok": True}
            stats = wire.request(sock, {"op": "stats"})
            assert stats["requests_served"] >= 2
        finally:
            sock.close()

    def test_unknown_op_answered_not_fatal(self, server):
        sock = socket.create_connection(server.address)
        try:
            assert "error" in wire.request(sock, {"op": "frobnicate"})
            assert wire.request(sock, {"op": "ping"}) == {"ok": True}
        finally:
            sock.close()

    def test_malformed_distances_survive(self, server):
        sock = socket.create_connection(server.address)
        try:
            got = wire.request(sock, {"op": "distances", "pairs": [["x", 1]]})
            assert "error" in got
            assert wire.request(sock, {"op": "ping"}) == {"ok": True}
        finally:
            sock.close()

    def test_shutdown_op_stops_server_and_reaps_threads(self, shard_path):
        srv = ShardServer(load_serving_index(shard_path))
        srv.start()
        sock = socket.create_connection(srv.address)
        assert wire.request(sock, {"op": "shutdown"}).get("bye")
        sock.close()
        srv.shutdown()  # idempotent with the wire-initiated stop
        assert srv._accept_thread is None
        assert srv._handlers == []
        with pytest.raises(StorageError):
            srv.address  # socket is gone

    def test_owned_out_of_range_rejected(self, shard_path):
        with pytest.raises(StorageError, match="out of range"):
            ShardServer(load_serving_index(shard_path), owned=[99])


class TestReviewRegressions:
    def test_facade_single_query_path_works_remote(
        self, server, shard_path, expected, monkeypatch
    ):
        """ISLabelIndex.distance()/query() must work on the remote engine
        (the facade's packed-internals fast path cannot apply)."""
        host, port = server.address
        monkeypatch.setenv(REMOTE_ADDRS_ENV, f"{host}:{port}")
        index = load_index(shard_path, engine="remote")
        pairs, want = expected
        assert index.distance(*pairs[3]) == want[3]
        result = index.query(*pairs[3])
        assert result.distance == want[3]
        assert index.search_mode == "remote"

    def test_cli_query_engine_remote(self, server, shard_path, monkeypatch, capsys):
        from repro.cli import main

        host, port = server.address
        monkeypatch.setenv(REMOTE_ADDRS_ENV, f"{host}:{port}")
        index = load_index(shard_path, engine="fast")
        s = sorted(index.hierarchy.level_of)[0]
        t = sorted(index.hierarchy.level_of)[-1]
        assert main(["query", shard_path, str(s), str(t), "--engine", "remote"]) == 0
        out = capsys.readouterr().out
        assert f"dist({s}, {t}) = {index.distance(s, t)}" in out

    def test_shutdown_closes_idle_connections(self, shard_path):
        srv = ShardServer(load_serving_index(shard_path))
        srv.start()
        idle = socket.create_connection(srv.address)
        wire.request(idle, {"op": "ping"})  # handler thread now blocked in recv
        import time

        started = time.monotonic()
        srv.shutdown()
        assert time.monotonic() - started < 4.0  # not one join-timeout per conn
        assert srv._handlers == [] and srv._conns == []
        assert wire.recv_frame(idle) is None  # server side was closed
        idle.close()

    def test_streaming_flush_retries_transient_failure_once(self):
        """One transient dispatch failure is absorbed by the flush itself
        (retry-once); the caller never sees it."""
        from repro.serving.scheduler import SchedulerPolicy, ShardScheduler

        attempts = []

        def flaky(chunk, bucket):
            attempts.append(list(chunk))
            if len(attempts) == 1:
                raise StorageError("worker died")
            return [42.0] * len(chunk)

        sched = ShardScheduler([], flaky, SchedulerPolicy(max_batch=2))
        t1 = sched.submit(1, 2)
        t2 = sched.submit(3, 4)  # bucket full -> flush -> fail -> retry ok
        assert sched.pending_count == 0
        assert len(attempts) == 2
        assert sched.result(t1) == 42.0 and sched.result(t2) == 42.0

    def test_streaming_dispatch_double_failure_keeps_queries_pending(self):
        from repro.serving.scheduler import SchedulerPolicy, ShardScheduler

        attempts = []

        def flaky(chunk, bucket):
            attempts.append(list(chunk))
            if len(attempts) <= 2:
                raise StorageError("worker died")
            return [42.0] * len(chunk)

        sched = ShardScheduler([], flaky, SchedulerPolicy(max_batch=2))
        t1 = sched.submit(1, 2)
        with pytest.raises(StorageError):
            sched.submit(3, 4)  # full bucket -> flush -> fails twice
        assert sched.pending_count == 2  # nothing was lost
        assert sched.pending() == {t1: (1, 2), t1 + 1: (3, 4)}
        results = sched.drain()  # third attempt (next flush) succeeds
        assert results == {t1: 42.0, t1 + 1: 42.0}
        assert sched.pending_count == 0
        assert sched.pending() == {}


class TestServerCacheTier:
    def test_cache_off_by_default(self, server):
        assert server.cache is None
        host, port = server.address
        with socket.create_connection((host, port)) as sock:
            stats = wire.request(sock, {"op": "stats"})
        assert stats["cache"] is None

    def test_cached_server_bit_identical_and_counted(self, shard_path, expected):
        pairs, want = expected
        with ShardServer(
            load_serving_index(shard_path, engine="sharded"),
            cache_entries=4096,
        ) as srv:
            engine = RemoteEngine(addresses=[srv.address])
            try:
                assert engine.distances(pairs) == want
                assert engine.distances(pairs) == want  # replay: cache hits
            finally:
                engine.close()
            assert srv.cache is not None
            host, port = srv.address
            with socket.create_connection((host, port)) as sock:
                stats = wire.request(sock, {"op": "stats"})
        cache = stats["cache"]
        assert cache["hits"] >= len(want)
        assert cache["entries"] >= 1

    def test_cached_remote_through_load_index(
        self, server, shard_path, expected, monkeypatch
    ):
        host, port = server.address
        monkeypatch.setenv(REMOTE_ADDRS_ENV, f"{host}:{port}")
        index = load_index(shard_path, engine="cached:remote")
        assert index.engine == "cached:remote"
        pairs, want = expected
        assert index.distances(pairs) == want
        assert index.distances(pairs) == want
        assert index._fast.cache.stats()["hits"] >= len(want)
        # No G_k in hand on the client: dirty invalidation must flush.
        index._fast.invalidate({1})
        assert len(index._fast.cache) == 0
