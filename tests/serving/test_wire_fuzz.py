"""Wire-level fuzzing: a worker must survive any byte stream a client
(or the network) can throw at it, and the timeout machinery must
classify idle vs mid-frame stalls correctly."""

import json
import random
import socket
import struct
import time

import pytest

from repro.core.index import ISLabelIndex
from repro.core.serialization import save_snapshot
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.serving import wire
from repro.serving.server import ShardServer, load_serving_index


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    graph = ensure_connected(erdos_renyi(40, 90, seed=17, max_weight=4), seed=17)
    index = ISLabelIndex.build(graph)
    path = tmp_path_factory.mktemp("fuzz") / "g.shards"
    save_snapshot(index, path, shards=2)
    with ShardServer(load_serving_index(str(path))) as srv:
        yield srv


def _alive(server):
    """The liveness probe after each attack: a fresh connection answers."""
    sock = socket.create_connection(server.address, timeout=10.0)
    try:
        return wire.request(sock, {"op": "ping"}) == {"ok": True}
    finally:
        sock.close()


def _send_raw(server, blob):
    sock = socket.create_connection(server.address, timeout=10.0)
    sock.sendall(blob)
    return sock


class TestServerSurvivesGarbage:
    def test_truncated_frame_then_hangup(self, server):
        payload = json.dumps({"op": "ping"}).encode()
        sock = _send_raw(
            server, struct.pack("!I", len(payload)) + payload[: len(payload) // 2]
        )
        sock.close()  # EOF mid-frame on the server side
        assert _alive(server)

    def test_oversized_length_prefix(self, server):
        sock = _send_raw(server, struct.pack("!I", wire.MAX_FRAME_BYTES + 1))
        # The server refuses the announcement and drops the connection
        # without allocating the claimed buffer.
        assert wire.recv_frame(sock) is None
        sock.close()
        assert _alive(server)

    def test_maximal_length_prefix(self, server):
        sock = _send_raw(server, struct.pack("!I", 0xFFFFFFFF))
        assert wire.recv_frame(sock) is None
        sock.close()
        assert _alive(server)

    def test_invalid_json_payload(self, server):
        blob = b"\xff\xfe{not json"
        sock = _send_raw(server, struct.pack("!I", len(blob)) + blob)
        assert wire.recv_frame(sock) is None
        sock.close()
        assert _alive(server)

    def test_non_object_json_payload(self, server):
        blob = json.dumps(["op", "ping"]).encode()
        sock = _send_raw(server, struct.pack("!I", len(blob)) + blob)
        assert wire.recv_frame(sock) is None
        sock.close()
        assert _alive(server)

    def test_zero_length_frame(self, server):
        sock = _send_raw(server, struct.pack("!I", 0))
        assert wire.recv_frame(sock) is None  # b"" is not a JSON object
        sock.close()
        assert _alive(server)

    def test_random_garbage_streams(self, server):
        rng = random.Random(1234)
        for trial in range(10):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 512)))
            sock = _send_raw(server, blob)
            sock.close()
        assert _alive(server)

    def test_unknown_op_keeps_the_connection(self, server):
        sock = socket.create_connection(server.address, timeout=10.0)
        try:
            got = wire.request(sock, {"op": "frobnicate"})
            assert got["error_kind"] == "query"
            # Structured rejection, not a hangup: the same connection works.
            assert wire.request(sock, {"op": "ping"}) == {"ok": True}
        finally:
            sock.close()

    @pytest.mark.parametrize(
        "pairs",
        [
            "zzz",                 # not a list
            [[1]],                 # arity violation
            [["a", "b"]],          # non-numeric vertices
            [[None, None]],        # nulls
            [{"s": 1, "t": 2}],    # objects instead of pairs
        ],
    )
    def test_malformed_distance_payloads(self, server, pairs):
        sock = socket.create_connection(server.address, timeout=10.0)
        try:
            got = wire.request(sock, {"op": "distances", "pairs": pairs})
            assert got["error_kind"] == "query"
            assert wire.request(sock, {"op": "ping"}) == {"ok": True}
        finally:
            sock.close()

    def test_missing_op_field(self, server):
        sock = socket.create_connection(server.address, timeout=10.0)
        try:
            assert "error" in wire.request(sock, {"pairs": [[1, 2]]})
            assert wire.request(sock, {"op": "ping"}) == {"ok": True}
        finally:
            sock.close()


class TestTimeoutConfiguration:
    def test_unset_and_zero_mean_off(self, monkeypatch):
        monkeypatch.delenv(wire.WIRE_TIMEOUT_ENV, raising=False)
        assert wire.configured_timeout() is None
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "0")
        assert wire.configured_timeout() is None
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "  ")
        assert wire.configured_timeout() is None

    def test_value_parsed(self, monkeypatch):
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "2.5")
        assert wire.configured_timeout() == 2.5

    @pytest.mark.parametrize("raw", ["soon", "-1", "nan", "inf"])
    def test_bad_values_raise_naming_the_knob(self, monkeypatch, raw):
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, raw)
        with pytest.raises(ValueError, match=wire.WIRE_TIMEOUT_ENV):
            wire.configured_timeout()

    def test_apply_timeout_arms_the_socket(self, monkeypatch):
        a, b = socket.socketpair()
        try:
            monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "1.5")
            assert wire.apply_timeout(a) == 1.5
            assert a.gettimeout() == 1.5
            assert wire.apply_timeout(b, timeout=0.25) == 0.25
            assert b.gettimeout() == 0.25
        finally:
            a.close()
            b.close()


class TestTimeoutSemantics:
    @pytest.fixture()
    def pair(self):
        a, b = socket.socketpair()
        yield a, b
        a.close()
        b.close()

    def test_idle_timeout_is_not_partial(self, pair):
        a, _ = pair
        wire.apply_timeout(a, timeout=0.05)
        with pytest.raises(wire.WireTimeout) as exc:
            wire.recv_frame(a)
        assert exc.value.partial is False  # nothing read: keep the connection

    def test_partial_prefix_is_partial(self, pair):
        a, b = pair
        wire.apply_timeout(b, timeout=0.05)
        a.sendall(b"\x00\x00")  # 2 of the 4 prefix bytes
        with pytest.raises(wire.WireTimeout) as exc:
            wire.recv_frame(b)
        assert exc.value.partial is True

    def test_stall_inside_payload_is_partial(self, pair):
        a, b = pair
        wire.apply_timeout(b, timeout=0.05)
        a.sendall(struct.pack("!I", 64))  # full prefix, no payload
        with pytest.raises(wire.WireTimeout) as exc:
            wire.recv_frame(b)
        assert exc.value.partial is True

    def test_timeout_is_a_wire_error(self):
        # Clients catch WireError for failover; a timeout must be caught
        # by the same handler.
        assert issubclass(wire.WireTimeout, wire.WireError)

    def test_server_keeps_idle_connections_across_timeouts(
        self, monkeypatch, server
    ):
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "0.2")
        sock = socket.create_connection(server.address, timeout=10.0)
        try:
            assert wire.request(sock, {"op": "ping"}) == {"ok": True}
            time.sleep(0.5)  # several idle-timeout ticks on the server
            assert wire.request(sock, {"op": "ping"}) == {"ok": True}
        finally:
            sock.close()

    def test_server_drops_connections_stalled_mid_frame(
        self, monkeypatch, server
    ):
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "0.2")
        sock = socket.create_connection(server.address, timeout=10.0)
        try:
            sock.sendall(struct.pack("!I", 32))  # announce, then stall
            time.sleep(0.6)
            # Stream state unknown: the server dropped this connection...
            assert wire.recv_frame(sock) is None
        finally:
            sock.close()
        assert _alive(server)  # ...but only this connection
