"""Async serving core: pipelined wire protocol + admission control.

Covers the protocol-v2 request-id machinery end to end: interleaved
request ids on one connection completing out of order, multi-client
pipelining fuzz, the ``overloaded`` admission/backoff path, clean
cancellation on abrupt client disconnect (no thread or socket leak), the
shared env-knob parser, and a chaos case — SIGKILL a worker with
multiple requests in flight and stay bit-exact.
"""

import socket
import struct
import threading
import time

import pytest

from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_snapshot
from repro.envvars import read_env_float, read_env_int
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.serving import wire
from repro.serving.chaos import ChaosProxy, FaultInjector
from repro.serving.membership import LIVE, RetryPolicy
from repro.serving.remote import RemoteEngine
from repro.serving.scheduler import assign_shards
from repro.serving.server import ShardServer, load_serving_index

SHARDS = 6
FAST_RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.01, max_delay_s=0.05)


@pytest.fixture(scope="module")
def graph():
    return ensure_connected(erdos_renyi(60, 150, seed=23, max_weight=5), seed=23)


@pytest.fixture(scope="module")
def snap_path(graph, tmp_path_factory):
    index = ISLabelIndex.build(graph)
    path = tmp_path_factory.mktemp("async") / "g.shards"
    save_snapshot(index, path, shards=SHARDS)
    return str(path)


@pytest.fixture(scope="module")
def expected(graph, snap_path):
    index = load_index(snap_path, engine="fast")
    vertices = sorted(graph.vertices())[::3]
    pairs = [(s, t) for s in vertices for t in vertices]
    return pairs, index.distances(pairs)


@pytest.fixture()
def server(snap_path):
    with ShardServer(
        load_serving_index(snap_path, engine="sharded"), max_concurrency=2
    ) as srv:
        yield srv


def _connect(server, **kwargs):
    return wire.PipelinedConnection(
        socket.create_connection(server.address), **kwargs
    )


class TestPipelinedConnection:
    def test_out_of_order_completion_by_request_id(self, server, expected):
        """Many requests in flight on one socket; answers come back right
        even though the admission executor may reorder completions."""
        pairs, want = expected
        chan = _connect(server)
        try:
            hello = chan.request({"op": "hello"})
            assert hello["version"] == wire.PROTOCOL_VERSION
            futures = [
                chan.submit({"op": "distances", "pairs": [[s, t]]})
                for s, t in pairs[:48]
            ]
            got = [f.result(timeout=30)["distances"][0] for f in futures]
            assert got == want[:48]
        finally:
            chan.close()

    def test_interleaved_control_ops_complete_inline(self, server):
        """Control traffic is answered by the reader thread while
        searches wait in the executor — a ping never queues behind work."""
        chan = _connect(server)
        try:
            search = chan.submit({"op": "distances", "pairs": [[0, 1]]})
            ping = chan.request({"op": "ping"})
            assert ping == {"ok": True}
            assert "distances" in search.result(timeout=30)
        finally:
            chan.close()

    def test_v1_peer_fallback_caps_in_flight(self, server):
        """pipelined=False (what a client uses against a v1 peer) still
        round-trips — one request at a time, FIFO matched."""
        chan = _connect(server, pipelined=False)
        try:
            for _ in range(5):
                assert chan.request({"op": "ping"})["ok"] is True
            assert chan.in_flight == 0
        finally:
            chan.close()

    def test_submit_after_close_raises(self, server):
        chan = _connect(server)
        chan.close()
        with pytest.raises(wire.WireError):
            chan.submit({"op": "ping"})

    def test_multi_client_pipelining_fuzz(self, server, expected):
        """Several client threads, each with interleaved ids in flight,
        against one server: every answer lands on the right future."""
        pairs, want = expected
        errors = []

        def client(offset):
            try:
                chan = _connect(server, max_in_flight=16)
                try:
                    window = [
                        (pairs[(offset + i) % len(pairs)], i)
                        for i in range(64)
                    ]
                    futures = [
                        (chan.submit({"op": "distances", "pairs": [[s, t]]}), (s, t))
                        for (s, t), _ in window
                    ]
                    for future, (s, t) in futures:
                        got = future.result(timeout=30)["distances"][0]
                        assert got == want[pairs.index((s, t))]
                finally:
                    chan.close()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(o,)) for o in (0, 131, 977)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors


class TestAdmissionControl:
    def test_overloaded_rejection_is_structured(self, snap_path):
        """A full admission queue answers overloaded immediately, with
        depth fields, and the connection survives."""
        with ShardServer(
            load_serving_index(snap_path, engine="sharded"),
            max_concurrency=1,
            max_queue=1,
        ) as srv:
            chan = _connect(srv, max_in_flight=32)
            try:
                futures = [
                    chan.submit({"op": "distances", "pairs": [[0, 1]]})
                    for _ in range(24)
                ]
                responses = [f.result(timeout=30) for f in futures]
                rejected = [r for r in responses if "error" in r]
                served = [r for r in responses if "distances" in r]
                assert served, "some searches must get through"
                assert rejected, "a 24-deep burst must overflow queue=1"
                for r in rejected:
                    assert r["error_kind"] == "overloaded"
                    assert r["max_queue"] == 1
                # The connection is still usable after rejections.
                assert chan.request({"op": "ping"})["ok"] is True
                depth = chan.request({"op": "stats"})["depth"]
                assert depth["rejected"] == len(rejected)
            finally:
                chan.close()

    def test_remote_engine_backs_off_and_retries_overloaded(self, snap_path):
        """The remote engine treats overloaded as backpressure: retry the
        same healthy fleet (nobody marked dead), eventually succeed."""
        with ShardServer(
            load_serving_index(snap_path, engine="sharded"),
            max_concurrency=1,
            max_queue=2,
        ) as srv:
            fast = load_index(snap_path, engine="fast")
            pairs = [(s, t) for s in range(0, 40) for t in range(0, 40, 7)]
            host, port = srv.address
            with RemoteEngine(
                addresses=[(host, port)],
                retry=RetryPolicy(
                    max_attempts=30, base_delay_s=0.01, max_delay_s=0.03
                ),
                max_in_flight=64,
            ) as engine:
                assert engine.distances(pairs) == fast.distances(pairs)
                # Backpressure is not a fault: nobody excluded or dead.
                assert engine._workers[0].health.state == LIVE
                assert engine.failovers == []

    def test_stats_reports_serving_depth(self, server):
        chan = _connect(server)
        try:
            stats = chan.request({"op": "stats"})
            depth = stats["depth"]
            for key in (
                "in_flight",
                "queued",
                "rejected",
                "cancelled",
                "executed",
                "max_concurrency",
                "max_queue",
            ):
                assert key in depth
            conns = stats["connections"]
            assert len(conns) == 1 and conns[0]["in_flight"] == 0
        finally:
            chan.close()


class TestDisconnectCleanup:
    def test_abrupt_disconnect_cancels_pending_work(self, snap_path, expected):
        """The bugfix: a client that vanishes mid-request must not leak
        its queued searches, its handler thread, or its socket."""
        pairs, _ = expected
        with ShardServer(
            load_serving_index(snap_path, engine="sharded"),
            max_concurrency=1,
            max_queue=64,
        ) as srv:
            sock = socket.create_connection(srv.address)
            for i, (s, t) in enumerate(pairs[:32]):
                wire.send_frame(
                    sock, {"op": "distances", "pairs": [[s, t]], "id": i}
                )
            # Vanish abruptly with most of those still queued.
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),  # RST on close, not FIN
            )
            sock.close()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with srv._lock:
                    if not srv._handlers and not srv._conns and not srv._states:
                        break
                time.sleep(0.02)
            with srv._lock:
                assert srv._handlers == [], "handler thread leaked"
                assert srv._conns == [], "socket leaked"
                assert srv._states == [], "connection state leaked"
            # A fresh client still gets served; cancelled work is counted.
            chan = _connect(srv)
            try:
                assert "distances" in chan.request(
                    {"op": "distances", "pairs": [[0, 1]]}
                )
                # The executor decrements in_flight a beat after the
                # response is sent; poll for the drained state.
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    depth = chan.request({"op": "stats"})["depth"]
                    if depth["in_flight"] == 0 and depth["queued"] == 0:
                        break
                    time.sleep(0.02)
                assert depth["in_flight"] == 0 and depth["queued"] == 0
            finally:
                chan.close()

    def test_server_shutdown_reaps_executor_threads(self, snap_path):
        srv = ShardServer(load_serving_index(snap_path, engine="sharded"))
        srv.start()
        before = {t.name for t in threading.enumerate()}
        assert any(n.startswith("repro-search-") for n in before)
        srv.shutdown()
        time.sleep(0.1)
        after = {t.name for t in threading.enumerate() if t.is_alive()}
        assert not any(n.startswith("repro-search-") for n in after)


class TestEnvHelper:
    def test_unset_and_blank_are_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert read_env_float("REPRO_TEST_KNOB") is None
        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        assert read_env_float("REPRO_TEST_KNOB") is None

    def test_blank_can_be_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "")
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            read_env_float("REPRO_TEST_KNOB", blank_is_unset=False)

    def test_valid_values(self, monkeypatch):
        for raw, want in (("0", 0.0), ("2.5", 2.5), ("1e2", 100.0)):
            monkeypatch.setenv("REPRO_TEST_KNOB", raw)
            assert read_env_float("REPRO_TEST_KNOB") == want

    def test_invalid_values_name_variable_and_quantity(self, monkeypatch):
        for bad in ("soon", "-1", "inf", "-inf", "nan", "1j"):
            monkeypatch.setenv("REPRO_TEST_KNOB", bad)
            with pytest.raises(ValueError, match="REPRO_TEST_KNOB") as err:
                read_env_float("REPRO_TEST_KNOB", what="frob interval")
            assert "frob interval" in str(err.value), bad

    def test_raw_override_skips_environ(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert read_env_float("REPRO_TEST_KNOB", raw="3.5") == 3.5
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            read_env_float("REPRO_TEST_KNOB", raw="banana")

    def test_wire_timeout_uses_helper(self, monkeypatch):
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "0.25")
        assert wire.configured_timeout() == 0.25
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "")
        assert wire.configured_timeout() is None
        monkeypatch.setenv(wire.WIRE_TIMEOUT_ENV, "never")
        with pytest.raises(ValueError, match=wire.WIRE_TIMEOUT_ENV):
            wire.configured_timeout()


class TestEnvIntHelper:
    def test_unset_and_blank_are_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_COUNT", raising=False)
        assert read_env_int("REPRO_TEST_COUNT") is None
        monkeypatch.setenv("REPRO_TEST_COUNT", "   ")
        assert read_env_int("REPRO_TEST_COUNT") is None

    def test_valid_values(self, monkeypatch):
        for raw, want in (("0", 0), ("8", 8), ("  42 ", 42)):
            monkeypatch.setenv("REPRO_TEST_COUNT", raw)
            assert read_env_int("REPRO_TEST_COUNT") == want

    def test_fractional_and_garbage_name_variable(self, monkeypatch):
        for bad in ("2.5", "eight", "1e2", "inf", ""):
            with pytest.raises(ValueError, match="REPRO_TEST_COUNT") as err:
                read_env_int(
                    "REPRO_TEST_COUNT",
                    what="widget budget",
                    raw=bad,
                    blank_is_unset=False,
                )
            assert "widget budget" in str(err.value), bad

    def test_minimum_enforced_with_bound_in_message(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_COUNT", "0")
        with pytest.raises(ValueError, match=">= 1"):
            read_env_int("REPRO_TEST_COUNT", minimum=1)
        monkeypatch.setenv("REPRO_TEST_COUNT", "-3")
        with pytest.raises(ValueError, match="REPRO_TEST_COUNT"):
            read_env_int("REPRO_TEST_COUNT")

    def test_in_flight_window_reads_env(self, monkeypatch):
        from repro.serving import remote

        monkeypatch.setenv(remote.REMOTE_MAX_IN_FLIGHT_ENV, "7")
        assert remote._in_flight_window(None) == 7
        monkeypatch.delenv(remote.REMOTE_MAX_IN_FLIGHT_ENV, raising=False)
        assert remote._in_flight_window(None) == remote.DEFAULT_MAX_IN_FLIGHT
        assert remote._in_flight_window(5) == 5


class TestEnvBoolHelper:
    def test_unset_and_blank_are_none(self, monkeypatch):
        from repro.envvars import read_env_bool

        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert read_env_bool("REPRO_TEST_FLAG") is None
        monkeypatch.setenv("REPRO_TEST_FLAG", "  ")
        assert read_env_bool("REPRO_TEST_FLAG") is None

    def test_strict_vocabulary(self, monkeypatch):
        from repro.envvars import read_env_bool

        for raw, want in (
            ("true", True),
            ("TRUE", True),
            ("1", True),
            ("false", False),
            (" False ", False),
            ("0", False),
        ):
            monkeypatch.setenv("REPRO_TEST_FLAG", raw)
            assert read_env_bool("REPRO_TEST_FLAG") is want, raw
        # yes/on/no/off must fail loudly, naming variable and quantity.
        for bad in ("yes", "no", "on", "off", "2", "t"):
            monkeypatch.setenv("REPRO_TEST_FLAG", bad)
            with pytest.raises(ValueError, match="REPRO_TEST_FLAG") as err:
                read_env_bool("REPRO_TEST_FLAG", what="cache enable flag")
            assert "cache enable flag" in str(err.value), bad

    def test_cache_knobs_route_through_envvars(self, monkeypatch):
        from repro.caching.engine import (
            ENV_CACHE_ENTRIES,
            ENV_CACHE_TTL_S,
            cache_entries_from_env,
            cache_ttl_from_env,
        )
        from repro.errors import IndexBuildError

        monkeypatch.setenv(ENV_CACHE_ENTRIES, "4096")
        assert cache_entries_from_env() == 4096
        monkeypatch.setenv(ENV_CACHE_ENTRIES, "0")
        with pytest.raises(IndexBuildError, match=ENV_CACHE_ENTRIES):
            cache_entries_from_env()
        monkeypatch.setenv(ENV_CACHE_TTL_S, "2.5")
        assert cache_ttl_from_env() == 2.5
        monkeypatch.setenv(ENV_CACHE_TTL_S, "0")
        assert cache_ttl_from_env() is None  # 0 means "no TTL"
        monkeypatch.setenv(ENV_CACHE_TTL_S, "soon")
        with pytest.raises(IndexBuildError, match=ENV_CACHE_TTL_S):
            cache_ttl_from_env()


class TestLatencyLink:
    """ChaosProxy ``"latency"`` mode: a long but uncongested link."""

    def test_pipelining_hides_link_latency(self, server, expected):
        """N requests over an 80 ms-RTT link should take ~1 RTT, not N:
        the latency sender must not stack delays chunk-on-chunk."""
        pairs, want = expected
        proxy = ChaosProxy(server.address)
        proxy.latency_s = 0.08
        proxy.mode = "latency"
        chan = wire.PipelinedConnection(
            socket.create_connection(proxy.address)
        )
        try:
            chan.request({"op": "ping"})  # connection + first RTT warm
            started = time.monotonic()
            futures = [
                chan.submit({"op": "distances", "pairs": [[s, t]]})
                for s, t in pairs[:6]
            ]
            got = [f.result(timeout=30)["distances"][0] for f in futures]
            elapsed = time.monotonic() - started
            assert got == want[:6]
            # Serial would pay >= 6 x 80 ms = 480 ms; overlapped
            # in-flight requests share the propagation delay.
            assert elapsed < 0.4, f"link delays stacked: {elapsed:.3f}s"
        finally:
            chan.close()
            proxy.close()


class TestChaosPipelined:
    def test_sigkill_with_requests_in_flight_stays_exact(
        self, snap_path, expected
    ):
        """SIGKILL a worker while >= 2 pipelined requests are in flight;
        replica-aware retry keeps every answer bit-exact."""
        pairs, want = expected
        ownership = assign_shards(SHARDS, 3, replication=2)
        with FaultInjector() as fleet:
            fleet.spawn_fleet(
                snap_path,
                ownership,
                extra_env={"REPRO_WIRE_TIMEOUT_S": "2.0"},
            )
            engine = RemoteEngine(
                addresses=fleet.addresses, retry=FAST_RETRY, max_in_flight=16
            )
            try:
                engine.freeze()
                results = {}
                errors = []
                started = threading.Barrier(3)

                def drive(lane):
                    try:
                        started.wait(timeout=10)
                        lane_pairs = pairs[lane::3]
                        results[lane] = engine.distances(lane_pairs)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [
                    threading.Thread(target=drive, args=(lane,))
                    for lane in range(2)
                ]
                for t in threads:
                    t.start()
                # Kill a worker while both driver threads are mid-stream:
                # >= 2 requests in flight across the fleet.
                started.wait(timeout=10)
                time.sleep(0.05)
                fleet.workers[0].kill()
                for t in threads:
                    t.join(timeout=120)
                assert not errors, errors
                for lane in (0, 1):
                    assert results[lane] == want[lane::3], f"lane {lane}"
            finally:
                engine.close()
        assert all(
            w.proc is None or w.proc.poll() is not None for w in fleet.workers
        )
