"""Versioned membership, worker health, retries, and the staleness path."""

import random
import socket
import time

import pytest

from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_snapshot
from repro.errors import QueryError, StorageError
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.serving import wire
from repro.serving.membership import (
    DEAD,
    LIVE,
    SUSPECT,
    MembershipMap,
    RetryPolicy,
    WorkerHealth,
)
from repro.serving.remote import RemoteEngine
from repro.serving.scheduler import assign_shards
from repro.serving.server import ShardServer, load_serving_index


@pytest.fixture(scope="module")
def graph():
    return ensure_connected(erdos_renyi(60, 150, seed=21, max_weight=5), seed=21)


@pytest.fixture(scope="module")
def shard_path(graph, tmp_path_factory):
    index = ISLabelIndex.build(graph)
    path = tmp_path_factory.mktemp("membership") / "g.shards"
    save_snapshot(index, path, shards=4)
    return str(path)


@pytest.fixture(scope="module")
def expected(graph, shard_path):
    index = load_index(shard_path, engine="fast")
    vertices = sorted(graph.vertices())[::3]
    pairs = [(s, t) for s in vertices for t in vertices]
    return pairs, index.distances(pairs)


def _rpc(address, payload):
    sock = socket.create_connection(address, timeout=10.0)
    try:
        return wire.request(sock, payload)
    finally:
        sock.close()


class TestMembershipMap:
    def test_set_seeds_without_epoch_bump(self):
        m = MembershipMap(epoch=3)
        m.set("a:1", [2, 0, 2])
        assert m.epoch == 3
        assert m.owned_by("a:1") == [0, 2]  # sorted, deduped
        assert "a:1" in m and len(m) == 1

    def test_join_and_leave_bump_monotonically(self):
        m = MembershipMap()
        assert m.join("a:1", [0]) == 1
        assert m.join("b:2", [1]) == 2
        assert m.owners_of(0) == ["a:1"]
        assert m.leave("a:1") == 3
        assert "a:1" not in m
        # Unknown worker: the intent still versions the map.
        assert m.leave("ghost:9") == 4

    def test_wire_epoch_imposes_ordering(self):
        m = MembershipMap()
        assert m.join("a:1", [0], epoch=10) == 10
        # A replayed older message cannot move the fleet backwards.
        assert m.join("a:1", [0], epoch=4) == 11

    def test_merge_adopts_only_newer_views(self):
        old = MembershipMap(epoch=5, members={"a:1": [0]})
        new = MembershipMap(epoch=9, members={"b:2": [0, 1]})
        assert old.merge(new) is True
        assert old.epoch == 9 and old.workers() == ["b:2"]
        assert old.merge(MembershipMap(epoch=9, members={"c:3": [2]})) is False
        assert old.workers() == ["b:2"]

    def test_wire_roundtrip(self):
        m = MembershipMap(epoch=7, members={"a:1": [1, 0], "b:2": [2]})
        again = MembershipMap.from_wire(m.to_wire())
        assert again.epoch == 7
        assert again.members() == {"a:1": [0, 1], "b:2": [2]}

    def test_malformed_wire_payload_rejected(self):
        with pytest.raises(StorageError, match="membership"):
            MembershipMap.from_wire({"epoch": 3})

    def test_empty_worker_id_rejected(self):
        with pytest.raises(StorageError, match="non-empty"):
            MembershipMap().set("", [0])


class TestWorkerHealth:
    def test_suspect_then_dead_then_recovered(self):
        h = WorkerHealth(dead_after=2)
        assert h.state == LIVE and h.usable
        assert h.record_failure() == SUSPECT
        assert h.usable  # suspect still routable (deprioritized)
        assert h.record_failure() == DEAD
        assert not h.usable
        assert h.record_success() == LIVE
        assert h.failures == 0

    def test_fatal_failure_skips_suspect(self):
        h = WorkerHealth(dead_after=5)
        assert h.record_failure(fatal=True) == DEAD

    def test_bad_threshold_rejected(self):
        with pytest.raises(QueryError, match="dead_after"):
            WorkerHealth(dead_after=0)


class TestRetryPolicy:
    def test_defaults_validate(self):
        p = RetryPolicy().validate()
        assert p.max_attempts >= 2  # a retry policy that never retries is no policy

    def test_exponential_backoff_is_capped(self):
        p = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.0)
        assert p.delay(0) == pytest.approx(0.1)
        assert p.delay(1) == pytest.approx(0.2)
        assert p.delay(10) == pytest.approx(0.5)  # capped

    def test_jitter_stays_in_band(self):
        p = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(4):
            full = min(0.1 * 2**attempt, 1.0)
            for _ in range(20):
                d = p.delay(attempt, rng)
                assert full * 0.5 <= d <= full

    def test_zero_base_means_no_sleep(self):
        assert RetryPolicy(base_delay_s=0.0).delay(3) == 0.0

    def test_bad_values_rejected(self):
        with pytest.raises(QueryError, match="max_attempts"):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(QueryError, match="delays"):
            RetryPolicy(base_delay_s=-1).validate()
        with pytest.raises(QueryError, match="jitter"):
            RetryPolicy(jitter=1.5).validate()


class TestServerMembershipOps:
    def test_hello_reports_epoch_and_ranges(self, shard_path):
        srv = ShardServer(load_serving_index(shard_path), owned=[0, 1], epoch=5)
        with srv:
            hello = _rpc(srv.address, {"op": "hello"})
        assert hello["epoch"] == 5
        assert hello["worker"] == srv.worker_id
        assert hello["draining"] is False
        ranges = hello["owned_ranges"]
        assert len(ranges) == 2
        assert ranges[0][0] == srv.shard_starts[0]
        assert ranges[0][1] == srv.shard_starts[1]  # exclusive hi

    def test_membership_op_publishes_the_self_view(self, shard_path):
        with ShardServer(load_serving_index(shard_path), owned=[2], epoch=3) as srv:
            view = _rpc(srv.address, {"op": "membership"})
            assert view["ok"] and view["epoch"] == 3
            assert view["members"] == {srv.worker_id: [2]}

    def test_join_records_peer_and_bumps_epoch(self, shard_path):
        with ShardServer(load_serving_index(shard_path), epoch=1) as srv:
            got = _rpc(
                srv.address,
                {"op": "join", "worker": "peer:999", "owned": [3], "epoch": 4},
            )
            assert got == {"ok": True, "epoch": 4}
            view = _rpc(srv.address, {"op": "membership"})
            assert view["members"]["peer:999"] == [3]
            # Self-join rewires this worker's own ownership.
            _rpc(
                srv.address,
                {"op": "join", "worker": srv.worker_id, "owned": [0], "epoch": 5},
            )
            hello = _rpc(srv.address, {"op": "hello"})
            assert hello["owned"] == [0] and hello["epoch"] == 5

    def test_leave_of_self_drains(self, shard_path, graph):
        v = sorted(graph.vertices())[0]
        with ShardServer(load_serving_index(shard_path)) as srv:
            # Sanity: answers before the drain.
            ok = _rpc(srv.address, {"op": "distances", "pairs": [[v, v]]})
            assert ok["distances"] == [0]
            got = _rpc(srv.address, {"op": "leave", "worker": srv.worker_id})
            assert got["draining"] is True
            hello = _rpc(srv.address, {"op": "hello"})
            assert hello["owned"] == [] and hello["draining"] is True
            # Every new bucket is now a staleness signal, even non-strict.
            rejected = _rpc(srv.address, {"op": "distances", "pairs": [[v, v]]})
            assert rejected["error_kind"] == "not_owner"
            assert rejected["draining"] is True

    def test_join_and_leave_need_a_worker_id(self, shard_path):
        with ShardServer(load_serving_index(shard_path)) as srv:
            for op in ("join", "leave"):
                got = _rpc(srv.address, {"op": op})
                assert got["error_kind"] == "query"


class TestStrictOwnership:
    def test_strict_rejects_foreign_buckets_structurally(self, shard_path):
        index = load_serving_index(shard_path)
        srv = ShardServer(index, owned=[0, 1], strict=True, epoch=2)
        with srv:
            owned_v = srv.shard_starts[0]
            foreign_v = srv.shard_starts[2]
            got = _rpc(
                srv.address,
                {"op": "distances", "pairs": [[foreign_v, foreign_v]]},
            )
            assert got["error_kind"] == "not_owner"
            assert got["epoch"] == 2 and got["owned"] == [0, 1]
            assert got["draining"] is False
            # A bucket touching an owned shard on either side is served.
            ok = _rpc(
                srv.address,
                {"op": "distances", "pairs": [[owned_v, foreign_v]]},
            )
            assert "error" not in ok

    def test_strict_fleet_serves_exactly(self, shard_path, expected):
        pairs, want = expected
        servers = [
            ShardServer(load_serving_index(shard_path), owned=owned, strict=True)
            for owned in assign_shards(4, 2)
        ]
        for srv in servers:
            srv.start()
        try:
            with RemoteEngine(
                addresses=[srv.address for srv in servers]
            ) as engine:
                assert engine.distances(pairs) == want
        finally:
            for srv in servers:
                srv.shutdown()

    def test_stale_client_refreshes_on_not_owner(self, shard_path, expected):
        """Shards [0, 1] move to a server the client has never met; the
        old owner drains.  Buckets living entirely in those shards are
        now rejected by every *known* worker, so the client must follow
        the not_owner staleness signal: refresh membership, discover the
        new worker, dial it, reroute — and the stream stays exact."""
        pairs, want = expected
        a = ShardServer(load_serving_index(shard_path), owned=[0, 1], strict=True)
        b = ShardServer(load_serving_index(shard_path), owned=[2, 3], strict=True)
        c = ShardServer(
            load_serving_index(shard_path), owned=[0, 1], strict=True, epoch=1
        )
        for srv in (a, b, c):
            srv.start()
        try:
            engine = RemoteEngine(addresses=[a.address, b.address])
            assert engine.distances(pairs) == want  # routed by the old map
            # Hand a's shards to c fleet-wide, then drain a (the same
            # choreography `repro rebalance` drives over the wire).
            for srv in (a, b):
                _rpc(
                    srv.address,
                    {"op": "join", "worker": c.worker_id, "owned": [0, 1],
                     "epoch": 1},
                )
                _rpc(
                    srv.address,
                    {"op": "leave", "worker": a.worker_id, "epoch": 2},
                )
            assert engine.distances(pairs) == want  # stale routes healed
            assert engine.membership.epoch >= 2
            assert engine.membership.owned_by(c.worker_id) == [0, 1]
            assert any(w.id == c.worker_id for w in engine._workers)
            engine.close()
        finally:
            for srv in (a, b, c):
                srv.shutdown()


class TestHeartbeat:
    def test_heartbeat_marks_dead_and_revives(self, shard_path, expected):
        pairs, want = expected
        srv = ShardServer(load_serving_index(shard_path))
        host, port = srv.start()
        engine = RemoteEngine(addresses=[(host, port)], heartbeat_s=0.05)
        try:
            assert engine.distances(pairs[:4]) == want[:4]
            worker = engine._workers[0]
            srv.shutdown()
            deadline = time.monotonic() + 10.0
            while worker.health.state != DEAD and time.monotonic() < deadline:
                time.sleep(0.05)
            assert worker.health.state == DEAD
            # Same identity comes back; the heartbeat's revival probe
            # reconnects and the engine routes to it again.
            srv = ShardServer(load_serving_index(shard_path), port=port)
            srv.start()
            deadline = time.monotonic() + 10.0
            while worker.health.state != LIVE and time.monotonic() < deadline:
                time.sleep(0.05)
            assert worker.health.state == LIVE
            assert engine.distances(pairs[:4]) == want[:4]
        finally:
            engine.close()
            srv.shutdown()

    def test_bad_heartbeat_env_rejected(self, monkeypatch, shard_path):
        from repro.errors import IndexBuildError
        from repro.serving.remote import REMOTE_HEARTBEAT_ENV

        monkeypatch.setenv(REMOTE_HEARTBEAT_ENV, "soon")
        with pytest.raises(IndexBuildError, match=REMOTE_HEARTBEAT_ENV):
            RemoteEngine(addresses=[("127.0.0.1", 1)])
