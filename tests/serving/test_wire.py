"""The length-prefixed wire framing (repro.serving.wire)."""

import json
import math
import socket
import struct

import pytest

from repro.serving import wire


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, pair):
        a, b = pair
        wire.send_frame(a, {"op": "ping", "n": 3})
        assert wire.recv_frame(b) == {"op": "ping", "n": 3}

    def test_distances_survive_lossless(self, pair):
        """Ints stay ints and inf stays inf — the bit-identity contract."""
        a, b = pair
        payload = {"distances": [0, 7, math.inf, 12345678901234]}
        wire.send_frame(a, payload)
        got = wire.recv_frame(b)
        assert got["distances"] == [0, 7, math.inf, 12345678901234]
        assert isinstance(got["distances"][0], int)
        assert isinstance(got["distances"][1], int)
        assert math.isinf(got["distances"][2])

    def test_multiple_frames_in_sequence(self, pair):
        a, b = pair
        for i in range(5):
            wire.send_frame(a, {"i": i})
        assert [wire.recv_frame(b)["i"] for _ in range(5)] == list(range(5))

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert wire.recv_frame(b) is None

    def test_eof_mid_frame_raises(self, pair):
        a, b = pair
        blob = json.dumps({"op": "x"}).encode()
        a.sendall(struct.pack("!I", len(blob)) + blob[:2])
        a.close()
        with pytest.raises(wire.WireError, match="mid-frame"):
            wire.recv_frame(b)

    def test_oversized_announcement_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack("!I", wire.MAX_FRAME_BYTES + 1))
        with pytest.raises(wire.WireError, match="limit"):
            wire.recv_frame(b)

    def test_oversized_send_rejected(self, pair):
        a, _ = pair
        huge = {"blob": "x" * (wire.MAX_FRAME_BYTES + 16)}
        with pytest.raises(wire.WireError, match="refusing to send"):
            wire.send_frame(a, huge)

    def test_garbage_payload_rejected(self, pair):
        a, b = pair
        blob = b"\xff\xfe not json"
        a.sendall(struct.pack("!I", len(blob)) + blob)
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.recv_frame(b)

    def test_non_object_payload_rejected(self, pair):
        a, b = pair
        blob = json.dumps([1, 2, 3]).encode()
        a.sendall(struct.pack("!I", len(blob)) + blob)
        with pytest.raises(wire.WireError, match="JSON object"):
            wire.recv_frame(b)


class TestRequest:
    def test_request_roundtrip(self, pair):
        a, b = pair
        wire.send_frame(b, {"ok": True})  # pre-seed the response
        assert wire.request(a, {"op": "ping"}) == {"ok": True}
        assert wire.recv_frame(b) == {"op": "ping"}

    def test_request_hangup_raises(self, pair):
        a, b = pair
        b.close()
        with pytest.raises(wire.WireError):
            wire.request(a, {"op": "ping"})
