"""Serving-suite guard: with ``REPRO_LOCKCHECK=1`` every test doubles as
a lock-order check.

When the flag is off (the default tier-1 run) the wrapper locks are
plain ``threading.Lock`` objects, the recorder stays empty and this
fixture is a no-op.  CI additionally runs this directory with the flag
on: serving-layer locks are then instrumented, and a test that drives
an acquisition-order inversion — or leaves one recorded by a background
thread — fails here with the observed order graph in the message.
"""

import pytest

from repro.analysis import lockcheck


@pytest.fixture(autouse=True)
def _lockcheck_guard():
    lockcheck.reset()
    yield
    lockcheck.assert_no_inversions()
