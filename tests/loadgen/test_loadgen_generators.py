"""Property tests for the workload generators.

The replay guarantee of the loadgen harness — same seed, same traffic —
and the statistical shape of each generator (Zipf rank-frequency slope,
Poisson arrivals, Bernoulli read/write mixes) are checked here so the
benchmarks can trust the streams they gate on.
"""

from __future__ import annotations

import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.loadgen import (
    READ,
    WRITE,
    burst_arrivals,
    derive_seed,
    operation_mix,
    poisson_arrivals,
    uniform_pairs,
    zipf_pairs,
    zipf_weights,
)


class TestDeriveSeed:
    def test_deterministic_and_scope_sensitive(self):
        assert derive_seed(7, "pairs", 0) == derive_seed(7, "pairs", 0)
        assert derive_seed(7, "pairs", 0) != derive_seed(7, "pairs", 1)
        assert derive_seed(7, "pairs", 0) != derive_seed(8, "pairs", 0)
        assert derive_seed(7, "pairs", 0) != derive_seed(7, "mix", 0)

    @given(seed=st.integers(0, 2**31), scope=st.text(max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_always_a_nonnegative_int(self, seed, scope):
        value = derive_seed(seed, scope)
        assert isinstance(value, int) and value >= 0


class TestZipfWeights:
    def test_normalized_and_descending(self):
        weights = zipf_weights(100, 1.1)
        assert math.isclose(sum(weights), 1.0, rel_tol=1e-12)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    @given(
        n=st.integers(2, 400),
        theta=st.floats(0.3, 2.5, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_rank_frequency_slope_matches_theta(self, n, theta):
        # log(w_r) = -theta * log(r) + c exactly, by construction; the
        # fitted log-log slope over all ranks must recover theta.
        weights = zipf_weights(n, theta)
        xs = [math.log(r) for r in range(1, n + 1)]
        ys = [math.log(w) for w in weights]
        mx = sum(xs) / n
        my = sum(ys) / n
        slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sum(
            (x - mx) ** 2 for x in xs
        )
        assert slope == pytest.approx(-theta, rel=1e-9)

    def test_validation(self):
        with pytest.raises(QueryError):
            zipf_weights(0, 1.0)
        with pytest.raises(QueryError):
            zipf_weights(10, 0.0)
        with pytest.raises(QueryError):
            zipf_weights(10, -1.0)


class TestPairGenerators:
    VERTICES = list(range(64))

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_uniform_pairs_deterministic(self, seed):
        a = uniform_pairs(self.VERTICES, 50, seed)
        b = uniform_pairs(self.VERTICES, 50, seed)
        assert a == b
        assert len(a) == 50
        assert all(s in self.VERTICES and t in self.VERTICES for s, t in a)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_zipf_pairs_deterministic(self, seed):
        a = zipf_pairs(self.VERTICES, 50, seed, theta=1.1)
        b = zipf_pairs(self.VERTICES, 50, seed, theta=1.1)
        assert a == b
        assert all(s in self.VERTICES and t in self.VERTICES for s, t in a)

    def test_zipf_skews_toward_hot_vertices(self):
        # Under theta=1.2 the hottest rank should dominate: the top-4
        # ranks carry far more endpoint mass than 4/64 would uniformly.
        pairs = zipf_pairs(self.VERTICES, 4000, seed=3, theta=1.2)
        counts = Counter(v for pair in pairs for v in pair)
        hot = sorted(counts.values(), reverse=True)[:4]
        assert sum(hot) / (2 * 4000) > 3 * (4 / 64)

    def test_zipf_empirical_slope_within_tolerance(self):
        # Rank-frequency slope of the *sampled* stream: fit log count vs
        # log rank over well-populated head ranks, expect roughly -theta.
        theta = 1.0
        pairs = zipf_pairs(list(range(200)), 20000, seed=9, theta=theta)
        counts = Counter(v for pair in pairs for v in pair)
        head = sorted(counts.values(), reverse=True)[:20]
        xs = [math.log(r) for r in range(1, len(head) + 1)]
        ys = [math.log(c) for c in head]
        mx = sum(xs) / len(xs)
        my = sum(ys) / len(ys)
        slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sum(
            (x - mx) ** 2 for x in xs
        )
        assert slope == pytest.approx(-theta, abs=0.25)

    def test_too_few_vertices_raise(self):
        with pytest.raises(QueryError):
            uniform_pairs([1], 5, seed=0)
        with pytest.raises(QueryError):
            zipf_pairs([1], 5, seed=0)


class TestArrivals:
    @given(
        rate=st.floats(1.0, 5000.0, allow_nan=False),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_poisson_deterministic_and_monotone(self, rate, seed):
        a = poisson_arrivals(rate, 64, seed)
        b = poisson_arrivals(rate, 64, seed)
        assert a == b
        assert all(x <= y for x, y in zip(a, a[1:]))
        assert all(x >= 0.0 for x in a)

    def test_poisson_mean_gap_near_1_over_rate(self):
        offsets = poisson_arrivals(1000.0, 20000, seed=5)
        mean_gap = offsets[-1] / (len(offsets) - 1)
        assert mean_gap == pytest.approx(1.0 / 1000.0, rel=0.05)

    def test_burst_size_one_degenerates_to_poisson(self):
        assert burst_arrivals(500.0, 40, seed=2, burst_size=1) == poisson_arrivals(
            500.0, 40, seed=2
        )

    def test_bursts_are_coincident(self):
        offsets = burst_arrivals(500.0, 64, seed=2, burst_size=8)
        assert len(offsets) == 64
        # Members of each burst share an arrival instant.
        for start in range(0, 64, 8):
            burst = offsets[start : start + 8]
            assert len(set(burst)) == 1
        assert all(x <= y for x, y in zip(offsets, offsets[1:]))

    def test_validation(self):
        with pytest.raises(QueryError):
            poisson_arrivals(0.0, 10, seed=0)
        with pytest.raises(QueryError):
            poisson_arrivals(100.0, -1, seed=0)
        with pytest.raises(QueryError):
            burst_arrivals(100.0, 10, seed=0, burst_size=0)


class TestOperationMix:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, seed):
        assert operation_mix(40, 0.3, seed) == operation_mix(40, 0.3, seed)

    def test_ratio_on_large_n(self):
        ops = operation_mix(20000, 0.2, seed=11)
        writes = sum(1 for op in ops if op == WRITE)
        assert writes / 20000 == pytest.approx(0.2, abs=0.02)
        assert all(op in (READ, WRITE) for op in ops)

    def test_zero_fraction_is_all_reads(self):
        assert operation_mix(100, 0.0, seed=1) == [READ] * 100

    def test_validation(self):
        with pytest.raises(QueryError):
            operation_mix(10, -0.1, seed=0)
        with pytest.raises(QueryError):
            operation_mix(10, 1.5, seed=0)
