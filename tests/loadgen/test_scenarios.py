"""Scenario spec validation, dict round-trip and stream determinism."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.loadgen import SCENARIOS, Scenario, get_scenario, scenario_names


def tiny(**overrides):
    base = dict(name="t", dataset="grid:4x4", num_queries=20)
    base.update(overrides)
    return Scenario(**base)


class TestValidation:
    def test_defaults_are_valid(self):
        s = Scenario(name="ok")
        assert s.skew == "uniform" and s.arrival == "closed"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"skew": "pareto"},
            {"arrival": "lockstep"},
            {"num_queries": 0},
            {"duration_s": -1.0},
            {"write_fraction": 1.5},
            {"theta": 0.0},
            {"rate_qps": 0.0},
            {"burst_size": 0},
            {"workers": 0},
            {"shards": 0},
            {"replication": 0},
            {"tenants": 0},
            {"scale": 0.0},
            {"dataset": "nosuchdataset"},
            {"dataset": "grid:1x5"},
            {"dataset": "grid:axb"},
            {"dataset": "grid:5"},
        ],
    )
    def test_bad_field_raises_at_construction(self, overrides):
        with pytest.raises(QueryError):
            tiny(**overrides)

    def test_replace_revalidates(self):
        s = tiny()
        with pytest.raises(QueryError):
            s.replace(num_queries=-5)

    def test_frozen(self):
        with pytest.raises(Exception):
            tiny().name = "other"


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        s = tiny(skew="zipf", theta=1.3, arrival="burst", write_fraction=0.1)
        assert Scenario.from_dict(s.to_dict()) == s

    def test_unknown_key_rejected_by_name(self):
        with pytest.raises(QueryError, match="zipf_theta"):
            Scenario.from_dict({"name": "x", "zipf_theta": 1.1})

    def test_registry_specs_round_trip(self):
        for scenario in SCENARIOS.values():
            assert Scenario.from_dict(scenario.to_dict()) == scenario


class TestRegistry:
    def test_names_sorted_and_resolvable(self):
        names = scenario_names()
        assert names == tuple(sorted(names))
        assert "smoke" in names
        for name in names:
            assert get_scenario(name).name == name

    def test_unknown_name_lists_available(self):
        with pytest.raises(QueryError, match="smoke"):
            get_scenario("nope")

    def test_smoke_stays_tiny(self):
        # CI runs this one against a live fleet under a timeout.
        smoke = get_scenario("smoke")
        assert smoke.num_queries <= 64
        assert smoke.dataset.startswith("grid:")


class TestStreams:
    def test_grid_graph_deterministic(self):
        a = tiny().build_graph()
        b = tiny().build_graph()
        assert a.num_vertices == b.num_vertices == 16
        assert sorted(a.edges()) == sorted(b.edges())

    def test_pairs_deterministic_and_tenant_scoped(self):
        s = tiny(skew="zipf", theta=1.1, tenants=2)
        g = s.build_graph()
        assert s.query_pairs(g, tenant=0) == s.query_pairs(g, tenant=0)
        assert s.query_pairs(g, tenant=0) != s.query_pairs(g, tenant=1)
        assert len(s.query_pairs(g)) == s.num_queries

    def test_seed_changes_stream(self):
        g = tiny().build_graph()
        assert tiny(seed=1).query_pairs(g) != tiny(seed=2).query_pairs(g)

    def test_closed_loop_has_no_offsets(self):
        assert tiny().arrival_offsets(10) is None

    def test_open_loop_offsets_deterministic(self):
        s = tiny(arrival="poisson", rate_qps=200.0)
        assert s.arrival_offsets(30) == s.arrival_offsets(30)
        b = tiny(arrival="burst", rate_qps=200.0, burst_size=4)
        offsets = b.arrival_offsets(16)
        assert len(offsets) == 16
        assert len(set(offsets)) == 4  # 4 coincident bursts of 4

    def test_operations_respect_write_fraction_edge_cases(self):
        assert tiny().operations(50) == ["read"] * 50
        all_writes = tiny(write_fraction=1.0).operations(50)
        assert all_writes == ["write"] * 50
