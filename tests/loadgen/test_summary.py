"""Unit tests for the shared percentile/throughput summary math."""

from __future__ import annotations

import math

import pytest

from repro.loadgen import LatencySummary, percentile


class TestPercentile:
    def test_known_distribution(self):
        # 100 samples 0.00..0.99: nearest-rank picks the floor index.
        values = [i / 100.0 for i in range(100)]
        assert percentile(values, 0.50) == 0.50
        assert percentile(values, 0.90) == 0.90
        assert percentile(values, 0.99) == 0.99
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 0.99  # clamped to the last sample

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert percentile([7.25], q) == 7.25

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError, match="percentile fraction"):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError, match="percentile fraction"):
            percentile([1.0], -0.1)

    def test_nearest_rank_always_returns_observed_value(self):
        values = sorted([0.003, 0.001, 0.1, 0.02, 0.05])
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            assert percentile(values, q) in values


class TestLatencySummary:
    def test_known_distribution(self):
        latencies = [i / 1000.0 for i in range(1, 101)]  # 1ms..100ms
        s = LatencySummary.from_latencies(latencies, wall_seconds=2.0)
        assert s.count == 100
        assert s.throughput_qps == 50.0
        assert s.p50_ms == pytest.approx(51.0)
        assert s.p90_ms == pytest.approx(91.0)
        assert s.p99_ms == pytest.approx(100.0)
        assert s.min_ms == pytest.approx(1.0)
        assert s.max_ms == pytest.approx(100.0)
        assert s.mean_ms == pytest.approx(50.5)

    def test_single_sample(self):
        s = LatencySummary.from_latencies([0.004], wall_seconds=0.004)
        assert s.count == 1
        assert s.p50_ms == s.p99_ms == s.min_ms == s.max_ms == pytest.approx(4.0)
        assert s.throughput_qps == pytest.approx(250.0)

    def test_all_equal(self):
        s = LatencySummary.from_latencies([0.002] * 50, wall_seconds=1.0)
        assert s.p50_ms == s.p90_ms == s.p99_ms == pytest.approx(2.0)
        assert s.mean_ms == pytest.approx(2.0)
        assert s.throughput_qps == pytest.approx(50.0)

    def test_empty_run(self):
        s = LatencySummary.from_latencies([], wall_seconds=1.5)
        assert s.count == 0
        assert s.throughput_qps == 0.0
        assert s.seconds == 1.5
        for field in ("p50_ms", "p90_ms", "p99_ms", "mean_ms", "min_ms", "max_ms"):
            assert math.isnan(getattr(s, field))

    def test_zero_wall_clock_reports_inf_not_crash(self):
        s = LatencySummary.from_latencies([0.001], wall_seconds=0.0)
        assert math.isinf(s.throughput_qps)

    def test_unsorted_input_is_sorted_internally(self):
        s = LatencySummary.from_latencies([0.09, 0.01, 0.05], wall_seconds=1.0)
        assert s.min_ms == pytest.approx(10.0)
        assert s.max_ms == pytest.approx(90.0)
        assert s.p50_ms == pytest.approx(50.0)

    def test_to_dict_roundtrips_fields(self):
        s = LatencySummary.from_latencies([0.001, 0.002], wall_seconds=1.0)
        d = s.to_dict()
        assert d["count"] == 2
        assert set(d) == set(LatencySummary._fields)
