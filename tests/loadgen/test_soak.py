"""Opt-in soak: 30s mixed read/write against a fleet with one SIGKILL.

Run with::

    REPRO_SOAK=1 PYTHONPATH=src python -m pytest tests/loadgen/test_soak.py -m slow

Gated twice — the ``slow`` marker and the ``REPRO_SOAK`` env var — so
the tier-1 suite never pays for it by accident.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.loadgen import Scenario, run_scenario
from repro.serving import chaos

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not os.environ.get("REPRO_SOAK"),
        reason="soak test; set REPRO_SOAK=1 to run",
    ),
]


def test_soak_mixed_writes_with_worker_kill():
    scenario = Scenario(
        name="soak",
        dataset="grid:10x10",
        engine="remote",
        skew="zipf",
        theta=1.1,
        num_queries=150,
        write_fraction=0.2,
        duration_s=30.0,
        workers=2,
        shards=4,
        replication=2,
        seed=42,
    )

    # SIGKILL one worker ~8s in; replication=2 means the survivor owns
    # every shard, so answers must stay bit-exact through the failover.
    original_spawn = chaos.FaultInjector.spawn_fleet
    killers = []

    def spawn_and_arm(self, *args, **kwargs):
        workers = original_spawn(self, *args, **kwargs)
        timer = threading.Timer(8.0, workers[0].kill)
        timer.daemon = True
        timer.start()
        killers.append(timer)
        return workers

    chaos.FaultInjector.spawn_fleet = spawn_and_arm
    try:
        result = run_scenario(scenario, progress=print)
    finally:
        chaos.FaultInjector.spawn_fleet = original_spawn
        for timer in killers:
            timer.cancel()

    assert killers, "fleet was never spawned"
    assert result["bit_identical"], result["mismatches"]
    assert result["workers_reaped"]
    assert result["wall_seconds"] >= 30.0
    assert result["reads"]["count"] > 150  # cycled the stream
    assert result["writes"]["count"] > 0
    assert result["failovers"] >= 1
