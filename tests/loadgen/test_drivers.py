"""Driver tests: closed/open loops, pendant writes, remote smoke."""

from __future__ import annotations

import json

import pytest

from repro.errors import QueryError
from repro.loadgen import READ, Scenario, run_closed_loop, run_open_loop, run_scenario
from repro.loadgen.drivers import Operation, build_operations


def tiny(**overrides):
    base = dict(
        name="drv",
        dataset="grid:5x5",
        num_queries=30,
        workers=2,
        shards=4,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


class TestLoopPrimitives:
    PAIRS = [(0, 1), (1, 2), (0, 2)]
    EXPECTED = [[1.0, 2.0, 3.0]]

    def _ops(self):
        return [Operation(0, READ, i, p) for i, p in enumerate(self.PAIRS)]

    def test_closed_loop_verifies_against_expected(self):
        table = {(0, 1): 1.0, (1, 2): 2.0, (0, 2): 3.0}
        result = run_closed_loop(
            self._ops(), [lambda s, t: table[(s, t)]], [None], self.EXPECTED
        )
        assert result["bit_identical"]
        assert result["operations"] == 3
        assert result["reads"]["count"] == 3
        assert result["writes"] is None

    def test_closed_loop_flags_mismatch(self):
        result = run_closed_loop(
            self._ops(), [lambda s, t: -1.0], [None], self.EXPECTED
        )
        assert not result["bit_identical"]
        assert len(result["mismatches"]) == 3

    def test_closed_loop_propagates_reader_error(self):
        def boom(s, t):
            raise RuntimeError("reader died")

        with pytest.raises(RuntimeError, match="reader died"):
            run_closed_loop(self._ops(), [boom], [None], self.EXPECTED)

    def test_open_loop_requires_offset_per_op(self):
        with pytest.raises(QueryError, match="offset"):
            run_open_loop(
                self._ops(), [0.0], [lambda s, t: 0.0], [None], self.EXPECTED
            )

    def test_open_loop_verifies_and_counts(self):
        table = {(0, 1): 1.0, (1, 2): 2.0, (0, 2): 3.0}
        result = run_open_loop(
            self._ops(),
            [0.0, 0.005, 0.01],
            [lambda s, t: table[(s, t)]],
            [None],
            self.EXPECTED,
        )
        assert result["bit_identical"]
        assert result["reads"]["count"] == 3


class TestBuildOperations:
    def test_interleaves_tenants_round_robin(self):
        s = tiny(tenants=2, num_queries=4)
        graph = s.build_graph()
        ops, pairs = build_operations(s, graph)
        assert len(ops) == 8
        assert [op.tenant for op in ops] == [0, 1, 0, 1, 0, 1, 0, 1]
        assert [op.slot for op in ops[:2]] == [0, 0]
        assert len(pairs) == 2 and len(pairs[0]) == 4
        # Tenants draw independent streams from the same seed.
        assert pairs[0] != pairs[1]


class TestRunScenarioLocal:
    @pytest.mark.parametrize("engine", ["fast", "dict", "mmap", "sharded"])
    def test_engines_bit_identical(self, engine):
        result = run_scenario(tiny(engine=engine))
        assert result["bit_identical"]
        assert result["target"] == "local"
        assert result["reads"]["count"] == 30

    def test_open_loop_scenario(self):
        result = run_scenario(
            tiny(arrival="poisson", rate_qps=2000.0, num_queries=40)
        )
        assert result["bit_identical"]
        assert result["reads"]["count"] == 40

    def test_mixed_writes_stay_bit_exact(self):
        result = run_scenario(tiny(write_fraction=0.3, num_queries=60))
        assert result["bit_identical"]
        assert result["writes"] is not None
        assert result["writes"]["count"] > 0
        applied = result["updates_applied"][0]
        assert applied["inserts"] >= applied["deletes"] > 0

    def test_artifact_embeds_replayable_spec(self, tmp_path):
        path = tmp_path / "artifact.json"
        run_scenario(tiny(), artifact_path=str(path))
        artifact = json.loads(path.read_text())
        replayed = Scenario.from_dict(artifact["scenario"])
        assert replayed == tiny()
        assert artifact["bit_identical"]
        assert "p99_ms" in artifact["reads"]

    def test_multi_tenant_local(self):
        result = run_scenario(tiny(tenants=2, num_queries=15))
        assert result["bit_identical"]
        assert result["reads"]["count"] == 30  # 15 per tenant

    def test_replay_is_deterministic(self):
        # Same spec, two runs: identical streams means identical verified
        # counts (latencies differ; answers can't).
        a = run_scenario(tiny())
        b = run_scenario(tiny())
        assert a["bit_identical"] and b["bit_identical"]
        assert a["reads"]["count"] == b["reads"]["count"]


class TestRunScenarioRemote:
    def test_remote_fleet_smoke(self):
        result = run_scenario(tiny(engine="remote", num_queries=20))
        assert result["bit_identical"]
        assert result["target"] == "remote"
        assert result["workers_reaped"]
        stats = result["scheduler"][0]
        assert stats["queries_scheduled"] >= 20
        assert result["failovers"] == 0
