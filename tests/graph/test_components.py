"""Unit tests for connected components."""

from repro.graph.components import (
    component_of,
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graph.generators import path_graph
from repro.graph.graph import Graph


def test_single_component(triangle):
    comps = connected_components(triangle)
    assert len(comps) == 1
    assert comps[0] == {1, 2, 3}
    assert is_connected(triangle)


def test_component_of_reaches_whole_block(disconnected):
    assert component_of(disconnected, 0) == {0, 1, 2}
    assert component_of(disconnected, 10) == {10, 11}
    assert component_of(disconnected, 20) == {20}


def test_components_sorted_by_size(disconnected):
    comps = connected_components(disconnected)
    assert [len(c) for c in comps] == [3, 2, 1]
    assert not is_connected(disconnected)


def test_largest_component_is_induced_subgraph(disconnected):
    largest = largest_connected_component(disconnected)
    assert sorted(largest.vertices()) == [0, 1, 2]
    assert largest.num_edges == 2


def test_empty_graph():
    g = Graph()
    assert connected_components(g) == []
    assert is_connected(g)
    assert largest_connected_component(g).num_vertices == 0


def test_isolated_vertices_are_singletons():
    g = Graph()
    for v in range(4):
        g.add_vertex(v)
    assert len(connected_components(g)) == 4


def test_path_graph_connected():
    assert is_connected(path_graph(50))
