"""Unit tests for graph statistics (Table 2 columns)."""

from repro.graph.generators import path_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.stats import graph_stats, human_bytes


def test_counts(small_weighted):
    s = graph_stats(small_weighted)
    assert s.num_vertices == 7
    assert s.num_edges == 8
    assert abs(s.avg_degree - 16 / 7) < 1e-9


def test_max_degree_star():
    s = graph_stats(star_graph(9))
    assert s.max_degree == 9


def test_empty_graph():
    s = graph_stats(Graph())
    assert s.num_vertices == 0
    assert s.avg_degree == 0.0
    assert s.max_degree == 0
    assert s.disk_size_bytes == 0


def test_disk_size_formula():
    s = graph_stats(path_graph(3))  # 3 vertices, 2 edges
    assert s.disk_size_bytes == 3 * 16 + 2 * 2 * 16


def test_row_shape(small_weighted):
    row = graph_stats(small_weighted).row()
    assert len(row) == 5
    assert isinstance(row[4], str)


class TestHumanBytes:
    def test_bytes(self):
        assert human_bytes(512) == "512 B"

    def test_kb(self):
        assert human_bytes(2048) == "2.0 KB"

    def test_mb(self):
        assert human_bytes(5 * 1024 * 1024) == "5.0 MB"

    def test_gb(self):
        assert human_bytes(3.5 * 1024**3) == "3.5 GB"
