"""Unit tests for graph file formats."""

import pytest

from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.graph.io import (
    read_binary_adjacency,
    read_edge_list,
    write_binary_adjacency,
    write_edge_list,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path, small_weighted):
        path = tmp_path / "g.txt"
        write_edge_list(small_weighted, path)
        assert read_edge_list(path) == small_weighted

    def test_round_trip_preserves_isolated_vertices(self, tmp_path):
        g = Graph([(1, 2)])
        g.add_vertex(99)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.has_vertex(99)
        assert loaded == g

    def test_directed_round_trip(self, tmp_path):
        dg = DiGraph([(1, 2, 3), (2, 1, 4), (2, 3, 1)])
        path = tmp_path / "dg.txt"
        write_edge_list(dg, path)
        loaded = read_edge_list(path, directed=True)
        assert sorted(loaded.edges()) == sorted(dg.edges())

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# hello\n\n1 2 5\n\n# bye\n2 3\n")
        g = read_edge_list(path)
        assert g.weight(1, 2) == 5
        assert g.weight(2, 3) == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3 4 5\n")
        with pytest.raises(StorageError):
            read_edge_list(path)


class TestBinaryAdjacency:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(60, 150, seed=3, max_weight=9)
        path = tmp_path / "g.bin"
        written = write_binary_adjacency(g, path)
        assert written == path.stat().st_size
        assert read_binary_adjacency(path) == g

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(StorageError):
            read_binary_adjacency(path)

    def test_truncated_file(self, tmp_path):
        g = erdos_renyi(20, 40, seed=4)
        path = tmp_path / "g.bin"
        write_binary_adjacency(g, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            read_binary_adjacency(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"IS")
        with pytest.raises(StorageError):
            read_binary_adjacency(path)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_binary_adjacency(Graph(), path)
        assert read_binary_adjacency(path).num_vertices == 0
