"""Unit tests for the undirected Graph container."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.size == 0

    def test_from_pairs_defaults_weight_one(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.weight(1, 2) == 1
        assert g.weight(2, 3) == 1

    def test_from_triples(self):
        g = Graph([(1, 2, 7)])
        assert g.weight(1, 2) == 7
        assert g.weight(2, 1) == 7

    def test_duplicate_edges_keep_minimum(self):
        g = Graph([(1, 2, 5), (2, 1, 3), (1, 2, 9)])
        assert g.weight(1, 2) == 3
        assert g.num_edges == 1

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(4)
        g.add_vertex(4)
        assert g.num_vertices == 1
        assert g.degree(4) == 0


class TestMutation:
    def test_add_edge_overwrites(self):
        g = Graph([(1, 2, 5)])
        g.add_edge(1, 2, 9)
        assert g.weight(1, 2) == 9

    def test_merge_edge_reports_change(self):
        g = Graph()
        assert g.merge_edge(1, 2, 5) is True
        assert g.merge_edge(1, 2, 7) is False
        assert g.merge_edge(1, 2, 2) is True
        assert g.weight(1, 2) == 2

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True, None])
    def test_bad_weight_rejected(self, bad):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, bad)

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert not g.has_edge(2, 1)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(GraphError):
            g.remove_edge(1, 3)

    def test_remove_vertex_cleans_incident_edges(self):
        g = Graph([(1, 2), (2, 3), (3, 1)])
        g.remove_vertex(2)
        assert not g.has_vertex(2)
        assert g.num_edges == 1
        assert 2 not in g.neighbors(1)
        assert 2 not in g.neighbors(3)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_vertex(7)

    def test_remove_vertices_batch(self):
        g = Graph([(1, 2), (3, 4), (2, 3)])
        g.remove_vertices([1, 4])
        assert sorted(g.vertices()) == [2, 3]
        assert g.num_edges == 1


class TestInspection:
    def test_neighbors_view(self, triangle):
        assert dict(triangle.neighbors(2)) == {1: 1, 3: 2}

    def test_neighbors_of_missing_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(99)

    def test_weight_of_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.weight(1, 99)

    def test_degree(self, triangle):
        assert triangle.degree(1) == 2

    def test_size_is_v_plus_e(self, triangle):
        assert triangle.size == 3 + 3

    def test_total_degree_counts_both_ends(self, triangle):
        assert triangle.total_degree() == 6

    def test_edges_iterates_each_once(self, triangle):
        edges = sorted(triangle.edges())
        assert edges == [(1, 2, 1), (1, 3, 4), (2, 3, 2)]

    def test_contains_len_iter(self, triangle):
        assert 1 in triangle
        assert 99 not in triangle
        assert len(triangle) == 3
        assert sorted(triangle) == [1, 2, 3]

    def test_sorted_vertices(self):
        g = Graph([(5, 1), (3, 2)])
        assert g.sorted_vertices() == [1, 2, 3, 5]

    def test_equality_compares_structure(self):
        a = Graph([(1, 2, 3)])
        b = Graph([(2, 1, 3)])
        c = Graph([(1, 2, 4)])
        assert a == b
        assert a != c


class TestDerivation:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(1, 99)
        assert not triangle.has_vertex(99)
        assert clone != triangle

    def test_induced_subgraph(self, small_weighted):
        sub = small_weighted.induced_subgraph([0, 1, 3])
        assert sorted(sub.vertices()) == [0, 1, 3]
        assert sub.has_edge(0, 1) and sub.has_edge(0, 3)
        assert sub.num_edges == 2

    def test_induced_subgraph_unknown_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.induced_subgraph([1, 42])

    def test_relabeled_compacts_ids(self):
        g = Graph([(10, 20, 3), (20, 30, 4)])
        compact, mapping = g.relabeled()
        assert sorted(compact.vertices()) == [0, 1, 2]
        assert mapping == {10: 0, 20: 1, 30: 2}
        assert compact.weight(0, 1) == 3
        assert compact.weight(1, 2) == 4

    def test_relabeled_preserves_isolated_vertices(self):
        g = Graph([(1, 2)])
        g.add_vertex(9)
        compact, _ = g.relabeled()
        assert compact.num_vertices == 3
        assert compact.num_edges == 1
