"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph.components import is_connected
from repro.graph.generators import (
    attach_chains,
    attach_forest,
    attach_hubs,
    attach_trees,
    barabasi_albert,
    complete_graph,
    cycle_graph,
    ensure_connected,
    erdos_renyi,
    grid_graph,
    overlay_random_edges,
    path_graph,
    powerlaw_cluster,
    powerlaw_configuration,
    random_tree,
    random_weights,
    star_graph,
    watts_strogatz,
)
from repro.graph.validation import validate_graph


class TestStructured:
    def test_path(self):
        g = path_graph(5, weight=3)
        assert g.num_vertices == 5 and g.num_edges == 4
        assert g.weight(2, 3) == 3

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))

    def test_grid_shape(self):
        g = grid_graph(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical
        assert is_connected(g)

    def test_grid_weights_seeded(self):
        a = grid_graph(5, 5, seed=3, max_weight=9)
        b = grid_graph(5, 5, seed=3, max_weight=9)
        assert a == b

    def test_random_tree_is_tree(self):
        g = random_tree(64, seed=1)
        assert g.num_edges == 63
        assert is_connected(g)

    def test_random_tree_start_id(self):
        g = random_tree(10, seed=1, start_id=100)
        assert min(g.vertices()) == 100


class TestRandomFamilies:
    def test_erdos_renyi_exact_edge_count(self):
        g = erdos_renyi(50, 120, seed=7)
        assert g.num_vertices == 50 and g.num_edges == 120
        validate_graph(g)

    def test_erdos_renyi_too_many_edges(self):
        with pytest.raises(GraphError):
            erdos_renyi(4, 100, seed=1)

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(40, 80, seed=9) == erdos_renyi(40, 80, seed=9)

    def test_erdos_renyi_seed_sensitivity(self):
        assert erdos_renyi(40, 80, seed=9) != erdos_renyi(40, 80, seed=10)

    def test_barabasi_albert_degrees(self):
        g = barabasi_albert(200, 3, seed=11)
        assert g.num_vertices == 200
        validate_graph(g)
        # Later vertices attach to exactly m targets.
        assert g.num_edges >= 3 * (200 - 4)
        # Preferential attachment yields a heavy tail.
        assert max(g.degree(v) for v in g.vertices()) > 10

    def test_barabasi_albert_bad_params(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, 3, seed=1)

    def test_powerlaw_cluster_valid(self):
        g = powerlaw_cluster(150, 4, 0.8, seed=13)
        validate_graph(g)
        assert g.num_vertices == 150

    def test_powerlaw_cluster_bad_probability(self):
        with pytest.raises(GraphError):
            powerlaw_cluster(50, 3, 1.5, seed=1)

    def test_watts_strogatz_valid(self):
        g = watts_strogatz(100, 6, 0.1, seed=15)
        validate_graph(g)
        assert g.num_vertices == 100

    def test_watts_strogatz_bad_k(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)  # odd k

    def test_powerlaw_configuration_shape(self):
        g = powerlaw_configuration(500, 2.3, seed=17, min_degree=1)
        validate_graph(g)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] > 5 * degrees[len(degrees) // 2 or 1]

    def test_powerlaw_configuration_deterministic(self):
        a = powerlaw_configuration(100, 2.5, seed=3)
        b = powerlaw_configuration(100, 2.5, seed=3)
        assert a == b


class TestPostProcessing:
    def test_attach_hubs(self):
        g = path_graph(50)
        attach_hubs(g, 2, 30, seed=1)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degrees[0] == 30 and degrees[1] == 30

    def test_attach_hubs_empty_graph(self):
        with pytest.raises(GraphError):
            attach_hubs(path_graph(0), 1, 5)

    def test_attach_chains_adds_expected_vertices(self):
        g = path_graph(10)
        attach_chains(g, 3, 7, seed=2)
        assert g.num_vertices == 10 + 21
        assert is_connected(g)

    def test_attach_trees_adds_complete_trees(self):
        g = path_graph(5)
        attach_trees(g, 2, 2, 2, seed=3)
        # Each tree: root + 2 + 4 vertices.
        assert g.num_vertices == 5 + 2 * 7
        assert is_connected(g)

    def test_attach_forest_total(self):
        g = path_graph(5)
        attach_forest(g, 40, 4, seed=4)
        assert g.num_vertices == 45
        assert is_connected(g)

    def test_overlay_random_edges(self):
        g = path_graph(30)
        before = g.num_edges
        overlay_random_edges(g, 15, seed=5)
        assert g.num_edges == before + 15
        validate_graph(g)

    def test_overlay_restricted_pool(self):
        g = path_graph(30)
        overlay_random_edges(g, 10, seed=6, among=range(10))
        for u, v, _ in g.edges():
            if abs(u - v) != 1:  # not a path edge
                assert u < 10 and v < 10

    def test_ensure_connected_bridges_components(self, disconnected):
        ensure_connected(disconnected, seed=7)
        assert is_connected(disconnected)

    def test_ensure_connected_noop_when_connected(self, triangle):
        edges_before = sorted(triangle.edges())
        ensure_connected(triangle, seed=8)
        assert sorted(triangle.edges()) == edges_before

    def test_random_weights_in_range(self):
        g = path_graph(20)
        random_weights(g, 3, seed=9)
        assert all(1 <= w <= 3 for _, _, w in g.edges())
        assert any(w > 1 for _, _, w in g.edges())
