"""Unit tests for the directed graph container."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


@pytest.fixture
def dag() -> DiGraph:
    return DiGraph([(1, 2, 3), (2, 3, 1), (1, 3, 10)])


class TestConstruction:
    def test_arcs_are_directed(self, dag):
        assert dag.has_edge(1, 2)
        assert not dag.has_edge(2, 1)

    def test_pairs_default_weight(self):
        g = DiGraph([(1, 2)])
        assert g.weight(1, 2) == 1

    def test_merge_keeps_minimum(self):
        g = DiGraph([(1, 2, 5)])
        assert g.merge_edge(1, 2, 3) is True
        assert g.merge_edge(1, 2, 8) is False
        assert g.weight(1, 2) == 3

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            DiGraph([(1, 1)])

    def test_bad_weight_rejected(self):
        with pytest.raises(GraphError):
            DiGraph([(1, 2, 0)])


class TestTopology:
    def test_successors_predecessors(self, dag):
        assert dict(dag.successors(1)) == {2: 3, 3: 10}
        assert dict(dag.predecessors(3)) == {2: 1, 1: 10}

    def test_degrees(self, dag):
        assert dag.out_degree(1) == 2
        assert dag.in_degree(1) == 0
        assert dag.in_degree(3) == 2

    def test_undirected_neighbors_ignore_direction(self, dag):
        assert dag.undirected_neighbors(2) == {1, 3}
        assert dag.undirected_degree(2) == 2

    def test_size_counts_arcs(self, dag):
        assert dag.num_edges == 3
        assert dag.size == 6

    def test_edges_yields_arcs(self, dag):
        assert sorted(dag.edges()) == [(1, 2, 3), (1, 3, 10), (2, 3, 1)]

    def test_unknown_vertex_raises(self, dag):
        with pytest.raises(GraphError):
            dag.successors(42)
        with pytest.raises(GraphError):
            dag.predecessors(42)


class TestMutation:
    def test_remove_vertex_cleans_both_maps(self, dag):
        dag.remove_vertex(2)
        assert not dag.has_vertex(2)
        assert dag.num_edges == 1  # only (1, 3) remains
        assert dict(dag.successors(1)) == {3: 10}
        assert dict(dag.predecessors(3)) == {1: 10}

    def test_remove_missing_vertex_raises(self, dag):
        with pytest.raises(GraphError):
            dag.remove_vertex(42)

    def test_add_edge_overwrites(self, dag):
        dag.add_edge(1, 2, 99)
        assert dag.weight(1, 2) == 99
        assert dag.num_edges == 3


class TestDerivation:
    def test_copy_independent(self, dag):
        clone = dag.copy()
        clone.add_edge(3, 1, 2)
        assert not dag.has_edge(3, 1)

    def test_reversed_flips_arcs(self, dag):
        rev = dag.reversed()
        assert rev.has_edge(2, 1) and not rev.has_edge(1, 2)
        assert rev.weight(3, 1) == 10
        assert rev.num_edges == dag.num_edges

    def test_reversed_twice_is_identity(self, dag):
        double = dag.reversed().reversed()
        assert sorted(double.edges()) == sorted(dag.edges())
