"""Unit tests for the R-MAT generator and Zipf workload helper."""

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.index import ISLabelIndex
from repro.errors import GraphError, QueryError
from repro.graph.components import largest_connected_component
from repro.graph.generators import rmat
from repro.graph.validation import validate_graph
from repro.workloads.queries import zipf_query_pairs


class TestRMAT:
    def test_shape(self):
        g = rmat(8, edge_factor=6, seed=7)
        validate_graph(g)
        assert g.num_edges > 4 * 256  # close to the 6x target minus dupes

    def test_skewed_degrees(self):
        g = rmat(9, edge_factor=8, seed=8)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        top_share = sum(degrees[:10]) / (2 * g.num_edges)
        assert top_share > 0.05, "R-MAT concentrates edges on hubs"

    def test_deterministic(self):
        assert rmat(7, seed=3) == rmat(7, seed=3)
        assert rmat(7, seed=3) != rmat(7, seed=4)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(GraphError):
            rmat(5, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_bad_scale_rejected(self):
        with pytest.raises(GraphError):
            rmat(0)

    def test_indexable(self):
        g = largest_connected_component(rmat(8, edge_factor=4, seed=9))
        index = ISLabelIndex.build(g)
        import random

        rng = random.Random(1)
        vs = sorted(g.vertices())
        for _ in range(40):
            s, t = rng.choice(vs), rng.choice(vs)
            assert index.distance(s, t) == dijkstra_distance(g, s, t)


class TestZipfWorkload:
    def test_count_and_membership(self):
        g = rmat(7, seed=11)
        pairs = zipf_query_pairs(g, 60, seed=1)
        assert len(pairs) == 60
        assert all(g.has_vertex(s) and g.has_vertex(t) for s, t in pairs)

    def test_skew_prefers_popular_endpoints(self):
        g = rmat(8, seed=12)
        pairs = zipf_query_pairs(g, 400, seed=2, exponent=1.2)
        by_degree = sorted(g.vertices(), key=lambda v: (-g.degree(v), v))
        top = set(by_degree[: len(by_degree) // 20])
        hits = sum(1 for s, t in pairs for v in (s, t) if v in top)
        assert hits > 0.3 * 2 * len(pairs), "top-5% endpoints dominate"

    def test_deterministic(self):
        g = rmat(6, seed=13)
        assert zipf_query_pairs(g, 30, seed=3) == zipf_query_pairs(g, 30, seed=3)

    def test_bad_exponent_rejected(self):
        g = rmat(6, seed=13)
        with pytest.raises(QueryError):
            zipf_query_pairs(g, 5, exponent=0)
