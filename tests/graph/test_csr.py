"""Unit tests for the CSR view."""

import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, ensure_connected
from repro.graph.graph import Graph


@pytest.fixture
def csr(small_weighted) -> CSRGraph:
    return CSRGraph(small_weighted)


def test_counts(csr, small_weighted):
    assert csr.num_vertices == small_weighted.num_vertices
    assert csr.num_edges == small_weighted.num_edges


def test_dense_ids_are_sorted_originals(small_weighted, csr):
    assert csr.id_of == small_weighted.sorted_vertices()
    for i, v in enumerate(csr.id_of):
        assert csr.dense(v) == i
        assert csr.original(i) == v


def test_neighbors_match_graph(small_weighted, csr):
    for v in small_weighted.vertices():
        dense = csr.dense(v)
        got = {csr.original(u): w for u, w in csr.neighbors_dense(dense)}
        assert got == dict(small_weighted.neighbors(v))


def test_degree_dense(small_weighted, csr):
    for v in small_weighted.vertices():
        assert csr.degree_dense(csr.dense(v)) == small_weighted.degree(v)


def test_neighbor_slices_align(csr):
    idx, wts = csr.neighbor_slices(0)
    assert len(idx) == len(wts) == csr.degree_dense(0)


def test_unknown_vertex_raises(csr):
    with pytest.raises(GraphError):
        csr.dense(10**9)


def test_has_vertex(csr, small_weighted):
    for v in small_weighted.vertices():
        assert csr.has_vertex(v)
    assert not csr.has_vertex(10**9)


def test_nbytes_positive(csr):
    assert csr.nbytes() > 0


def test_random_graph_round_trip():
    g = ensure_connected(erdos_renyi(80, 200, seed=5, max_weight=9), seed=5)
    csr = CSRGraph(g)
    rebuilt = Graph()
    for i in range(csr.num_vertices):
        rebuilt.add_vertex(csr.original(i))
        for j, w in csr.neighbors_dense(i):
            rebuilt.merge_edge(csr.original(i), csr.original(j), w)
    assert rebuilt == g


def test_empty_graph():
    csr = CSRGraph(Graph())
    assert csr.num_vertices == 0
    assert csr.num_edges == 0
    assert list(csr.indptr) == [0]


def test_isolated_vertices_only():
    g = Graph()
    for v in (3, 7, 11):
        g.add_vertex(v)
    csr = CSRGraph(g)
    assert csr.num_vertices == 3
    assert csr.num_edges == 0
    assert all(csr.degree_dense(i) == 0 for i in range(3))


def test_neighbors_sorted_by_dense_id():
    g = Graph([(5, 1, 2), (5, 9, 3), (5, 3, 1), (1, 9, 4)])
    csr = CSRGraph(g)
    for i in range(csr.num_vertices):
        idx, _ = csr.neighbor_slices(i)
        assert list(idx) == sorted(idx)


def test_ids_array_matches_id_of():
    g = Graph([(10, 20), (20, 30)])
    csr = CSRGraph(g)
    assert csr.ids_array.tolist() == csr.id_of == [10, 20, 30]
