"""Unit tests for structural validation (failure injection)."""

import pytest

from repro.errors import ValidationError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.validation import validate_digraph, validate_graph


def test_valid_graph_passes(small_weighted):
    validate_graph(small_weighted)


def test_asymmetric_adjacency_detected(triangle):
    # Corrupt the internal map directly (simulates a broken deserializer).
    triangle._adj[1][2] = 99
    with pytest.raises(ValidationError, match="asymmetric"):
        validate_graph(triangle)


def test_self_loop_detected(triangle):
    triangle._adj[1][1] = 1
    with pytest.raises(ValidationError):
        validate_graph(triangle)


def test_bad_weight_detected(triangle):
    triangle._adj[1][2] = -5
    triangle._adj[2][1] = -5
    with pytest.raises(ValidationError, match="weight"):
        validate_graph(triangle)


def test_edge_count_mismatch_detected(triangle):
    triangle._num_edges = 17
    with pytest.raises(ValidationError, match="inconsistent"):
        validate_graph(triangle)


def test_valid_digraph_passes():
    validate_digraph(DiGraph([(1, 2, 3), (2, 1, 4)]))


def test_digraph_succ_pred_mismatch_detected():
    dg = DiGraph([(1, 2, 3)])
    dg._pred[2][1] = 99
    with pytest.raises(ValidationError, match="mismatch"):
        validate_digraph(dg)


def test_digraph_arc_count_mismatch_detected():
    dg = DiGraph([(1, 2, 3)])
    dg._num_edges = 5
    with pytest.raises(ValidationError, match="inconsistent"):
        validate_digraph(dg)


def test_empty_graphs_valid():
    validate_graph(Graph())
    validate_digraph(DiGraph())
