"""Shared fixtures and oracle helpers for the test suite.

networkx is used *only here*, as an independent correctness oracle — the
library itself never imports it.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.graph.generators import (
    barabasi_albert,
    ensure_connected,
    erdos_renyi,
    grid_graph,
    path_graph,
    powerlaw_configuration,
    random_tree,
)
from repro.graph.graph import Graph


def pytest_configure(config):
    # No pytest config file exists, so markers register here.  ``slow``
    # marks long soak runs; they additionally self-skip unless REPRO_SOAK
    # is set, keeping the tier-1 suite's runtime sane.
    config.addinivalue_line(
        "markers", "slow: long soak tests (opt in with REPRO_SOAK=1)"
    )


@pytest.fixture
def triangle() -> Graph:
    return Graph([(1, 2, 1), (2, 3, 2), (1, 3, 4)])


@pytest.fixture
def small_weighted() -> Graph:
    """A 7-vertex graph with interesting shortest paths."""
    return Graph(
        [
            (0, 1, 2),
            (1, 2, 2),
            (0, 3, 1),
            (3, 4, 1),
            (4, 2, 1),
            (2, 5, 5),
            (4, 5, 2),
            (5, 6, 1),
        ]
    )


@pytest.fixture
def disconnected() -> Graph:
    g = Graph([(0, 1), (1, 2), (10, 11)])
    g.add_vertex(20)
    return g


@pytest.fixture(params=["er", "ba", "plc", "grid", "tree"])
def random_graph(request) -> Graph:
    """A connected random graph from each generator family."""
    if request.param == "er":
        return ensure_connected(erdos_renyi(120, 300, seed=1, max_weight=5), seed=1)
    if request.param == "ba":
        return ensure_connected(barabasi_albert(150, 3, seed=2), seed=2)
    if request.param == "plc":
        return ensure_connected(
            powerlaw_configuration(140, 2.3, seed=3, min_degree=1), seed=3
        )
    if request.param == "grid":
        return grid_graph(9, 12, seed=4, max_weight=7)
    return random_tree(130, seed=5)


def to_networkx(graph: Graph):
    """Convert to a networkx graph for oracle computations."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_weighted_edges_from(graph.edges())
    return g


def nx_distance(graph: Graph, s: int, t: int) -> float:
    """Shortest-path length via networkx (``inf`` when disconnected)."""
    import networkx as nx

    try:
        return nx.dijkstra_path_length(to_networkx(graph), s, t)
    except nx.NetworkXNoPath:
        return math.inf


def random_pairs(graph: Graph, count: int, seed: int):
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    return [(rng.choice(vertices), rng.choice(vertices)) for _ in range(count)]
