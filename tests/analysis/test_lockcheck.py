"""Runtime lock-order detector: inversions, re-acquisition, passthrough."""

import threading

import pytest

from repro.analysis import lockcheck
from repro.analysis.lockcheck import CheckedLock, LockOrderError


@pytest.fixture(autouse=True)
def _clean_recorder():
    lockcheck.reset()
    yield
    lockcheck.reset()


class TestCheckedLock:
    def test_lock_surface(self):
        lock = CheckedLock("t.surface")
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()
        with lock:
            assert lock.locked()

    def test_acquire_edges_are_recorded(self):
        a, b = CheckedLock("t.a"), CheckedLock("t.b")
        with a:
            with b:
                pass
        edges = lockcheck.report()["edges"]
        assert [(e["outer"], e["inner"]) for e in edges] == [("t.a", "t.b")]

    def test_consistent_order_never_raises(self):
        a, b = CheckedLock("t.a"), CheckedLock("t.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert lockcheck.report()["inversions"] == []
        lockcheck.assert_no_inversions()

    def test_inversion_raises_at_the_acquire_site(self):
        a, b = CheckedLock("t.a"), CheckedLock("t.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match=r"t\.a -> t\.b"):
                a.acquire()
        # The failed acquire released the inner lock: not stranded.
        assert a.acquire(blocking=False)
        a.release()
        with pytest.raises(LockOrderError):
            lockcheck.assert_no_inversions()

    def test_transitive_inversion_is_caught(self):
        a, b, c = CheckedLock("t.a"), CheckedLock("t.b"), CheckedLock("t.c")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderError):
                a.acquire()

    def test_same_role_siblings_impose_no_order(self):
        # Two instances of the same role (e.g. two connections' send
        # locks) may nest freely without creating self-edges.
        first, second = CheckedLock("t.conn-send"), CheckedLock("t.conn-send")
        with first:
            with second:
                pass
        assert lockcheck.report()["edges"] == []

    def test_plain_reacquire_raises_instead_of_deadlocking(self):
        lock = CheckedLock("t.plain")
        with lock:
            with pytest.raises(LockOrderError, match="re-acquired"):
                lock.acquire()
        with pytest.raises(LockOrderError):
            lockcheck.assert_no_inversions()

    def test_rlock_reacquire_is_fine(self):
        lock = CheckedLock("t.re", reentrant=True)
        with lock:
            with lock:
                pass
        lockcheck.assert_no_inversions()

    def test_inversion_across_threads_is_caught(self):
        a, b = CheckedLock("t.a"), CheckedLock("t.b")

        def ordered():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=ordered, daemon=True)
        worker.start()
        worker.join()
        caught = []

        def inverted():
            try:
                with b:
                    with a:
                        pass
            except LockOrderError as exc:
                caught.append(exc)

        worker = threading.Thread(target=inverted, daemon=True)
        worker.start()
        worker.join()
        assert len(caught) == 1


class TestFactories:
    def test_disabled_returns_plain_locks(self, monkeypatch):
        monkeypatch.delenv(lockcheck.LOCKCHECK_ENV, raising=False)
        assert not lockcheck.enabled()
        lock = lockcheck.create_lock("t.off")
        assert not isinstance(lock, CheckedLock)
        with lock:
            pass
        assert lockcheck.report()["edges"] == []

    def test_enabled_returns_checked_locks(self, monkeypatch):
        monkeypatch.setenv(lockcheck.LOCKCHECK_ENV, "1")
        lock = lockcheck.create_lock("t.on")
        assert isinstance(lock, CheckedLock)
        assert not lock.reentrant
        rlock = lockcheck.create_rlock("t.on-re")
        assert isinstance(rlock, CheckedLock)
        assert rlock.reentrant

    def test_invalid_flag_value_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(lockcheck.LOCKCHECK_ENV, "maybe")
        with pytest.raises(ValueError, match=lockcheck.LOCKCHECK_ENV):
            lockcheck.enabled()

    def test_report_names_the_first_acquire_site(self, monkeypatch):
        monkeypatch.setenv(lockcheck.LOCKCHECK_ENV, "true")
        a = lockcheck.create_lock("t.site-a")
        b = lockcheck.create_lock("t.site-b")
        with a:
            with b:
                pass
        (edge,) = lockcheck.report()["edges"]
        assert __file__ in edge["site"]
