"""Each rule pack proves at least one true finding on its fixture tree."""

from pathlib import Path

from repro.analysis import run_analysis

FIXTURES = Path(__file__).parent / "fixtures"


def _by_rule(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


class TestEnvDiscipline:
    def _report(self):
        return run_analysis([FIXTURES / "envpack"], rules=["env-discipline"])

    def test_direct_os_environ_access_is_flagged(self):
        report = self._report()
        bad = str(FIXTURES / "envpack" / "bad_env.py")
        direct = [
            f
            for f in report.findings
            if f.path == bad and "os.environ accessed" in f.message
        ]
        assert len(direct) == 1
        assert direct[0].line == 8

    def test_aliased_environ_import_is_flagged(self):
        report = self._report()
        assert any(
            "imported as a name" in f.message for f in report.findings
        )

    def test_envvars_module_itself_is_exempt(self):
        report = self._report()
        registry = str(FIXTURES / "envpack" / "envvars.py")
        assert not [f for f in report.findings if f.path == registry]

    def test_undeclared_name_is_flagged(self):
        report = self._report()
        assert any(
            "REPRO_FIX_UNDECLARED is not declared" in f.message
            for f in report.findings
        )

    def test_declared_but_undocumented_name_is_flagged(self):
        report = self._report()
        assert any(
            "REPRO_FIX_UNDOCUMENTED is not documented" in f.message
            for f in report.findings
        )

    def test_declared_and_documented_name_is_clean(self):
        report = self._report()
        assert not any(
            "REPRO_FIX_DOCUMENTED " in f.message for f in report.findings
        )

    def test_suppressed_site_is_counted_not_reported(self):
        report = self._report()
        assert report.suppressed >= 1
        assert not any(f.line == 20 for f in report.findings)


class TestLockDiscipline:
    def _report(self):
        return run_analysis(
            [FIXTURES / "serving"], rules=["lock-discipline"]
        )

    def test_direct_blocking_call_under_lock(self):
        report = self._report()
        locked = str(FIXTURES / "serving" / "locked.py")
        direct = [
            f
            for f in report.findings
            if f.path == locked and "self.sock.sendall()" in f.message
        ]
        assert len(direct) == 1
        assert direct[0].line == 14
        assert "Sender.lock" in direct[0].message

    def test_one_level_reachable_blocking_call(self):
        report = self._report()
        reach = [
            f for f in report.findings if "self._dial()" in f.message
        ]
        assert len(reach) == 1
        assert "reaches blocking" in reach[0].message
        assert "self.sock.connect()" in reach[0].message

    def test_blocking_outside_the_lock_is_clean(self):
        report = self._report()
        assert not any(f.line == 26 for f in report.findings)

    def test_suppression_with_justification_works(self):
        report = self._report()
        assert report.suppressed >= 1
        assert not any(f.line == 30 for f in report.findings)

    def test_scope_is_serving_only(self):
        # The same blocking-under-lock code outside a ``serving`` path
        # segment is out of scope for the rule.
        report = run_analysis(
            [FIXTURES / "threads"], rules=["lock-discipline"]
        )
        assert report.ok


class TestLockOrder:
    def test_opposite_acquisition_orders_report_a_cycle(self):
        report = run_analysis([FIXTURES / "serving"], rules=["lock-order"])
        cycles = [f for f in report.findings if "lock-order cycle" in f.message]
        assert len(cycles) == 1
        message = cycles[0].message
        assert "order_ab.lock_a" in message
        assert "order_ab.lock_b" in message
        assert "order_ab.py" in cycles[0].hint  # edge sites in the hint

    def test_consistent_order_is_clean(self):
        report = run_analysis(
            [FIXTURES / "serving" / "locked.py"], rules=["lock-order"]
        )
        assert report.ok


class TestProtocolConformance:
    def _report(self):
        return run_analysis(
            [FIXTURES / "protocol"], rules=["protocol-conformance"]
        )

    def test_conforming_engine_is_clean(self):
        report = self._report()
        assert not any("GoodEngine" in f.message for f in report.findings)

    def test_missing_protocol_method_is_flagged(self):
        report = self._report()
        assert any(
            "BadEngine does not implement invalidate()" in f.message
            for f in report.findings
        )

    def test_wrong_arity_is_flagged(self):
        report = self._report()
        assert any(
            "BadEngine.distance()" in f.message and "protocol needs 2" in f.message
            for f in report.findings
        )

    def test_extra_required_parameter_is_flagged(self):
        report = self._report()
        assert any(
            "BadEngine.distances()" in f.message
            and "extra required parameter" in f.message
            for f in report.findings
        )

    def test_registration_without_capabilities_is_flagged(self):
        report = self._report()
        nocaps = [
            f
            for f in report.findings
            if "without declared capability flags" in f.message
        ]
        assert len(nocaps) == 1
        assert nocaps[0].line == 42

    def test_unknown_capability_flag_is_flagged(self):
        report = self._report()
        assert any(
            "unknown capability flag(s): CAP_BOGUS" in f.message
            for f in report.findings
        )

    def test_emitted_op_without_handler_is_flagged(self):
        report = self._report()
        missing = [
            f for f in report.findings if "wire op 'missing'" in f.message
        ]
        assert len(missing) == 1
        assert "no server handler" in missing[0].message
        assert missing[0].path.endswith("miniclient.py")

    def test_handled_op_without_emitter_is_flagged(self):
        report = self._report()
        orphaned = [
            f for f in report.findings if "wire op 'orphaned'" in f.message
        ]
        assert len(orphaned) == 1
        assert "nothing" in orphaned[0].message
        assert orphaned[0].path.endswith("miniserver.py")

    def test_matched_op_is_clean(self):
        report = self._report()
        assert not any("'ping'" in f.message for f in report.findings)

    def test_one_sided_scan_skips_the_op_contract(self):
        report = run_analysis(
            [FIXTURES / "protocol" / "miniclient.py"],
            rules=["protocol-conformance"],
        )
        assert report.ok


class TestThreadHygiene:
    def _report(self):
        return run_analysis([FIXTURES / "threads"], rules=["thread-hygiene"])

    def test_leaked_thread_is_flagged(self):
        report = self._report()
        leaked = [f for f in report.findings if "'worker'" in f.message]
        assert len(leaked) == 1
        assert leaked[0].line == 7

    def test_fire_and_forget_thread_is_flagged(self):
        report = self._report()
        assert any(
            "unassigned thread" in f.message and f.line == 13
            for f in report.findings
        )

    def test_daemonized_and_reaped_threads_are_clean(self):
        report = self._report()
        assert len(report.findings) == 2
