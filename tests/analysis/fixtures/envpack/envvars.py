"""Fixture registry: the one file allowed to touch os.environ."""

import os

ENV_VARS = {
    "REPRO_FIX_DOCUMENTED": "declared and documented: the clean case",
    "REPRO_FIX_UNDOCUMENTED": "declared here but missing from README",
}


def read(name):
    return os.environ.get(name)
