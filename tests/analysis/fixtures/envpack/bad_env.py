"""Fixture module violating every env-discipline invariant once."""

import os
from os import environ as env_alias


def direct_access():
    return os.environ.get("REPRO_FIX_UNDECLARED")


def aliased_access():
    return env_alias.get("REPRO_FIX_DOCUMENTED")


def undocumented_use():
    return "REPRO_FIX_UNDOCUMENTED"


def suppressed_access():
    return os.environ.get("REPRO_FIX_DOCUMENTED")  # repro-lint: disable=env-discipline
