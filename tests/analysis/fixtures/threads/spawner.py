"""Fixture: one leaked thread, one fire-and-forget, two clean ones."""

import threading


def leak():
    worker = threading.Thread(target=print)
    worker.start()
    return worker


def fire_and_forget():
    threading.Thread(target=print).start()


def daemonized():
    thread = threading.Thread(target=print, daemon=True)
    thread.start()
    return thread


def reaped():
    thread = threading.Thread(target=print)
    thread.start()
    thread.join()
