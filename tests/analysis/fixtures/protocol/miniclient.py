"""Fixture client: emits ``ping`` (handled) and ``missing`` (not)."""


def ping():
    return {"op": "ping"}


def misroute():
    return {"op": "missing", "payload": []}
