"""Fixture registrations: one conforming engine, several broken ones."""

from engines_meta import register_engine

CAP_LOCAL = "local"
CAP_BOGUS = "bogus"


class GoodEngine:
    name = "good"
    frozen = False

    def freeze(self):
        return self

    def distance(self, source, target):
        return 0.0

    def distances(self, pairs):
        return [0.0 for _ in pairs]

    def invalidate(self, dirty=None):
        return None


class BadEngine:
    name = "bad"
    frozen = False

    def freeze(self):
        return self

    def distance(self, source):
        return 0.0

    def distances(self, pairs, batch):
        return [0.0 for _ in pairs]


register_engine("undirected", "good", GoodEngine, {CAP_LOCAL})
register_engine("undirected", "bad", BadEngine, {CAP_LOCAL})
register_engine("undirected", "nocaps", GoodEngine)
register_engine("undirected", "weird", GoodEngine, {CAP_BOGUS})
