"""Fixture protocol spec: the machine-readable contract the rule reads."""

PROTOCOL_METHODS = {
    "freeze": (),
    "distance": ("source", "target"),
    "distances": ("pairs",),
    "invalidate": ("dirty",),
}

KNOWN_CAPABILITIES = frozenset({"CAP_LOCAL", "CAP_REMOTE"})


def register_engine(kind, name, factory, capabilities=None):
    return None
