"""Fixture server: handles ``ping`` and an op nothing ever emits."""


class MiniServer:
    def _handle(self, payload):
        op = payload.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "orphaned":
            return {"ok": True}
        return {"error": f"unknown op {op!r}"}
