"""Fixture: two locks taken in opposite orders — a lock-order cycle."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward():
    with lock_a:
        with lock_b:
            return 1


def backward():
    with lock_b:
        with lock_a:
            return 2
