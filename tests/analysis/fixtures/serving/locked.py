"""Fixture: blocking calls under a held lock, direct and one level deep."""

import socket
import threading


class Sender:
    def __init__(self):
        self.lock = threading.Lock()
        self.sock = socket.socket()

    def bad_direct(self, data):
        with self.lock:
            self.sock.sendall(data)

    def _dial(self):
        self.sock.connect(("127.0.0.1", 1))

    def bad_indirect(self):
        with self.lock:
            self._dial()

    def ok_outside(self, data):
        with self.lock:
            pending = bytes(data)
        self.sock.sendall(pending)

    def ok_suppressed(self, data):
        with self.lock:
            self.sock.sendall(data)  # repro-lint: disable=lock-discipline
