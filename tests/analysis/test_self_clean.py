"""The repo's own source tree must be clean under ``repro analyze``.

This is the self-check the CI gate relies on: every invariant the rule
packs encode holds at head, and every deliberate exception is a visible
in-place suppression, not a weakened rule.
"""

from pathlib import Path

import pytest

import repro
from repro.analysis import run_analysis
from repro.cli import main

SRC = Path(repro.__file__).resolve().parent


@pytest.fixture(scope="module")
def head_report():
    return run_analysis([SRC])


def test_src_tree_is_clean(head_report):
    assert head_report.ok, "\n" + head_report.render()


def test_the_deliberate_exceptions_stay_visible(head_report):
    # Suppressions are part of the contract: they mark audited
    # blocking-under-lock and whole-environment-copy sites.  New ones
    # need the same scrutiny — bump deliberately.
    assert head_report.suppressed == 5


def test_every_rule_pack_ran(head_report):
    assert set(head_report.rules) >= {
        "env-discipline",
        "lock-discipline",
        "lock-order",
        "protocol-conformance",
        "thread-hygiene",
    }


def test_cli_analyze_exits_zero_on_clean_tree(capsys):
    assert main(["analyze", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_analyze_exits_one_on_findings(tmp_path, capsys):
    (tmp_path / "m.py").write_text(
        "import threading\nt = threading.Thread(target=print)\n"
    )
    assert main(["analyze", str(tmp_path)]) == 1
    assert "thread-hygiene" in capsys.readouterr().out


def test_cli_analyze_json_format(tmp_path, capsys):
    import json

    (tmp_path / "m.py").write_text("x = 1\n")
    assert main(["analyze", str(tmp_path), "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["files"] == 1


def test_cli_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "env-discipline" in out and "lock-order" in out


def test_cli_rejects_unknown_rule_id():
    assert main(["analyze", "--rules", "nope", "src"]) == 2
