"""Engine mechanics: scanning, suppression, rule selection, rendering."""

from pathlib import Path

import pytest

from repro.analysis import available_rules, run_analysis
from repro.analysis.engine import Finding

FIXTURES = Path(__file__).parent / "fixtures"


class TestRunAnalysis:
    def test_unknown_rule_id_raises(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        with pytest.raises(ValueError, match="no-such-rule"):
            run_analysis([tmp_path], rules=["no-such-rule"])

    def test_rule_selection_limits_the_run(self):
        report = run_analysis(
            [FIXTURES / "envpack"], rules=["thread-hygiene"]
        )
        assert report.rules == ("thread-hygiene",)
        assert report.findings == []

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = run_analysis([tmp_path])
        assert not report.ok
        assert [f.rule for f in report.findings] == ["syntax-error"]
        assert report.findings[0].path == str(bad)

    def test_pycache_and_dot_dirs_are_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("def f(:\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "junk.py").write_text("def f(:\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = run_analysis([tmp_path])
        assert report.ok
        assert report.files == 1

    def test_single_file_path_scans_exactly_that_file(self):
        report = run_analysis([FIXTURES / "envpack" / "envvars.py"])
        assert report.files == 1

    def test_available_rules_lists_the_builtin_packs(self):
        rules = available_rules()
        for expected in (
            "env-discipline",
            "lock-discipline",
            "lock-order",
            "protocol-conformance",
            "thread-hygiene",
        ):
            assert expected in rules
            assert rules[expected]  # every rule carries a description


class TestSuppression:
    def test_line_suppression_silences_one_rule(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import threading\n"
            "t = threading.Thread(target=print)  "
            "# repro-lint: disable=thread-hygiene\n"
        )
        report = run_analysis([tmp_path], rules=["thread-hygiene"])
        assert report.ok
        assert report.suppressed == 1

    def test_disable_all_silences_every_rule(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import threading\n"
            "t = threading.Thread(target=print)  # repro-lint: disable=all\n"
        )
        report = run_analysis([tmp_path])
        assert report.ok
        assert report.suppressed == 1

    def test_suppression_on_another_line_does_not_leak(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import threading\n"
            "x = 1  # repro-lint: disable=thread-hygiene\n"
            "t = threading.Thread(target=print)\n"
        )
        report = run_analysis([tmp_path], rules=["thread-hygiene"])
        assert not report.ok


class TestReport:
    def test_findings_sort_by_path_then_line(self):
        report = run_analysis([FIXTURES / "envpack"])
        keys = [(f.path, f.line) for f in report.findings]
        assert keys == sorted(keys)

    def test_to_dict_round_trips_the_essentials(self):
        report = run_analysis([FIXTURES / "envpack"])
        data = report.to_dict()
        assert data["ok"] is False
        assert data["files"] == report.files
        assert len(data["findings"]) == len(report.findings)
        for entry in data["findings"]:
            assert set(entry) >= {"path", "line", "rule", "message"}

    def test_render_is_path_line_rule_message(self):
        finding = Finding("a.py", 3, "some-rule", "it broke", "fix it")
        assert finding.render() == "a.py:3: [some-rule] it broke (hint: fix it)"
