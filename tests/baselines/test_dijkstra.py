"""Unit tests for the Dijkstra family, cross-checked against networkx."""

import math

import pytest

from repro.baselines.dijkstra import (
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_digraph,
    dijkstra_digraph_distance,
    dijkstra_distance,
    dijkstra_path,
)
from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_graph
from repro.graph.graph import Graph

from tests.conftest import nx_distance, random_pairs


class TestSSSP:
    def test_matches_networkx(self, random_graph):
        import networkx as nx

        from tests.conftest import to_networkx

        source = next(iter(random_graph.vertices()))
        truth = nx.single_source_dijkstra_path_length(
            to_networkx(random_graph), source
        )
        assert dijkstra(random_graph, source) == truth

    def test_unreachable_vertices_absent(self, disconnected):
        dist = dijkstra(disconnected, 0)
        assert set(dist) == {0, 1, 2}

    def test_source_missing_raises(self, triangle):
        with pytest.raises(QueryError):
            dijkstra(triangle, 99)


class TestP2P:
    def test_matches_networkx(self, random_graph):
        for s, t in random_pairs(random_graph, 60, seed=1):
            assert dijkstra_distance(random_graph, s, t) == nx_distance(
                random_graph, s, t
            )

    def test_self_distance(self, triangle):
        assert dijkstra_distance(triangle, 1, 1) == 0

    def test_unreachable_is_inf(self, disconnected):
        assert math.isinf(dijkstra_distance(disconnected, 0, 10))

    def test_early_exit_correct_on_path(self):
        g = path_graph(100, weight=3)
        assert dijkstra_distance(g, 10, 20) == 30

    def test_missing_endpoint_raises(self, triangle):
        with pytest.raises(QueryError):
            dijkstra_distance(triangle, 1, 99)


class TestPathVariant:
    def test_path_matches_distance(self, random_graph):
        for s, t in random_pairs(random_graph, 40, seed=2):
            dist, path = dijkstra_path(random_graph, s, t)
            assert dist == nx_distance(random_graph, s, t)
            if path is not None:
                assert path[0] == s and path[-1] == t
                total = sum(
                    random_graph.weight(a, b) for a, b in zip(path, path[1:])
                )
                assert total == dist

    def test_unreachable_pair(self, disconnected):
        dist, path = dijkstra_path(disconnected, 0, 10)
        assert math.isinf(dist) and path is None

    def test_self_path(self, triangle):
        assert dijkstra_path(triangle, 2, 2) == (0, [2])


class TestBidirectional:
    def test_matches_unidirectional(self, random_graph):
        for s, t in random_pairs(random_graph, 80, seed=3):
            assert bidirectional_dijkstra(random_graph, s, t) == dijkstra_distance(
                random_graph, s, t
            )

    def test_disconnected(self, disconnected):
        assert math.isinf(bidirectional_dijkstra(disconnected, 0, 20))

    def test_self(self, triangle):
        assert bidirectional_dijkstra(triangle, 3, 3) == 0

    def test_missing_endpoint_raises(self, triangle):
        with pytest.raises(QueryError):
            bidirectional_dijkstra(triangle, 99, 1)


class TestDirected:
    @pytest.fixture
    def dg(self):
        return DiGraph([(0, 1, 2), (1, 2, 3), (2, 0, 1), (0, 3, 10), (3, 2, 1)])

    def test_forward_distances(self, dg):
        assert dijkstra_digraph(dg, 0) == {0: 0, 1: 2, 2: 5, 3: 10}

    def test_reverse_distances(self, dg):
        assert dijkstra_digraph(dg, 2, reverse=True) == {2: 0, 1: 3, 0: 5, 3: 1}

    def test_p2p(self, dg):
        assert dijkstra_digraph_distance(dg, 0, 2) == 5
        assert dijkstra_digraph_distance(dg, 2, 3) == 11  # 2->0->3

    def test_unreachable(self):
        dg = DiGraph([(0, 1, 1)])
        assert math.isinf(dijkstra_digraph_distance(dg, 1, 0))
