"""Unit tests for the VC-Index comparator."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra, dijkstra_distance
from repro.baselines.vc_index import VCIndex
from repro.errors import QueryError
from repro.graph.graph import Graph

from tests.conftest import random_pairs


@pytest.fixture(scope="module")
def built(request):
    from repro.graph.generators import ensure_connected, erdos_renyi

    g = ensure_connected(erdos_renyi(130, 320, seed=95, max_weight=5), seed=95)
    return g, VCIndex.build(g)


class TestCorrectness:
    def test_p2p_matches_dijkstra(self, built):
        g, vc = built
        for s, t in random_pairs(g, 120, seed=1):
            assert vc.distance(s, t) == dijkstra_distance(g, s, t)

    def test_p2p_per_family(self, random_graph):
        vc = VCIndex.build(random_graph)
        for s, t in random_pairs(random_graph, 60, seed=2):
            assert vc.distance(s, t) == dijkstra_distance(random_graph, s, t)

    def test_sssp_native_query(self, built):
        g, vc = built
        for source in list(g.vertices())[:5]:
            truth = dijkstra(g, source)
            got = vc.sssp(source)
            for t in g.vertices():
                assert got.get(t, math.inf) == truth.get(t, math.inf)

    def test_self_distance(self, built):
        _, vc = built
        assert vc.distance(5, 5) == 0

    def test_disconnected(self):
        g = Graph([(0, 1), (5, 6)])
        vc = VCIndex.build(g)
        assert math.isinf(vc.distance(0, 6))

    def test_unknown_vertex_raises(self, built):
        _, vc = built
        with pytest.raises(QueryError):
            vc.distance(0, 10**9)


class TestCostAccounting:
    def test_query_reports_ios(self, built):
        g, vc = built
        below = [
            v for v in g.vertices() if vc.hierarchy.level(v) < vc.k
        ]
        result = vc.query(below[0], below[1])
        assert result.ios > 0
        assert result.time_io_s == pytest.approx(
            result.ios * vc.cost_model.io_latency_s
        )
        assert result.total_time_s >= result.time_io_s

    def test_gk_target_skips_downward_sweep(self, built):
        g, vc = built
        below = [v for v in g.vertices() if vc.hierarchy.level(v) < vc.k]
        in_gk = [v for v in g.vertices() if vc.hierarchy.level(v) == vc.k]
        if not in_gk:
            pytest.skip("hierarchy fully decomposed")
        cheap = vc.query(below[0], in_gk[0])
        costly = vc.query(below[0], below[1])
        assert cheap.ios <= costly.ios

    def test_self_query_free(self, built):
        _, vc = built
        result = vc.query(3, 3)
        assert result.ios == 0 and result.distance == 0

    def test_index_bytes_positive(self, built):
        _, vc = built
        assert vc.index_bytes > 0
        assert vc.build_seconds >= 0
        assert vc.k == vc.hierarchy.k
