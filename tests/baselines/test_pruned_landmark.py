"""Unit tests for the pruned-landmark 2-hop baseline."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.baselines.pruned_landmark import PrunedLandmarkIndex
from repro.errors import QueryError
from repro.graph.generators import complete_graph, path_graph
from repro.graph.graph import Graph

from tests.conftest import random_pairs


class TestCorrectness:
    def test_matches_dijkstra(self, random_graph):
        pll = PrunedLandmarkIndex.build(random_graph)
        for s, t in random_pairs(random_graph, 100, seed=1):
            assert pll.distance(s, t) == dijkstra_distance(random_graph, s, t)

    def test_self_distance(self, triangle):
        pll = PrunedLandmarkIndex.build(triangle)
        assert pll.distance(2, 2) == 0

    def test_disconnected(self):
        g = Graph([(0, 1), (5, 6)])
        pll = PrunedLandmarkIndex.build(g)
        assert math.isinf(pll.distance(0, 6))

    def test_unknown_vertex_raises(self, triangle):
        pll = PrunedLandmarkIndex.build(triangle)
        with pytest.raises(QueryError):
            pll.distance(1, 42)

    def test_custom_order(self):
        g = path_graph(8)
        pll = PrunedLandmarkIndex.build(g, order=list(range(8)))
        for s in range(8):
            for t in range(8):
                assert pll.distance(s, t) == abs(s - t)


class TestPruning:
    def test_hub_cover_keeps_labels_small(self):
        """On a star, every pair is covered by the hub: 2 entries max."""
        g = Graph([(0, v) for v in range(1, 20)])
        pll = PrunedLandmarkIndex.build(g)
        assert all(len(pll.label(v)) <= 2 for v in g.vertices())

    def test_complete_graph_labels_quadratic(self):
        # On K_n no 2-hop detour (length 2) can certify a direct edge
        # (length 1), so pruning never fires: n(n+1)/2 entries exactly.
        g = complete_graph(12)
        pll = PrunedLandmarkIndex.build(g)
        assert pll.label_entries == 12 * 13 // 2

    def test_weighted_star_prunes_through_hub(self):
        # With heavy leaf-leaf distances the hub certifies every pair.
        g = Graph([(0, v, 5) for v in range(1, 15)])
        pll = PrunedLandmarkIndex.build(g)
        assert all(len(pll.label(v)) <= 2 for v in g.vertices())

    def test_index_bytes(self, triangle):
        pll = PrunedLandmarkIndex.build(triangle)
        assert pll.index_bytes == 16 * pll.label_entries

    def test_labels_sorted_by_rank(self, random_graph):
        pll = PrunedLandmarkIndex.build(random_graph)
        for v in list(random_graph.vertices())[:20]:
            ranks = [r for r, _ in pll.label(v)]
            assert ranks == sorted(ranks)
