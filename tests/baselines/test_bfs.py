"""Unit tests for BFS distances."""

import math

import pytest

from repro.baselines.bfs import bfs_distance, bfs_distances
from repro.baselines.dijkstra import dijkstra
from repro.errors import QueryError
from repro.graph.generators import erdos_renyi, path_graph, star_graph


def test_hop_counts_on_path():
    g = path_graph(10)
    assert bfs_distances(g, 0) == {v: v for v in range(10)}


def test_star_single_hop():
    g = star_graph(5)
    dist = bfs_distances(g, 0)
    assert all(dist[v] == 1 for v in range(1, 6))


def test_matches_dijkstra_on_unit_weights():
    g = erdos_renyi(80, 200, seed=91)  # weight 1 edges
    source = 0
    assert bfs_distances(g, source) == dijkstra(g, source)


def test_p2p_early_exit():
    g = path_graph(50)
    assert bfs_distance(g, 5, 25) == 20


def test_p2p_self():
    g = path_graph(3)
    assert bfs_distance(g, 1, 1) == 0


def test_unreachable(disconnected):
    assert math.isinf(bfs_distance(disconnected, 0, 10))
    assert 10 not in bfs_distances(disconnected, 0)


def test_missing_vertex_raises(triangle):
    with pytest.raises(QueryError):
        bfs_distances(triangle, 42)
    with pytest.raises(QueryError):
        bfs_distance(triangle, 1, 42)
