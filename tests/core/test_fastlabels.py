"""Unit tests for the array-native fast engine internals."""

import math

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.fastlabels import (
    APSP_BUDGET_ENV,
    DEFAULT_APSP_BUDGET_BYTES,
    FastEngine,
    LabelArrayPool,
    apsp_ceiling,
    as_array_label,
    array_label_entries,
    eq1_merge,
    fast_top_down_labels,
)
from repro.core.hierarchy import build_hierarchy
from repro.core.index import ISLabelIndex
from repro.core.labeling import top_down_labels
from repro.core.labels import eq1_distance_argmin, sort_label
from repro.core.query import csr_label_bidijkstra, label_bidijkstra
from repro.graph.generators import ensure_connected, erdos_renyi, grid_graph
from repro.graph.graph import Graph

from tests.conftest import random_pairs


class TestArrayLabels:
    def test_round_trip(self):
        entries = [(1, 0), (4, 2), (9, 7)]
        assert array_label_entries(as_array_label(entries)) == entries

    def test_empty(self):
        anc, d = as_array_label([])
        assert len(anc) == 0 and len(d) == 0
        assert array_label_entries((anc, d)) == []

    def test_eq1_merge_matches_reference(self):
        label_s = [(1, 3), (5, 2), (8, 1)]
        label_t = [(2, 1), (5, 4), (8, 9)]
        expected = eq1_distance_argmin(label_s, label_t)
        assert eq1_merge(as_array_label(label_s), as_array_label(label_t)) == expected

    def test_eq1_merge_disjoint_is_inf(self):
        dist, w = eq1_merge(
            as_array_label([(1, 1)]), as_array_label([(2, 1)])
        )
        assert math.isinf(dist) and w == -1

    def test_eq1_merge_empty_side(self):
        dist, w = eq1_merge(as_array_label([]), as_array_label([(2, 1)]))
        assert math.isinf(dist) and w == -1


class TestFastTopDown:
    @pytest.mark.parametrize("kwargs", [{}, {"full": True}, {"k": 3}])
    def test_matches_reference_labeler(self, random_graph, kwargs):
        hierarchy = build_hierarchy(random_graph, **(
            {"sigma": None, **kwargs} if kwargs else {}
        ))
        reference, _ = top_down_labels(hierarchy)
        lists, arrays = fast_top_down_labels(hierarchy)
        assert set(lists) == set(reference)
        for v, label in reference.items():
            assert lists[v] == sort_label(label), v
        for v, arr in arrays.items():
            assert array_label_entries(arr) == lists[v], v


class TestLabelArrayPool:
    def test_epoch_invalidates_without_clearing(self):
        pool = LabelArrayPool()
        e1 = pool.acquire(4)
        pool.dist_f[2] = 99
        pool.seen_f[2] = e1
        e2 = pool.acquire(4)
        assert e2 == e1 + 1
        assert pool.seen_f[2] != e2  # stale entry is dead without a clear
        assert len(pool.dist_f) == 4

    def test_growth_keeps_capacity(self):
        pool = LabelArrayPool()
        pool.acquire(2)
        pool.acquire(10)
        assert len(pool.dist_r) == 10
        pool.acquire(3)
        assert len(pool.dist_r) == 10


class TestFastEngine:
    def test_lazy_freeze(self, random_graph):
        index = ISLabelIndex.build(random_graph)
        engine = index._fast
        assert not engine.frozen
        index.distance(*random_pairs(random_graph, 1, seed=0)[0])
        assert engine.frozen

    def test_seeds_match_reference_extraction(self, random_graph):
        index = ISLabelIndex.build(random_graph)
        engine = index._fast
        engine.freeze()
        csr = engine.csr
        for v in random_graph.vertices():
            ids, dists = engine.seeds(v)
            got = sorted(zip((csr.original(i) for i in ids), dists))
            expected = sorted(
                (w, d) for w, d in index.label(v) if index.gk.has_vertex(w)
            )
            assert got == expected, v

    def test_seeds_numpy_mirror_lists(self, random_graph):
        engine = ISLabelIndex.build(random_graph)._fast
        engine.freeze()
        for v in random_graph.vertices():
            ids, dists = engine.seeds(v)
            ids_np, dists_np = engine.seeds_np(v)
            assert ids_np.tolist() == ids
            assert dists_np.tolist() == dists

    def test_apsp_rows_match_dijkstra_over_gk(self):
        g = ensure_connected(erdos_renyi(120, 300, seed=3, max_weight=7), seed=3)
        index = ISLabelIndex.build(g)
        engine = index._fast
        if not engine.has_apsp:
            pytest.skip("G_k exceeded the table threshold")
        csr = engine.csr
        n = csr.num_vertices
        for a in range(min(n, 10)):
            engine._fill_apsp_row(a)
            for b in range(n):
                expected = dijkstra_distance(
                    index.gk, csr.original(a), csr.original(b)
                )
                assert engine._apsp[a, b] == expected, (a, b)

    def test_engine_property(self, random_graph):
        assert ISLabelIndex.build(random_graph).engine == "fast"
        assert ISLabelIndex.build(random_graph, engine="dict").engine == "dict"
        with pytest.raises(Exception):
            ISLabelIndex.build(random_graph, engine="vroom")


class TestAdaptiveApspBudget:
    def test_default_budget_keeps_the_2048_ceiling(self):
        assert apsp_ceiling(DEFAULT_APSP_BUDGET_BYTES) == 2048
        assert apsp_ceiling(None) == 2048  # no env override in this test run

    def test_ceiling_scales_with_budget(self):
        assert apsp_ceiling(8 * 50 * 50) == 50
        assert apsp_ceiling(8 * 50 * 50 - 1) == 49
        assert apsp_ceiling(0) == 0
        assert apsp_ceiling(-5) == 0

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(APSP_BUDGET_ENV, "0.5")  # half a megabyte
        assert apsp_ceiling() == math.isqrt((512 * 1024) // 8)
        monkeypatch.setenv(APSP_BUDGET_ENV, "0")  # explicit disable
        assert apsp_ceiling() == 0

    def test_env_var_invalid_values_raise_named_error(self, monkeypatch):
        """Garbage in the env var must fail loudly, naming the variable
        and the accepted range — not silently disable the table."""
        for bad in ("not-a-number", "-3", "inf", "-inf", "nan", ""):
            monkeypatch.setenv(APSP_BUDGET_ENV, bad)
            with pytest.raises(ValueError, match=APSP_BUDGET_ENV) as excinfo:
                apsp_ceiling()
            assert "megabytes" in str(excinfo.value), bad

    def test_env_var_invalid_value_fails_engine_construction(
        self, monkeypatch, random_graph
    ):
        monkeypatch.setenv(APSP_BUDGET_ENV, "banana")
        with pytest.raises(ValueError, match=APSP_BUDGET_ENV):
            ISLabelIndex.build(random_graph)

    def test_constructor_budget_disables_table(self, random_graph):
        index = ISLabelIndex.build(random_graph)
        starved = FastEngine(
            index.gk, {v: index.label(v) for v in random_graph.vertices()},
            apsp_budget_bytes=0,
        )
        starved.freeze()
        assert not starved.has_apsp
        rich = ISLabelIndex.build(random_graph)._fast
        rich.freeze()
        if rich.has_apsp:
            for s, t in random_pairs(random_graph, 20, seed=2):
                assert starved.distance(s, t) == rich.distance(s, t)

    def test_env_budget_applies_to_built_engines(self, monkeypatch, random_graph):
        monkeypatch.setenv(APSP_BUDGET_ENV, "0")
        index = ISLabelIndex.build(random_graph)
        index._fast.freeze()
        assert index.search_mode == "csr"
        monkeypatch.delenv(APSP_BUDGET_ENV)
        default = ISLabelIndex.build(random_graph)
        pairs = random_pairs(random_graph, 25, seed=3)
        assert index.distances(pairs) == default.distances(pairs)


class TestCsrSearchParity:
    def test_matches_dict_search(self):
        g = ensure_connected(erdos_renyi(90, 260, seed=9, max_weight=9), seed=9)
        index = ISLabelIndex.build(g, engine="dict")
        fast = ISLabelIndex.build(g, engine="fast")
        engine = fast._fast
        engine.freeze()
        csr = engine.csr
        pool = engine.pool
        for s, t in random_pairs(g, 60, seed=4):
            if s == t:
                continue
            label_s = index.label(s)
            label_t = index.label(t)
            mu0, _ = eq1_distance_argmin(label_s, label_t)
            seeds_f = index._gk_seeds(label_s)
            seeds_r = index._gk_seeds(label_t)
            if not seeds_f or not seeds_r:
                continue
            reference = label_bidijkstra(
                index._gk_adjacency,
                index._gk_adjacency,
                seeds_f,
                seeds_r,
                initial_mu=mu0,
            )
            dense_f = ([csr.dense(v) for v, _ in seeds_f], [d for _, d in seeds_f])
            dense_r = ([csr.dense(v) for v, _ in seeds_r], [d for _, d in seeds_r])
            got, _, stats = csr_label_bidijkstra(
                engine.indptr,
                engine.indices,
                engine.weights,
                dense_f,
                dense_r,
                pool,
                csr.num_vertices,
                initial_mu=mu0,
            )
            assert got == reference.distance, (s, t)
            assert stats.settled_total >= 0


class TestIncrementalInvalidate:
    """invalidate(dirty): re-pack dirty labels, repair G_k structures."""

    @pytest.fixture
    def index(self):
        g = ensure_connected(erdos_renyi(60, 150, seed=21, max_weight=4), seed=21)
        return ISLabelIndex.build(g, engine="fast")

    def test_full_invalidate_drops_everything(self, index):
        engine = index._fast
        engine.freeze()
        engine.invalidate()
        assert not engine.frozen
        assert engine.csr is None and engine.labels == {}

    def test_dirty_label_repacked_in_place(self, index):
        engine = index._fast
        engine.freeze()
        victim = next(v for v in index._labels if not index.hierarchy.in_gk(v))
        untouched = next(
            v for v in index._labels if v != victim and not index.hierarchy.in_gk(v)
        )
        before_untouched = engine.labels[untouched]
        index._labels[victim] = [(victim, 0)]
        engine.invalidate({victim})
        assert engine.frozen, "incremental invalidation must not drop the freeze"
        assert array_label_entries(engine.labels[victim]) == [(victim, 0)]
        # Clean labels keep their views over the original backing buffers.
        assert engine.labels[untouched][0] is before_untouched[0]

    def test_dirty_vertex_removed_from_tables(self, index):
        engine = index._fast
        engine.freeze()
        victim = next(v for v in index._labels if not index.hierarchy.in_gk(v))
        del index._labels[victim]
        index.hierarchy.level_of.pop(victim)
        engine.invalidate({victim})
        assert engine.frozen
        assert victim not in engine.labels
        assert victim not in engine._seed_ids

    def test_gk_vertex_removal_falls_back_to_full(self, index):
        engine = index._fast
        engine.freeze()
        gk_vertex = next(iter(index.gk.vertices()))
        index.gk.remove_vertex(gk_vertex)
        index._labels.pop(gk_vertex, None)
        engine.invalidate({gk_vertex})
        assert not engine.frozen, "dense-id shifts require a full re-freeze"

    def test_oversized_dirty_set_falls_back_to_full(self, index):
        engine = index._fast
        engine.freeze()
        engine.incremental_max_fraction = 0.25
        # Dirty more labels than both the fraction and the floor allow.
        dirty = set(index._labels)
        assert len(dirty) <= 64  # floor would keep it incremental...
        engine.invalidate(set(range(200_000, 200_100)) | dirty)  # ...so exceed it
        assert not engine.frozen

    def test_disabled_incremental_always_drops(self, index):
        engine = index._fast
        engine.freeze()
        engine.incremental_max_fraction = 0.0
        victim = next(iter(index._labels))
        engine.invalidate({victim})
        assert not engine.frozen

    def test_pre_freeze_invalidate_forgets_prebuilt_arrays(self):
        # A full hierarchy produces deep labels, so some were merged
        # vectorially and sit in _prebuilt awaiting the first freeze.
        g = ensure_connected(erdos_renyi(150, 400, seed=22, max_weight=4), seed=22)
        index = ISLabelIndex.build(g, engine="fast", full=True)
        engine = index._fast
        assert not engine.frozen
        assert engine._prebuilt, "expected vectorially merged labels"
        victim = next(iter(engine._prebuilt))
        index._labels[victim] = [(victim, 0)]
        engine.invalidate({victim})
        assert victim not in engine._prebuilt
        engine.freeze()
        assert array_label_entries(engine.labels[victim]) == [(victim, 0)]

    def test_apsp_rows_survive_pure_label_patching(self, index):
        engine = index._fast
        engine.freeze()
        if engine._apsp is None:
            pytest.skip("G_k exceeds the table budget on this graph")
        pairs = random_pairs(index.hierarchy.gk, 10, seed=3)
        index.distances(pairs)  # fill some rows
        done_before = int(engine._apsp_done.sum())
        victim = next(v for v in index._labels if not index.hierarchy.in_gk(v))
        index._labels[victim] = [(victim, 0)]
        engine.invalidate({victim})
        assert engine.frozen
        assert int(engine._apsp_done.sum()) == done_before
