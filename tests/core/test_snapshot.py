"""The zero-copy snapshot format and the mmap/sharded serving engines."""

import json
import math
import os

import numpy as np
import pytest

from repro.core.index import ISLabelIndex
from repro.core.directed import DirectedISLabelIndex
from repro.core.serialization import (
    load_directed_index,
    load_index,
    save_index,
    save_snapshot,
)
from repro.core.snapshot import (
    KIND_DIRECTED,
    KIND_UNDIRECTED,
    MANIFEST_NAME,
    MmapEngine,
    ShardedEngine,
    SnapshotFile,
    is_snapshot_path,
    open_snapshot,
)
from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.graph.graph import Graph


@pytest.fixture(scope="module")
def graph():
    return ensure_connected(erdos_renyi(70, 180, seed=31, max_weight=5), seed=31)


@pytest.fixture(scope="module")
def digraph():
    import random

    rng = random.Random(13)
    dg = DiGraph()
    for v in range(50):
        dg.add_vertex(v)
    for _ in range(200):
        u, v = rng.sample(range(50), 2)
        dg.merge_edge(u, v, rng.randint(1, 5))
    return dg


@pytest.fixture()
def snapshot(graph, tmp_path):
    index = ISLabelIndex.build(graph)
    path = tmp_path / "g.snap"
    save_snapshot(index, path)
    return index, str(path)


class TestFormat:
    def test_sniffing(self, graph, snapshot, tmp_path):
        index, snap_path = snapshot
        stream = tmp_path / "g.islx"
        save_index(index, stream)
        assert is_snapshot_path(snap_path)
        assert not is_snapshot_path(stream)
        assert not is_snapshot_path(tmp_path / "missing")

    def test_sections_are_aligned(self, snapshot):
        _, path = snapshot
        snap = SnapshotFile(path)
        for name, entry in snap._toc.items():
            assert entry["offset"] % 64 == 0, name

    def test_kind_and_meta(self, snapshot):
        index, path = snapshot
        snap = open_snapshot(path)
        assert snap.kind == KIND_UNDIRECTED
        assert snap.meta["k"] == index.hierarchy.k
        assert snap.meta["sizes"] == list(index.hierarchy.sizes)

    def test_bad_magic_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.snap"
        bogus.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(StorageError, match="magic"):
            SnapshotFile(str(bogus))

    def test_missing_section_rejected(self, snapshot):
        _, path = snapshot
        with pytest.raises(StorageError, match="no snapshot section"):
            SnapshotFile(path).array("nonexistent")

    def test_crash_truncated_snapshot_rejected(self, snapshot, tmp_path):
        """A writer that died before the header patch must parse cleanly
        as StorageError, not crash in the JSON decoder."""
        _, path = snapshot
        import struct

        from repro.core.snapshot import _HEADER, KIND_UNDIRECTED, SNAPSHOT_MAGIC, SNAPSHOT_VERSION

        data = bytearray(open(path, "rb").read())
        data[: _HEADER.size] = _HEADER.pack(
            SNAPSHOT_MAGIC, SNAPSHOT_VERSION, KIND_UNDIRECTED, 0, 0, 0
        )
        truncated = tmp_path / "truncated.snap"
        truncated.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="truncated"):
            SnapshotFile(str(truncated))

    def test_sharded_write_refuses_foreign_directory(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        target = tmp_path / "precious"
        target.mkdir()
        (target / "data.txt").write_text("do not delete")
        with pytest.raises(StorageError, match="refusing to overwrite"):
            save_snapshot(index, target, shards=3)
        assert (target / "data.txt").read_text() == "do not delete"
        # An existing *snapshot* directory is replaced in place.
        ok = tmp_path / "replaceable"
        save_snapshot(index, ok, shards=3)
        save_snapshot(index, ok, shards=2)
        assert is_snapshot_path(ok)

    def test_layout_swap_overwrites_cleanly(self, graph, tmp_path):
        """Single-file over sharded (and vice versa) replaces the snapshot;
        foreign files are refused instead of clobbered."""
        index = ISLabelIndex.build(graph)
        target = tmp_path / "swap"
        save_snapshot(index, target, shards=3)
        assert target.is_dir()
        save_snapshot(index, target)  # sharded -> single file
        assert target.is_file() and is_snapshot_path(target)
        save_snapshot(index, target, shards=3)  # single file -> sharded
        assert target.is_dir() and is_snapshot_path(target)
        precious = tmp_path / "notes.txt"
        precious.write_text("keep me")
        with pytest.raises(StorageError, match="refusing to overwrite"):
            save_snapshot(index, precious, shards=3)
        assert precious.read_text() == "keep me"

    def test_sharded_layout(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        shard_dir = tmp_path / "g.shards"
        save_snapshot(index, shard_dir, shards=4)
        assert is_snapshot_path(shard_dir)
        manifest = json.loads((shard_dir / MANIFEST_NAME).read_text())
        assert manifest["kind"] == KIND_UNDIRECTED
        assert len(manifest["shards"]) >= 2
        starts = [entry["start"] for entry in manifest["shards"]]
        assert starts == sorted(starts)
        # Every label key lands in exactly one shard file: the shard key
        # counts sum to the single-file snapshot's key count.
        single = tmp_path / "g.single.snap"
        save_snapshot(index, single)
        expected_keys = len(SnapshotFile(str(single)).array("lab_keys"))
        total = 0
        for entry in manifest["shards"]:
            snap = SnapshotFile(str(shard_dir / entry["file"]))
            total += len(snap.array("lab_keys"))
        assert total == expected_keys


class TestRoundtrip:
    def test_every_engine_serves_the_snapshot(self, graph, snapshot):
        index, path = snapshot
        vertices = sorted(graph.vertices())[:15]
        pairs = [(s, t) for s in vertices for t in vertices]
        expected = index.distances(pairs)
        for engine in ("mmap", "sharded", "fast", "dict"):
            loaded = load_index(path, engine=engine)
            assert loaded.distances(pairs) == expected, engine
            assert loaded.distance(*pairs[5]) == expected[5], engine

    def test_facade_state_survives(self, graph, snapshot):
        index, path = snapshot
        loaded = load_index(path, engine="mmap")
        assert loaded.engine == "mmap"
        assert loaded.k == index.k
        assert loaded.stats.label_entries == index.stats.label_entries
        v = sorted(graph.vertices())[3]
        assert loaded.label(v) == index.label(v)
        with pytest.raises(Exception):
            loaded.distance(10**9, 0)  # uncovered vertex still rejected

    def test_directed_kind_guard(self, digraph, graph, tmp_path):
        dindex = DirectedISLabelIndex.build(digraph)
        dpath = tmp_path / "d.snap"
        save_snapshot(dindex, dpath)
        with pytest.raises(StorageError, match="directed"):
            load_index(dpath)
        uindex = ISLabelIndex.build(graph)
        upath = tmp_path / "u.snap"
        save_snapshot(uindex, upath)
        with pytest.raises(StorageError, match="undirected"):
            load_directed_index(upath)

    def test_dict_built_index_snapshots(self, graph, tmp_path):
        index = ISLabelIndex.build(graph, engine="dict")
        path = tmp_path / "dict.snap"
        save_snapshot(index, path)
        loaded = load_index(path, engine="mmap")
        vertices = sorted(graph.vertices())[:10]
        for s in vertices:
            for t in vertices:
                assert loaded.distance(s, t) == index.distance(s, t)

    def test_disconnected_pairs(self, tmp_path):
        g = Graph([(1, 2), (2, 3)])
        g.add_vertex(99)  # isolated
        index = ISLabelIndex.build(g)
        path = tmp_path / "disc.snap"
        save_snapshot(index, path)
        for engine in ("mmap", "sharded"):
            loaded = load_index(path, engine=engine)
            assert math.isinf(loaded.distance(1, 99))
            assert loaded.distances([(1, 99), (1, 3)]) == [math.inf, 2]


class TestServingEngines:
    def test_apsp_copy_on_write(self, graph, snapshot, tmp_path):
        """Row fills after loading must not modify the snapshot file."""
        _, path = snapshot
        before = open(path, "rb").read()
        loaded = load_index(path, engine="mmap")
        vertices = sorted(graph.vertices())
        loaded.distances([(s, t) for s in vertices[:10] for t in vertices[:10]])
        engine = loaded._fast
        if engine._apsp is not None:
            assert engine._apsp_done.any() or engine._apsp_done is not None
        assert open(path, "rb").read() == before

    def test_shards_open_lazily(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        shard_dir = tmp_path / "lazy.shards"
        save_snapshot(index, shard_dir, shards=4)
        loaded = load_index(shard_dir, engine="sharded")
        engine = loaded._fast
        engine.freeze()
        table = engine.table
        assert not any(s.opened for s in table.shards)
        smallest = sorted(graph.vertices())[0]
        loaded.distance(smallest, smallest + 1)
        assert any(s.opened for s in table.shards)
        assert not all(s.opened for s in table.shards)

    def test_build_path_spills_and_cleans_up(self, graph):
        index = ISLabelIndex.build(graph, engine="mmap")
        engine = index._fast
        assert isinstance(engine, MmapEngine)
        vertices = sorted(graph.vertices())
        d = index.distance(vertices[0], vertices[-1])
        assert d == ISLabelIndex.build(graph).distance(vertices[0], vertices[-1])
        spill = engine._snapshot_path
        assert spill is not None and os.path.exists(spill)
        engine.invalidate()  # full drop discards the temporary snapshot
        assert engine._snapshot_path is None
        assert not os.path.exists(spill)
        # The engine re-freezes (and re-spills) transparently.
        assert index.distance(vertices[0], vertices[-1]) == d

    def test_sharded_build_path(self, graph):
        index = ISLabelIndex.build(graph, engine="sharded")
        assert isinstance(index._fast, ShardedEngine)
        ref = ISLabelIndex.build(graph, engine="dict")
        vertices = sorted(graph.vertices())[:12]
        pairs = [(s, t) for s in vertices for t in vertices]
        assert index.distances(pairs) == ref.distances(pairs)

    def test_mmap_labels_are_memmap_views(self, graph, snapshot):
        _, path = snapshot
        loaded = load_index(path, engine="mmap")
        engine = loaded._fast
        engine.freeze()
        flat = engine.table.flat
        # The flat arrays are plain-ndarray views over the mapped buffer
        # (the memmap subclass overhead is shed on the hot path, but the
        # backing is still the lazily faulted file mapping).
        assert isinstance(flat.anc.base, np.memmap)
        assert not isinstance(flat.anc, np.memmap)
        v = sorted(graph.vertices())[1]
        label = engine.label(v)
        assert label[0].base is not None  # a view, not a copy

    def test_snapshot_ownership_map(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        shard_dir = tmp_path / "own.shards"
        save_snapshot(index, shard_dir, shards=4)
        snap = open_snapshot(shard_dir)
        ownership = snap.ownership()
        assert sorted(ownership) == list(range(len(snap.shard_starts)))
        assert [ownership[i]["start"] for i in sorted(ownership)] == snap.shard_starts
        assert snap.shard_starts == sorted(snap.shard_starts)
        # Single-file snapshots have one implicit shard: empty maps.
        single = tmp_path / "own.snap"
        save_snapshot(index, single)
        flat = open_snapshot(single)
        assert flat.shard_starts == [] and flat.ownership() == {}

    def test_directed_snapshot_engines(self, digraph, tmp_path):
        index = DirectedISLabelIndex.build(digraph)
        path = tmp_path / "d.snap"
        shard_dir = tmp_path / "d.shards"
        save_snapshot(index, path)
        save_snapshot(index, shard_dir, shards=3)
        vertices = sorted(digraph.vertices())[:12]
        pairs = [(s, t) for s in vertices for t in vertices]
        expected = index.distances(pairs)
        for source in (path, shard_dir):
            for engine in ("mmap", "sharded"):
                loaded = load_directed_index(source, engine=engine)
                assert loaded.distances(pairs) == expected, (source, engine)


class TestSpillCleanup:
    """Temporary spill snapshots must never outlive their engine."""

    @pytest.fixture(autouse=True)
    def _isolated_tempdir(self, tmp_path, monkeypatch):
        # Route tempfile.mkstemp/mkdtemp into the test's own directory so
        # stray repro-snap-* files are detectable (and cleaned up).
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        self.tmp_path = tmp_path

    def _strays(self):
        return sorted(p.name for p in self.tmp_path.glob("repro-snap-*"))

    def test_close_removes_spill_and_registry_entry(self, graph):
        from repro.core.snapshot import _LIVE_SPILLS

        index = ISLabelIndex.build(graph, engine="mmap")
        vertices = sorted(graph.vertices())
        d = index.distance(vertices[0], vertices[-1])
        engine = index._fast
        spill = engine._snapshot_path
        assert spill is not None and os.path.exists(spill)
        assert spill in _LIVE_SPILLS
        engine.close()
        assert not os.path.exists(spill)
        assert spill not in _LIVE_SPILLS
        assert self._strays() == []
        # close() is not fatal: the next query re-spills transparently.
        assert index.distance(vertices[0], vertices[-1]) == d
        engine.close()
        assert self._strays() == []

    def test_sharded_spill_directory_cleanup(self, graph):
        index = ISLabelIndex.build(graph, engine="sharded")
        vertices = sorted(graph.vertices())
        index.distance(vertices[0], vertices[-1])
        engine = index._fast
        spill = engine._snapshot_path
        assert os.path.isdir(spill)
        engine.close()
        assert self._strays() == []

    def test_exception_mid_spill_unlinks_temp_path(self, graph, monkeypatch):
        """A write_snapshot that dies must not leak the temp file (or dir)."""
        import repro.core.snapshot as snapshot_module
        from repro.core.snapshot import _LIVE_SPILLS

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(snapshot_module, "write_snapshot", boom)
        for engine_name in ("mmap", "sharded"):
            index = ISLabelIndex.build(graph, engine=engine_name)
            vertices = sorted(graph.vertices())
            with pytest.raises(OSError, match="disk full"):
                index.distance(vertices[0], vertices[1])
            assert self._strays() == [], engine_name
            assert not any("repro-snap" in p for p in _LIVE_SPILLS)

    def test_atexit_reaps_unclosed_engines(self, graph, tmp_path):
        """An engine abandoned at interpreter exit leaves no stray spills."""
        import subprocess
        import sys

        code = """
import os
from repro.core.index import ISLabelIndex
from repro.graph.generators import ensure_connected, erdos_renyi

g = ensure_connected(erdos_renyi(40, 90, seed=2, max_weight=4), seed=2)
for engine in ("mmap", "sharded"):
    index = ISLabelIndex.build(g, engine=engine)
    vs = sorted(g.vertices())
    index.distance(vs[0], vs[-1])
    assert index._fast._snapshot_path is not None
# neither engine is closed or invalidated: atexit must reap the spills
"""
        env = dict(os.environ, TMPDIR=str(tmp_path))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), str(
                os.path.join(os.path.dirname(__file__), "..", "..", "src")
            )) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        strays = sorted(p.name for p in tmp_path.glob("repro-snap-*"))
        assert strays == []


class TestChecksums:
    def _first_data_section(self, snap):
        """A TOC entry with actual bytes to corrupt."""
        import numpy as np

        for name, entry in snap._toc.items():
            nbytes = int(np.prod(entry["shape"])) * np.dtype(entry["dtype"]).itemsize
            if nbytes > 0:
                return name, entry, nbytes
        raise AssertionError("snapshot has no non-empty section")

    def test_checksummed_snapshot_roundtrips(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "c.snap"
        save_snapshot(index, path, checksum=True)
        snap = SnapshotFile(str(path))
        assert snap._toc and all("crc32" in e for e in snap._toc.values())
        again = load_index(str(path), engine="mmap")
        vs = sorted(graph.vertices())
        pairs = [(s, t) for s in vs[::9] for t in vs[::9]]
        assert again.distances(pairs) == index.distances(pairs)

    def test_default_snapshots_carry_no_checksums(self, snapshot):
        _, path = snapshot
        snap = SnapshotFile(path)
        assert all("crc32" not in e for e in snap._toc.values())

    def test_corrupted_section_detected_on_first_map(self, graph, tmp_path):
        """Flip one byte inside a section's payload: the lazy verify on
        first map must name the section and the file."""
        index = ISLabelIndex.build(graph)
        path = tmp_path / "corrupt.snap"
        save_snapshot(index, path, checksum=True)
        snap = SnapshotFile(str(path))
        name, entry, nbytes = self._first_data_section(snap)
        with open(path, "r+b") as fh:
            fh.seek(entry["offset"] + nbytes // 2)
            byte = fh.read(1)
            fh.seek(entry["offset"] + nbytes // 2)
            fh.write(bytes([byte[0] ^ 0xFF]))
        fresh = SnapshotFile(str(path))
        with pytest.raises(StorageError, match="checksum mismatch") as exc:
            fresh.array(name)
        assert name in str(exc.value)
        assert "corrupt.snap" in str(exc.value)

    def test_verification_runs_once_per_section(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "once.snap"
        save_snapshot(index, path, checksum=True)
        snap = SnapshotFile(str(path))
        name, entry, nbytes = self._first_data_section(snap)
        snap.array(name)
        assert name in snap._verified
        # Corruption after the first map goes unnoticed by design: the
        # check guards the load boundary, not live memory.
        with open(path, "r+b") as fh:
            fh.seek(entry["offset"])
            byte = fh.read(1)
            fh.seek(entry["offset"])
            fh.write(bytes([byte[0] ^ 0xFF]))
        snap.array(name)  # no re-verification, no error

    def test_sharded_checksums_cover_every_file(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "c.shards"
        save_snapshot(index, path, shards=3, checksum=True)
        snap_files = sorted(str(p) for p in path.glob("*.snap"))
        assert len(snap_files) >= 4  # shared + 3 shards
        for file_path in snap_files:
            snap = SnapshotFile(file_path)
            assert all("crc32" in e for e in snap._toc.values()), file_path
        again = load_index(str(path), engine="sharded")
        vs = sorted(graph.vertices())
        pairs = [(s, t) for s in vs[::9] for t in vs[::9]]
        assert again.distances(pairs) == index.distances(pairs)

    def test_corrupted_shard_detected_through_the_engine(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "bad.shards"
        save_snapshot(index, path, shards=3, checksum=True)
        shard_file = sorted(path.glob("shard-*.snap"))[0]
        snap = SnapshotFile(str(shard_file))
        name, entry, nbytes = self._first_data_section(snap)
        with open(shard_file, "r+b") as fh:
            fh.seek(entry["offset"])
            byte = fh.read(1)
            fh.seek(entry["offset"])
            fh.write(bytes([byte[0] ^ 0xFF]))
        again = load_index(str(path), engine="sharded")
        vs = sorted(graph.vertices())
        pairs = [(s, t) for s in vs for t in vs]
        with pytest.raises(StorageError, match="checksum mismatch"):
            again.distances(pairs)  # faults in the corrupt shard lazily
