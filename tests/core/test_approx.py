"""Unit tests for the landmark-based approximate mode (§3.2 remark)."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.approx import ApproximateDistanceOracle
from repro.core.index import ISLabelIndex
from repro.errors import IndexBuildError, QueryError
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.graph.graph import Graph

from tests.conftest import random_pairs


@pytest.fixture(scope="module")
def graph():
    return ensure_connected(erdos_renyi(160, 400, seed=121, max_weight=5), seed=121)


@pytest.fixture(scope="module")
def oracle(graph):
    return ApproximateDistanceOracle(ISLabelIndex.build(graph), num_landmarks=12)


class TestUpperBoundProperty:
    def test_never_underestimates(self, graph, oracle):
        for s, t in random_pairs(graph, 200, seed=1):
            estimate = oracle.distance_upper_bound(s, t)
            assert estimate >= dijkstra_distance(graph, s, t)

    def test_self_distance(self, oracle):
        assert oracle.distance_upper_bound(5, 5) == 0

    def test_disconnected_stays_inf(self):
        g = Graph([(0, 1), (5, 6)])
        oracle = ApproximateDistanceOracle(ISLabelIndex.build(g), num_landmarks=2)
        assert math.isinf(oracle.distance_upper_bound(0, 6))

    def test_unknown_vertex_raises(self, oracle):
        with pytest.raises(QueryError):
            oracle.distance_upper_bound(0, 10**9)


class TestQuality:
    def test_mostly_accurate_with_hub_landmarks(self, graph, oracle):
        errors = [
            oracle.relative_error(s, t) for s, t in random_pairs(graph, 150, seed=2)
        ]
        assert sum(1 for e in errors if e == 0.0) >= 0.5 * len(errors)
        assert sum(errors) / len(errors) < 0.35

    def test_more_landmarks_never_hurt(self, graph):
        index = ISLabelIndex.build(graph)
        small = ApproximateDistanceOracle(index, num_landmarks=2)
        large = ApproximateDistanceOracle(index, num_landmarks=24)
        for s, t in random_pairs(graph, 80, seed=3):
            assert large.distance_upper_bound(s, t) <= small.distance_upper_bound(
                s, t
            )

    def test_landmark_pair_is_exact_through_landmark(self, graph, oracle):
        # Queries whose shortest path passes a landmark are exact; at a
        # minimum, landmark-to-landmark gateway distances are covered.
        l = oracle.landmarks[0]
        for t in oracle.landmarks[1:4]:
            estimate = oracle.distance_upper_bound(l, t)
            # Exact when l and t connect within G_k.
            if not math.isinf(estimate):
                assert estimate >= dijkstra_distance(graph, l, t)


class TestConfiguration:
    def test_explicit_landmarks(self, graph):
        index = ISLabelIndex.build(graph)
        gk = sorted(index.gk.vertices())[:3]
        oracle = ApproximateDistanceOracle(index, landmarks=gk)
        assert oracle.landmarks == gk

    def test_landmark_outside_gk_rejected(self, graph):
        index = ISLabelIndex.build(graph)
        below = next(
            v for v in graph.vertices() if not index.hierarchy.in_gk(v)
        )
        with pytest.raises(IndexBuildError):
            ApproximateDistanceOracle(index, landmarks=[below])

    def test_zero_landmarks_rejected(self, graph):
        with pytest.raises(IndexBuildError):
            ApproximateDistanceOracle(ISLabelIndex.build(graph), num_landmarks=0)

    def test_preprocessing_entries_counted(self, oracle):
        assert oracle.preprocessing_entries > 0


class TestBatchAndReachability:
    def test_index_batch_distances(self, graph):
        index = ISLabelIndex.build(graph)
        pairs = random_pairs(graph, 30, seed=4)
        batch = index.distances(pairs)
        assert batch == [index.distance(s, t) for s, t in pairs]

    def test_index_reachable(self):
        g = Graph([(0, 1), (5, 6)])
        index = ISLabelIndex.build(g)
        assert index.reachable(0, 1)
        assert not index.reachable(0, 5)
