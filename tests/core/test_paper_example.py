"""The paper's running example, pinned exactly (Figures 1-3, Examples 1-6).

These tests replay §4/§5's 9-vertex walkthrough with the paper's own level
assignment and assert the published artefacts verbatim — the one exception
being the documented label(f) erratum (see repro/workloads/paper_example.py
and DESIGN.md §4).
"""

import pytest

from repro.core.hierarchy import build_hierarchy_with_levels
from repro.core.index import ISLabelIndex
from repro.core.labeling import definition3_label, top_down_labels
from repro.core.paths import PathReconstructor, is_valid_path, path_length
from repro.workloads.paper_example import (
    EXAMPLE5_K2_LABELS,
    EXAMPLE_QUERIES,
    FIGURE2_LABELS,
    FIGURE2_PUBLISHED_LABEL_F,
    PAPER_LEVELS,
    VERTEX_IDS,
    VERTEX_NAMES,
    paper_example_graph,
)


@pytest.fixture(scope="module")
def graph():
    return paper_example_graph()


@pytest.fixture(scope="module")
def hierarchy(graph):
    levels = [[VERTEX_IDS[c] for c in level] for level in PAPER_LEVELS]
    return build_hierarchy_with_levels(graph, levels, with_hints=True)


@pytest.fixture(scope="module")
def labels(hierarchy):
    return top_down_labels(hierarchy)[0]


def _named(label):
    return {VERTEX_NAMES[w]: d for w, d in label.items()}


class TestFigure1:
    def test_graph_shape(self, graph):
        assert graph.num_vertices == 9
        assert graph.num_edges == 10
        assert graph.weight(VERTEX_IDS["e"], VERTEX_IDS["f"]) == 3

    def test_five_levels_then_empty(self, hierarchy):
        assert hierarchy.k == 6
        assert hierarchy.is_full

    def test_level_numbers(self, hierarchy):
        expected = {"c": 1, "f": 1, "i": 1, "b": 2, "d": 2, "h": 2, "e": 3, "a": 4, "g": 5}
        got = {VERTEX_NAMES[v]: lvl for v, lvl in hierarchy.level_of.items()}
        assert got == expected

    def test_augmenting_edges_match_example1(self, hierarchy):
        named = {
            (VERTEX_NAMES[a], VERTEX_NAMES[b]): VERTEX_NAMES[m]
            for (a, b), m in hierarchy.hints.items()
        }
        # (e,h,4) via f in G2; (e,g,2) via d in G3; (a,g,3) via e in G4.
        assert named == {("e", "h"): "f", ("e", "g"): "d", ("a", "g"): "e"}

    def test_g2_contains_augmenting_eh_weight4(self, graph):
        """Example 1: dist_G(e,h) = 3 but ω_G2(e,h) = 4 is kept anyway."""
        from repro.core.reduce import reduce_graph

        l1 = [VERTEX_IDS[c] for c in PAPER_LEVELS[0]]
        adj = {v: sorted(graph.neighbors(v).items()) for v in l1}
        g2 = reduce_graph(graph, l1, adj)
        assert g2.weight(VERTEX_IDS["e"], VERTEX_IDS["h"]) == 4


class TestFigure2:
    def test_all_labels_verbatim(self, labels):
        for name, expected in FIGURE2_LABELS.items():
            assert _named(labels[VERTEX_IDS[name]]) == expected, name

    def test_example2_ancestors_of_f(self, labels):
        assert set(_named(labels[VERTEX_IDS["f"]])) == {"f", "e", "h", "a", "g"}
        # d is NOT an ancestor of f (Example 2's observation).
        assert "d" not in _named(labels[VERTEX_IDS["f"]])

    def test_dhe_entry_exceeds_true_distance(self, labels):
        """d(h,e) = 4 in label(h) while dist_G(h,e) = 3 (Example 3)."""
        assert _named(labels[VERTEX_IDS["h"]])["e"] == 4

    def test_label_f_erratum(self, hierarchy, labels):
        """Definition 3 yields (g,2); the paper prints (g,5)."""
        def3 = definition3_label(hierarchy, VERTEX_IDS["f"])
        assert _named(def3)["g"] == 2
        assert FIGURE2_PUBLISHED_LABEL_F["g"] == 5
        assert _named(labels[VERTEX_IDS["f"]])["g"] == 2

    def test_definition3_matches_topdown_everywhere(self, hierarchy, labels):
        for name in FIGURE2_LABELS:
            v = VERTEX_IDS[name]
            assert definition3_label(hierarchy, v) == labels[v]


class TestExample4Queries:
    def test_published_answers(self, graph):
        index = ISLabelIndex.build(graph, full=True)
        for s, t, expected in EXAMPLE_QUERIES:
            assert index.distance(VERTEX_IDS[s], VERTEX_IDS[t]) == expected

    def test_symmetry(self, graph):
        index = ISLabelIndex.build(graph, full=True)
        for s, t, expected in EXAMPLE_QUERIES:
            assert index.distance(VERTEX_IDS[t], VERTEX_IDS[s]) == expected


class TestExample5And6:
    def test_k2_labels(self, graph):
        levels = [[VERTEX_IDS[c] for c in PAPER_LEVELS[0]]]
        h = build_hierarchy_with_levels(graph, levels)
        labels, _ = top_down_labels(h)
        for name, expected in EXAMPLE5_K2_LABELS.items():
            assert _named(labels[VERTEX_IDS[name]]) == expected

    def test_example6_bidijkstra_answer(self, graph):
        levels = [[VERTEX_IDS[c] for c in PAPER_LEVELS[0]]]
        h = build_hierarchy_with_levels(graph, levels)
        from repro.core.index import ISLabelIndex as IX

        index = ISLabelIndex.build(graph, k=2)
        report = index.query(VERTEX_IDS["c"], VERTEX_IDS["i"])
        assert report.distance == 3


class TestPathsOnExample:
    def test_paths_match_distances(self, graph):
        index = ISLabelIndex.build(graph, full=True, with_paths=True)
        reconstructor = PathReconstructor(index)
        names = sorted(VERTEX_IDS)
        for s in names:
            for t in names:
                dist, path = reconstructor.shortest_path(
                    VERTEX_IDS[s], VERTEX_IDS[t]
                )
                assert path is not None
                assert is_valid_path(graph, path)
                assert path_length(graph, path) == dist
