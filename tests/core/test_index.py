"""Unit tests for the ISLabelIndex facade."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.index import ISLabelIndex
from repro.errors import IndexBuildError, QueryError
from repro.extmem.iomodel import CostModel
from repro.graph.generators import ensure_connected, erdos_renyi, path_graph
from repro.graph.graph import Graph

from tests.conftest import random_pairs


@pytest.fixture(scope="module")
def graph():
    return ensure_connected(erdos_renyi(150, 380, seed=41, max_weight=6), seed=41)


@pytest.fixture(scope="module")
def index(graph):
    return ISLabelIndex.build(graph)


class TestCorrectness:
    def test_matches_dijkstra(self, graph, index):
        for s, t in random_pairs(graph, 120, seed=1):
            assert index.distance(s, t) == dijkstra_distance(graph, s, t)

    def test_self_distance_zero(self, index):
        assert index.distance(3, 3) == 0

    def test_disconnected_pair_is_inf(self):
        g = Graph([(0, 1), (5, 6)])
        idx = ISLabelIndex.build(g)
        assert math.isinf(idx.distance(0, 6))
        assert idx.distance(0, 1) == 1
        assert idx.distance(5, 6) == 1

    def test_unknown_vertex_raises(self, index):
        with pytest.raises(QueryError):
            index.distance(0, 10**9)
        with pytest.raises(QueryError):
            index.distance(10**9, 0)

    @pytest.mark.parametrize("mode", ["memory", "disk"])
    def test_storage_modes_agree(self, graph, mode):
        idx = ISLabelIndex.build(graph, storage=mode)
        for s, t in random_pairs(graph, 40, seed=2):
            assert idx.distance(s, t) == dijkstra_distance(graph, s, t)

    def test_bad_storage_mode_rejected(self, graph):
        with pytest.raises(IndexBuildError):
            ISLabelIndex.build(graph, storage="cloud")


class TestQueryReport:
    def test_type_classification(self, graph, index):
        gk = sorted(index.gk.vertices())
        below = sorted(
            v for v in graph.vertices() if not index.hierarchy.in_gk(v)
        )
        assert index.query(gk[0], gk[1]).query_type == 1
        assert index.query(gk[0], below[0]).query_type == 2
        assert index.query(below[0], below[1]).query_type == 3

    def test_disk_mode_charges_label_ios(self, graph):
        idx = ISLabelIndex.build(graph, storage="disk")
        below = sorted(
            v for v in graph.vertices() if not idx.hierarchy.in_gk(v)
        )
        report = idx.query(below[0], below[1])
        assert report.label_ios >= 2
        assert report.time_label_s == pytest.approx(
            report.label_ios * idx.cost_model.io_latency_s
        )

    def test_memory_mode_no_label_ios(self, graph):
        idx = ISLabelIndex.build(graph, storage="memory")
        below = sorted(
            v for v in graph.vertices() if not idx.hierarchy.in_gk(v)
        )
        report = idx.query(below[0], below[1])
        assert report.label_ios == 0
        assert report.time_label_s == 0.0

    def test_gk_endpoints_read_no_labels(self, graph):
        idx = ISLabelIndex.build(graph, storage="disk")
        gk = sorted(idx.gk.vertices())
        report = idx.query(gk[0], gk[1])
        assert report.label_ios == 0

    def test_total_time_is_sum(self, graph, index):
        report = index.query(*random_pairs(graph, 1, seed=3)[0])
        assert report.total_time_s == pytest.approx(
            report.time_label_s + report.time_search_s
        )

    def test_custom_cost_model_latency(self, graph):
        slow = CostModel(io_latency_s=1.0)
        idx = ISLabelIndex.build(graph, storage="disk", cost_model=slow)
        below = sorted(
            v for v in graph.vertices() if not idx.hierarchy.in_gk(v)
        )
        report = idx.query(below[0], below[1])
        assert report.time_label_s >= 2.0


class TestStats:
    def test_stats_shape(self, graph, index):
        st = index.stats
        assert st.num_vertices == graph.num_vertices
        assert st.num_edges == graph.num_edges
        assert st.gk_vertices == index.gk.num_vertices
        assert st.gk_edges == index.gk.num_edges
        assert st.k == index.k
        assert st.label_bytes == 16 * st.label_entries
        assert st.build_seconds >= st.labeling_seconds

    def test_avg_label_entries(self, index):
        st = index.stats
        assert st.avg_label_entries == pytest.approx(
            st.label_entries / st.num_vertices
        )

    def test_path_mode_uses_wider_entries(self, graph):
        idx = ISLabelIndex.build(graph, with_paths=True)
        assert idx.stats.label_bytes == 24 * idx.stats.label_entries

    def test_label_accessor(self, graph, index):
        below = next(
            v for v in graph.vertices() if not index.hierarchy.in_gk(v)
        )
        label = index.label(below)
        assert (below, 0) in label
        assert label == sorted(label)

    def test_label_of_gk_vertex_is_singleton(self, index):
        v = next(iter(index.gk.vertices()))
        assert index.label(v) == [(v, 0)]

    def test_label_of_unknown_vertex_raises(self, index):
        with pytest.raises(QueryError):
            index.label(10**9)


class TestVariants:
    def test_full_mode_never_searches(self, graph):
        idx = ISLabelIndex.build(graph, full=True)
        for s, t in random_pairs(graph, 30, seed=4):
            report = idx.query(s, t)
            assert not report.used_bidijkstra
            assert report.distance == dijkstra_distance(graph, s, t)

    def test_explicit_k(self, graph):
        idx = ISLabelIndex.build(graph, k=2)
        assert idx.k == 2
        for s, t in random_pairs(graph, 30, seed=5):
            assert idx.distance(s, t) == dijkstra_distance(graph, s, t)

    def test_random_is_strategy(self, graph):
        idx = ISLabelIndex.build(graph, is_strategy="random", seed=11)
        for s, t in random_pairs(graph, 30, seed=6):
            assert idx.distance(s, t) == dijkstra_distance(graph, s, t)

    def test_path_graph_all_pairs(self):
        g = path_graph(12, weight=2)
        idx = ISLabelIndex.build(g)
        for s in range(12):
            for t in range(12):
                assert idx.distance(s, t) == 2 * abs(s - t)
