"""Unit tests for the distance-preserving reduction (Algorithm 3)."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra
from repro.core.independent_set import greedy_independent_set
from repro.core.reduce import external_reduce, reduce_graph, reduce_graph_inplace
from repro.extmem.blockdev import BlockDevice
from repro.extmem.extgraph import ExternalGraph
from repro.extmem.iomodel import CostModel
from repro.graph.generators import erdos_renyi, path_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.validation import validate_graph


def _reduced(graph):
    selected, adj_of = greedy_independent_set(graph)
    return selected, reduce_graph(graph, selected, adj_of)


class TestDistancePreservation:
    def test_lemma2_on_random_graphs(self, random_graph):
        """Lemma 2: G_{i+1} preserves all pairwise distances of survivors."""
        selected, g2 = _reduced(random_graph)
        survivors = sorted(g2.vertices())
        for s in survivors[:12]:
            before = dijkstra(random_graph, s)
            after = dijkstra(g2, s)
            for t in survivors:
                assert after.get(t, math.inf) == before.get(t, math.inf)

    def test_path_contraction(self):
        g = path_graph(5)  # 0-1-2-3-4
        g2 = reduce_graph(g, [1, 3], {1: [(0, 1), (2, 1)], 3: [(2, 1), (4, 1)]})
        assert sorted(g2.vertices()) == [0, 2, 4]
        assert g2.weight(0, 2) == 2
        assert g2.weight(2, 4) == 2

    def test_augmenting_edge_keeps_minimum(self):
        # Removing v creates (a, b) of weight 4, but (a, b) exists at 1.
        g = Graph([(0, 1, 2), (0, 2, 2), (1, 2, 1)])
        g2 = reduce_graph(g, [0], {0: [(1, 2), (2, 2)]})
        assert g2.weight(1, 2) == 1

    def test_augmenting_edge_improves_existing(self):
        g = Graph([(0, 1, 1), (0, 2, 1), (1, 2, 9)])
        g2 = reduce_graph(g, [0], {0: [(1, 1), (2, 1)]})
        assert g2.weight(1, 2) == 2

    def test_star_removal_creates_clique(self):
        g = star_graph(4)
        _, g2 = _reduced(Graph([(0, v) for v in (1, 2, 3, 4)]))
        # greedy removes the 4 leaves (degree 1), leaving hub alone
        assert g2.num_vertices == 1

    def test_hub_removal_self_join(self):
        g = star_graph(4)
        g2 = reduce_graph(g, [0], {0: sorted(g.neighbors(0).items())})
        # The 4 leaves become a clique of weight-2 edges.
        assert g2.num_edges == 6
        assert all(w == 2 for _, _, w in g2.edges())


class TestMechanics:
    def test_inplace_mutates(self, small_weighted):
        selected, adj_of = greedy_independent_set(small_weighted)
        result = reduce_graph_inplace(small_weighted, selected, adj_of)
        assert result is small_weighted
        assert all(not small_weighted.has_vertex(v) for v in selected)

    def test_non_mutating_copy(self, small_weighted):
        before = small_weighted.copy()
        selected, adj_of = greedy_independent_set(small_weighted)
        reduce_graph(small_weighted, selected, adj_of)
        assert small_weighted == before

    def test_result_is_valid_graph(self, random_graph):
        _, g2 = _reduced(random_graph)
        validate_graph(g2)

    def test_hints_record_intermediates(self):
        g = path_graph(3)  # 0-1-2
        hints = {}
        reduce_graph(g, [1], {1: [(0, 1), (2, 1)]}, hints)
        assert hints == {(0, 2): 1}

    def test_hints_follow_min_updates(self):
        # First augmenting edge (1,2,4) via 0; improved via 3 to weight 2.
        g = Graph([(0, 1, 2), (0, 2, 2), (3, 1, 1), (3, 2, 1)])
        hints = {}
        reduce_graph(
            g,
            [0, 3],
            {0: [(1, 2), (2, 2)], 3: [(1, 1), (2, 1)]},
            hints,
        )
        assert hints[(1, 2)] == 3


class TestExternal:
    def test_matches_in_memory(self):
        g = erdos_renyi(70, 180, seed=21, max_weight=4)
        selected, adj_of = greedy_independent_set(g)
        expected = reduce_graph(g, selected, adj_of)

        device = BlockDevice(CostModel(block_size=256, memory=4096))
        eg = ExternalGraph.from_graph(device, g)
        adj_li = device.create()
        from repro.extmem.extgraph import pack_row

        for v in sorted(adj_of):
            adj_li.append(pack_row(v, adj_of[v]))
        adj_li.close()
        adj_li_graph = ExternalGraph(device, adj_li, len(adj_of), 0)

        reduced = external_reduce(device, eg, set(selected), adj_li_graph)
        assert reduced.to_graph() == expected
        assert reduced.num_vertices == expected.num_vertices
        assert reduced.num_edges == expected.num_edges

    def test_tiny_blocks_force_multirun_sort(self):
        g = erdos_renyi(50, 130, seed=23, max_weight=3)
        selected, adj_of = greedy_independent_set(g)
        expected = reduce_graph(g, selected, adj_of)

        device = BlockDevice(CostModel(block_size=64, memory=256))
        eg = ExternalGraph.from_graph(device, g)
        from repro.extmem.extgraph import pack_row

        adj_li = device.create()
        for v in sorted(adj_of):
            adj_li.append(pack_row(v, adj_of[v]))
        adj_li.close()
        adj_li_graph = ExternalGraph(device, adj_li, len(adj_of), 0)
        reduced = external_reduce(device, eg, set(selected), adj_li_graph)
        assert reduced.to_graph() == expected
