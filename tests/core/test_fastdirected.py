"""Unit tests for the directed array-native fast engine internals."""

import math
import random

import pytest

from repro.baselines.dijkstra import dijkstra_digraph, dijkstra_digraph_distance
from repro.core.directed import DirectedISLabelIndex
from repro.core.fastdirected import DirectedFastEngine
from repro.core.fastlabels import as_array_label, batch_eq1, eq1_merge
from repro.graph.csr import CSRDiGraph
from repro.graph.digraph import DiGraph


def _random_digraph(n, arcs, seed, max_weight=9):
    rng = random.Random(seed)
    dg = DiGraph()
    for v in range(n):
        dg.add_vertex(v)
    placed = 0
    while placed < arcs:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not dg.has_edge(u, v):
            dg.add_edge(u, v, rng.randint(1, max_weight))
            placed += 1
    return dg


@pytest.fixture(scope="module")
def digraph():
    return _random_digraph(80, 320, seed=29)


class TestCSRDiGraph:
    def test_forward_matches_successors(self, digraph):
        csr = CSRDiGraph(digraph)
        for v in digraph.vertices():
            dense = csr.dense(v)
            got = sorted(
                (csr.original(u), w) for u, w in csr.successors_dense(dense)
            )
            assert got == sorted(digraph.successors(v).items()), v

    def test_transpose_matches_predecessors(self, digraph):
        csr = CSRDiGraph(digraph)
        for v in digraph.vertices():
            dense = csr.dense(v)
            got = sorted(
                (csr.original(u), w) for u, w in csr.predecessors_dense(dense)
            )
            assert got == sorted(digraph.predecessors(v).items()), v

    def test_empty_digraph(self):
        dg = DiGraph()
        dg.add_vertex(3)
        dg.add_vertex(7)
        csr = CSRDiGraph(dg)
        assert csr.num_vertices == 2
        assert csr.num_arcs == 0
        assert list(csr.successors_dense(0)) == []
        assert list(csr.predecessors_dense(1)) == []

    def test_arc_count_and_bytes(self, digraph):
        csr = CSRDiGraph(digraph)
        assert csr.num_arcs == digraph.num_edges
        assert csr.nbytes() > 0


class TestDirectedFastEngine:
    def test_lazy_freeze(self, digraph):
        index = DirectedISLabelIndex.build(digraph)
        engine = index._fast
        assert isinstance(engine, DirectedFastEngine)
        assert not engine.frozen
        index.distance(0, 1)
        assert engine.frozen

    def test_out_in_seeds_match_reference_extraction(self, digraph):
        index = DirectedISLabelIndex.build(digraph)
        engine = index._fast
        engine.freeze()
        csr = engine.csr
        gk = index.gk
        for v in digraph.vertices():
            for seeds_of, label_of in (
                (engine.seeds_out, index.out_label),
                (engine.seeds_in, index.in_label),
            ):
                ids, dists = seeds_of(v)
                got = sorted(zip((csr.original(i) for i in ids), dists))
                expected = sorted(
                    (w, d) for w, d in label_of(v) if gk.has_vertex(w)
                )
                assert got == expected, v

    def test_numpy_seeds_mirror_lists(self, digraph):
        engine = DirectedISLabelIndex.build(digraph)._fast
        engine.freeze()
        for v in digraph.vertices():
            for list_of, np_of in (
                (engine.seeds_out, engine.seeds_out_np),
                (engine.seeds_in, engine.seeds_in_np),
            ):
                ids, dists = list_of(v)
                ids_np, dists_np = np_of(v)
                assert ids_np.tolist() == ids
                assert dists_np.tolist() == dists

    def test_apsp_rows_match_directed_dijkstra_over_gk(self, digraph):
        index = DirectedISLabelIndex.build(digraph)
        engine = index._fast
        engine.freeze()
        if not engine.has_apsp:
            pytest.skip("G_k exceeded the table ceiling")
        csr = engine.csr
        n = csr.num_vertices
        for a in range(min(n, 8)):
            engine._fill_apsp_row(a)
            truth = dijkstra_digraph(index.gk, csr.original(a))
            for b in range(n):
                expected = truth.get(csr.original(b), math.inf)
                assert engine._apsp[a, b] == expected, (a, b)

    def test_batch_matches_single(self, digraph):
        index = DirectedISLabelIndex.build(digraph)
        rng = random.Random(4)
        pairs = [(rng.randrange(80), rng.randrange(80)) for _ in range(150)]
        batch = index.distances(pairs)
        for (s, t), d in zip(pairs, batch):
            assert d == index.distance(s, t), (s, t)
            assert d == dijkstra_digraph_distance(digraph, s, t), (s, t)

    def test_invalidate_refreezes_identically(self, digraph):
        index = DirectedISLabelIndex.build(digraph)
        pairs = [(s, (s * 7 + 3) % 80) for s in range(80)]
        before = index.distances(pairs)
        index._fast.invalidate()
        assert not index._fast.frozen
        assert index.distances(pairs) == before
        assert index._fast.frozen

    def test_nbytes_counts_both_directions(self, digraph):
        engine = DirectedISLabelIndex.build(digraph)._fast
        assert engine.nbytes() >= engine.csr.nbytes()


class TestBatchEq1:
    def test_matches_pairwise_merge(self):
        rng = random.Random(11)
        labels_s, labels_t = [], []
        for _ in range(200):
            ns, nt = rng.randrange(0, 8), rng.randrange(0, 8)
            anc_s = sorted(rng.sample(range(40), ns))
            anc_t = sorted(rng.sample(range(40), nt))
            labels_s.append(
                as_array_label([(a, rng.randrange(1, 20)) for a in anc_s])
            )
            labels_t.append(
                as_array_label([(a, rng.randrange(1, 20)) for a in anc_t])
            )
        got = batch_eq1(labels_s, labels_t)
        for i, (ls, lt) in enumerate(zip(labels_s, labels_t)):
            assert got[i] == eq1_merge(ls, lt)[0], i

    def test_empty_batch(self):
        assert len(batch_eq1([], [])) == 0

    def test_all_disjoint_is_inf(self):
        labels_s = [as_array_label([(1, 2)]), as_array_label([])]
        labels_t = [as_array_label([(2, 3)]), as_array_label([(5, 1)])]
        got = batch_eq1(labels_s, labels_t)
        assert math.isinf(got[0]) and math.isinf(got[1])

    def test_huge_id_span_falls_back_to_pairwise(self):
        # An ancestor span too wide to key per query without overflowing
        # int64 must take the per-pair merge fallback, same answers.
        big = 2**61
        labels_s = [as_array_label([(0, 4), (big, 9)]) for _ in range(8)]
        labels_t = [as_array_label([(big, 3)]) for _ in range(8)]
        got = batch_eq1(labels_s, labels_t)
        assert got.tolist() == [12.0] * 8
