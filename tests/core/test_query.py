"""Unit tests for the label-based bidirectional Dijkstra (Algorithm 1)."""

import math

import pytest

from repro.core.query import label_bidijkstra
from repro.graph.generators import path_graph
from repro.graph.graph import Graph


def _adj(graph):
    return lambda v: graph.neighbors(v).items()


class TestBasicSearch:
    def test_simple_meeting(self):
        g = path_graph(5)  # 0-1-2-3-4
        result = label_bidijkstra(_adj(g), _adj(g), [(0, 0)], [(4, 0)])
        assert result.distance == 4
        assert result.meet_vertex is not None

    def test_seeded_offsets(self):
        g = path_graph(3)
        # Seeds carry label distances: s is 5 away from vertex 0,
        # t is 7 away from vertex 2.
        result = label_bidijkstra(_adj(g), _adj(g), [(0, 5)], [(2, 7)])
        assert result.distance == 5 + 2 + 7

    def test_multiple_seeds_take_best(self):
        g = path_graph(10)
        result = label_bidijkstra(
            _adj(g), _adj(g), [(0, 100), (5, 1)], [(9, 0)]
        )
        assert result.distance == 1 + 4

    def test_disconnected_is_inf(self):
        g = Graph([(0, 1), (5, 6)])
        result = label_bidijkstra(_adj(g), _adj(g), [(0, 0)], [(6, 0)])
        assert math.isinf(result.distance)

    def test_initial_mu_can_win(self):
        g = path_graph(5)
        result = label_bidijkstra(
            _adj(g), _adj(g), [(0, 0)], [(4, 0)], initial_mu=2
        )
        # The label bound (2) beats any path through the graph (4).
        assert result.distance == 2
        assert result.meet_vertex is None

    def test_same_seed_both_sides(self):
        g = path_graph(3)
        result = label_bidijkstra(_adj(g), _adj(g), [(1, 3)], [(1, 4)])
        assert result.distance == 7


class TestPruning:
    def test_mu_prunes_settled_work(self):
        g = path_graph(200)
        unpruned = label_bidijkstra(_adj(g), _adj(g), [(0, 0)], [(199, 0)])
        pruned = label_bidijkstra(
            _adj(g), _adj(g), [(0, 0)], [(199, 0)], initial_mu=5
        )
        assert pruned.stats.settled_total < unpruned.stats.settled_total
        assert pruned.distance == 5

    def test_stats_are_populated(self):
        g = path_graph(20)
        result = label_bidijkstra(_adj(g), _adj(g), [(0, 0)], [(19, 0)])
        s = result.stats
        assert s.settled_forward > 0 and s.settled_reverse > 0
        assert s.relaxed_edges >= s.settled_total - 2
        assert s.heap_pushes > 0


class TestSeedMeetingRegression:
    def test_meeting_at_reverse_seed(self):
        """Regression for the stop-condition gap (DESIGN.md §4).

        The meeting vertex is a reverse label seed the forward search
        reaches exactly when ``min_f + min_r`` crosses the stale µ; the
        published pseudocode returns 9 here, the correct answer is 8.
        """
        g = Graph(
            [
                (0, 1, 1),
                (1, 2, 2),
                (2, 3, 1),  # forward chain 0-1-2-3, reaching seed 3 at 4
                (0, 9, 3),
                (9, 8, 4),  # decoy meeting at 9/8 with larger total
            ]
        )
        result = label_bidijkstra(
            _adj(g),
            _adj(g),
            [(0, 0)],
            [(3, 4), (8, 2)],
        )
        assert result.distance == 8

    def test_parents_walk_back_to_seeds(self):
        g = path_graph(6)
        result = label_bidijkstra(
            _adj(g), _adj(g), [(0, 0)], [(5, 0)], keep_parents=True
        )
        meet = result.meet_vertex
        cursor = meet
        while result.parents_forward[cursor] is not None:
            cursor = result.parents_forward[cursor]
        assert cursor == 0
        cursor = meet
        while result.parents_reverse[cursor] is not None:
            cursor = result.parents_reverse[cursor]
        assert cursor == 5


class TestDirectedAdjacency:
    def test_asymmetric_expansion(self):
        forward = {0: [(1, 1)], 1: [(2, 1)], 2: []}
        reverse = {2: [(1, 1)], 1: [(0, 1)], 0: []}
        result = label_bidijkstra(
            lambda v: forward[v], lambda v: reverse[v], [(0, 0)], [(2, 0)]
        )
        assert result.distance == 2
