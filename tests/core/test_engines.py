"""The engine protocol and registry (repro.core.engines)."""

import pytest

from repro.core.directed import DirectedISLabelIndex
from repro.core.engines import (
    DIRECTED,
    UNDIRECTED,
    QueryEngine,
    available_engines,
    register_engine,
    resolve_engine,
)
from repro.core.fastdirected import DirectedFastEngine
from repro.core.fastlabels import FastEngine
from repro.core.index import ISLabelIndex
from repro.errors import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph


class TestRegistry:
    def test_builtin_engines_registered(self):
        bases = ("dict", "fast", "mmap", "remote", "sharded")
        # Every base with a real engine object also gets a cached:* wrap;
        # "dict" is the reference path with nothing to wrap.
        expected = tuple(
            sorted(
                bases + tuple(f"cached:{b}" for b in bases if b != "dict")
            )
        )
        assert available_engines(UNDIRECTED) == expected
        assert available_engines(DIRECTED) == expected

    def test_capability_flags(self):
        from repro.core.engines import (
            CAP_FAULT_TOLERANT,
            CAP_LOCAL,
            CAP_REMOTE,
            CAP_SHARDED,
            CAP_SNAPSHOT,
            engine_capabilities,
            engines_with_capability,
        )

        for kind in (UNDIRECTED, DIRECTED):
            assert CAP_LOCAL in engine_capabilities(kind, "fast")
            assert CAP_LOCAL in engine_capabilities(kind, "dict")
            assert engine_capabilities(kind, "mmap") >= {CAP_LOCAL, CAP_SNAPSHOT}
            assert engine_capabilities(kind, "sharded") >= {
                CAP_LOCAL,
                CAP_SNAPSHOT,
                CAP_SHARDED,
            }
            assert engine_capabilities(kind, "remote") == {
                CAP_REMOTE,
                CAP_SHARDED,
                CAP_FAULT_TOLERANT,
            }
            assert engines_with_capability(kind, CAP_SNAPSHOT) == (
                "cached:mmap",
                "cached:sharded",
                "mmap",
                "sharded",
            )
            assert engines_with_capability(kind, CAP_REMOTE) == (
                "cached:remote",
                "remote",
            )
            assert engines_with_capability(kind, CAP_FAULT_TOLERANT) == (
                "cached:remote",
                "remote",
            )

    def test_cached_capabilities_extend_base(self):
        from repro.core.engines import CAP_CACHED, CAP_LOCAL, engine_capabilities

        for kind in (UNDIRECTED, DIRECTED):
            assert engine_capabilities(kind, "cached:fast") == (
                engine_capabilities(kind, "fast") | {CAP_CACHED}
            )
            assert CAP_LOCAL in engine_capabilities(kind, "cached:mmap")

    def test_cached_dict_rejected(self):
        with pytest.raises(IndexBuildError, match="not cacheable"):
            resolve_engine(UNDIRECTED, "cached:dict")
        with pytest.raises(IndexBuildError, match="unknown"):
            resolve_engine(DIRECTED, "cached:vroom")

    def test_dict_resolves_to_reference_path(self):
        assert resolve_engine(UNDIRECTED, "dict") is None
        assert resolve_engine(DIRECTED, "dict") is None

    def test_fast_resolves_to_engine_classes(self):
        assert resolve_engine(UNDIRECTED, "fast") is FastEngine
        assert resolve_engine(DIRECTED, "fast") is DirectedFastEngine

    def test_unknown_engine_raises(self):
        with pytest.raises(IndexBuildError, match="unknown undirected engine"):
            resolve_engine(UNDIRECTED, "vroom")
        with pytest.raises(IndexBuildError, match="unknown directed engine"):
            resolve_engine(DIRECTED, "vroom")

    def test_unknown_kind_raises(self):
        with pytest.raises(IndexBuildError):
            resolve_engine("sideways", "fast")
        with pytest.raises(IndexBuildError):
            register_engine("sideways", "fast", None)
        with pytest.raises(IndexBuildError):
            available_engines("sideways")

    def test_custom_engine_round_trip(self):
        register_engine(UNDIRECTED, "custom-test", FastEngine)
        try:
            assert "custom-test" in available_engines(UNDIRECTED)
            index = ISLabelIndex.build(
                Graph([(1, 2), (2, 3, 2)]), engine="custom-test"
            )
            assert index.engine == "fast"  # engine reports its own name
            assert index.distance(1, 3) == 3
        finally:
            # Restore the registry for the rest of the suite.
            import repro.core.engines as engines_module

            del engines_module._REGISTRY[UNDIRECTED]["custom-test"]


class TestProtocolConformance:
    def test_fast_engines_satisfy_protocol(self):
        undirected = ISLabelIndex.build(Graph([(1, 2), (2, 3)]))._fast
        directed = DirectedISLabelIndex.build(DiGraph([(1, 2), (2, 3)]))._fast
        for engine in (undirected, directed):
            assert isinstance(engine, QueryEngine)
            assert engine.name == "fast"

    def test_undirected_invalidate_refreezes_identically(self):
        g = Graph([(1, 2, 3), (2, 3, 1), (3, 4, 2), (4, 1, 9)])
        index = ISLabelIndex.build(g)
        pairs = [(s, t) for s in (1, 2, 3, 4) for t in (1, 2, 3, 4)]
        before = index.distances(pairs)
        index._fast.invalidate()
        assert not index._fast.frozen
        assert index.distances(pairs) == before
        assert index._fast.frozen

    def test_engine_distance_matches_index_query(self):
        g = Graph([(1, 2, 3), (2, 3, 1), (3, 4, 2)])
        index = ISLabelIndex.build(g)
        engine = index._fast
        for s in (1, 2, 3, 4):
            for t in (1, 2, 3, 4):
                assert engine.distance(s, t) == index.query(s, t).distance


class TestBuildThroughRegistry:
    def test_unknown_engine_rejected_by_builders(self):
        with pytest.raises(IndexBuildError):
            ISLabelIndex.build(Graph([(1, 2)]), engine="vroom")
        with pytest.raises(IndexBuildError):
            DirectedISLabelIndex.build(DiGraph([(1, 2)]), engine="vroom")

    def test_directed_default_is_fast(self):
        index = DirectedISLabelIndex.build(DiGraph([(1, 2), (2, 3)]))
        assert index.engine == "fast"
        assert index.search_mode in ("apsp", "csr")

    def test_directed_dict_engine_has_no_backend(self):
        index = DirectedISLabelIndex.build(
            DiGraph([(1, 2), (2, 3)]), engine="dict"
        )
        assert index.engine == "dict"
        assert index.search_mode == "dict"
        assert index._fast is None
