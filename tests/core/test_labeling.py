"""Unit tests for vertex labeling (Definition 3 / Algorithm 4)."""

import pytest

from repro.baselines.dijkstra import dijkstra
from repro.core.hierarchy import build_hierarchy
from repro.core.labeling import (
    definition3_label,
    external_top_down_labels,
    top_down_labels,
)
from repro.extmem.blockdev import BlockDevice
from repro.extmem.iomodel import CostModel
from repro.graph.generators import erdos_renyi, path_graph, random_tree
from repro.graph.graph import Graph


class TestTopDownEqualsDefinition3:
    """Corollary 1: the top-down merge computes exactly Definition 3."""

    def test_on_random_graphs(self, random_graph):
        h = build_hierarchy(random_graph)
        labels, _ = top_down_labels(h)
        for v in list(random_graph.vertices())[::7]:
            assert labels[v] == definition3_label(h, v)

    def test_on_full_hierarchy(self):
        g = random_tree(120, seed=9)
        h = build_hierarchy(g, full=True)
        labels, _ = top_down_labels(h)
        for v in list(g.vertices())[::11]:
            assert labels[v] == definition3_label(h, v)


class TestLabelSemantics:
    def test_self_entry_zero(self, random_graph):
        h = build_hierarchy(random_graph)
        labels, _ = top_down_labels(h)
        for v, label in labels.items():
            assert label[v] == 0

    def test_entries_upper_bound_true_distance(self, random_graph):
        h = build_hierarchy(random_graph)
        labels, _ = top_down_labels(h)
        for v in list(random_graph.vertices())[::9]:
            truth = dijkstra(random_graph, v)
            for w, d in labels[v].items():
                assert d >= truth[w]

    def test_ancestor_levels_not_lower(self, random_graph):
        h = build_hierarchy(random_graph)
        labels, _ = top_down_labels(h)
        for v, label in labels.items():
            for w in label:
                assert h.level(w) >= h.level(v)

    def test_gk_vertices_have_singleton_labels(self, random_graph):
        h = build_hierarchy(random_graph)
        labels, _ = top_down_labels(h)
        for v in h.gk.vertices():
            assert labels[v] == {v: 0}

    def test_corollary1_vertex_sets(self, random_graph):
        """V[label(v)] = {v} ∪ U_{u in adj_Gi(v)} V[label(u)]."""
        h = build_hierarchy(random_graph)
        labels, _ = top_down_labels(h)
        for i in range(1, h.k):
            for v in h.level_vertices(i)[::5]:
                expected = {v}
                for u, _ in h.removal_adjacency(v):
                    expected |= set(labels[u])
                assert set(labels[v]) == expected


class TestPredecessors:
    def test_preds_cover_every_entry(self, random_graph):
        h = build_hierarchy(random_graph, with_hints=True)
        labels, preds = top_down_labels(h, with_preds=True)
        for v, label in labels.items():
            assert set(preds[v]) == set(label)

    def test_self_and_direct_entries_have_no_pred(self, random_graph):
        h = build_hierarchy(random_graph)
        labels, preds = top_down_labels(h, with_preds=True)
        for v, pred_v in preds.items():
            assert pred_v[v] is None

    def test_pred_consistency(self, random_graph):
        """d(v, w) = ω(v, pred) + d(pred, w) whenever pred is set."""
        h = build_hierarchy(random_graph)
        labels, preds = top_down_labels(h, with_preds=True)
        for i in range(1, h.k):
            for v in h.level_vertices(i)[::4]:
                adjacency = dict(h.removal_adjacency(v))
                for w, pred in preds[v].items():
                    if pred is None:
                        continue
                    assert labels[v][w] == adjacency[pred] + labels[pred][w]


class TestExternalLabeling:
    @pytest.mark.parametrize("block_vertices", [1, 7, 1000])
    def test_matches_in_memory(self, block_vertices):
        g = erdos_renyi(80, 200, seed=31, max_weight=4)
        h = build_hierarchy(g)
        expected, _ = top_down_labels(h)
        device = BlockDevice(CostModel(block_size=256, memory=4096))
        got, io = external_top_down_labels(h, device, block_vertices=block_vertices)
        assert got == expected

    def test_reports_io_traffic(self):
        g = erdos_renyi(60, 150, seed=33)
        h = build_hierarchy(g)
        _, io = external_top_down_labels(
            h, BlockDevice(CostModel(block_size=128, memory=2048)), block_vertices=8
        )
        assert io.total_ios > 0

    def test_smaller_buffer_more_scans(self):
        g = erdos_renyi(60, 150, seed=35)
        h = build_hierarchy(g)
        _, io_small = external_top_down_labels(
            h, BlockDevice(CostModel(block_size=128, memory=2048)), block_vertices=2
        )
        _, io_large = external_top_down_labels(
            h, BlockDevice(CostModel(block_size=128, memory=2048)), block_vertices=500
        )
        assert io_small.block_reads >= io_large.block_reads
