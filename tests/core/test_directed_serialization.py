"""Unit tests for directed index save/load."""

import math
import random

import pytest

from repro.baselines.dijkstra import dijkstra_digraph_distance
from repro.core.directed import DirectedISLabelIndex
from repro.core.serialization import (
    load_directed_index,
    load_index,
    save_directed_index,
)
from repro.errors import StorageError
from repro.graph.digraph import DiGraph


def _random_digraph(n, arcs, seed, max_weight=4):
    rng = random.Random(seed)
    dg = DiGraph()
    for v in range(n):
        dg.add_vertex(v)
    placed = 0
    while placed < arcs:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not dg.has_edge(u, v):
            dg.add_edge(u, v, rng.randint(1, max_weight))
            placed += 1
    return dg


@pytest.fixture(scope="module")
def digraph():
    return _random_digraph(90, 300, seed=171)


class TestRoundTrip:
    def test_distances_survive(self, digraph, tmp_path):
        index = DirectedISLabelIndex.build(digraph)
        path = tmp_path / "d.isld"
        written = save_directed_index(index, path)
        assert written == path.stat().st_size
        loaded = load_directed_index(path)
        rng = random.Random(1)
        for _ in range(120):
            s, t = rng.randrange(90), rng.randrange(90)
            assert loaded.distance(s, t) == dijkstra_digraph_distance(digraph, s, t)

    def test_metadata_survives(self, digraph, tmp_path):
        index = DirectedISLabelIndex.build(digraph)
        path = tmp_path / "d.isld"
        save_directed_index(index, path)
        loaded = load_directed_index(path)
        assert loaded.k == index.k
        assert loaded.hierarchy.sizes == index.hierarchy.sizes
        assert loaded.label_entries == index.label_entries

    def test_labels_identical(self, digraph, tmp_path):
        index = DirectedISLabelIndex.build(digraph)
        path = tmp_path / "d.isld"
        save_directed_index(index, path)
        loaded = load_directed_index(path)
        for v in range(0, 90, 9):
            assert loaded.out_label(v) == index.out_label(v)
            assert loaded.in_label(v) == index.in_label(v)

    def test_path_mode_round_trip(self, digraph, tmp_path):
        index = DirectedISLabelIndex.build(digraph, with_paths=True)
        path = tmp_path / "d.isld"
        save_directed_index(index, path)
        loaded = load_directed_index(path)
        rng = random.Random(2)
        for _ in range(80):
            s, t = rng.randrange(90), rng.randrange(90)
            dist, p = loaded.shortest_path(s, t)
            assert dist == dijkstra_digraph_distance(digraph, s, t)
            if p is not None:
                assert all(digraph.has_edge(a, b) for a, b in zip(p, p[1:]))
                assert sum(digraph.weight(a, b) for a, b in zip(p, p[1:])) == dist


class TestFailureInjection:
    def test_undirected_loader_rejects_directed_file(self, digraph, tmp_path):
        index = DirectedISLabelIndex.build(digraph)
        path = tmp_path / "d.isld"
        save_directed_index(index, path)
        with pytest.raises(StorageError, match="magic"):
            load_index(path)

    def test_directed_loader_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.isld"
        path.write_bytes(b"JUNKJUNKJUNK")
        with pytest.raises(StorageError):
            load_directed_index(path)

    def test_truncation_detected(self, digraph, tmp_path):
        index = DirectedISLabelIndex.build(digraph)
        path = tmp_path / "d.isld"
        save_directed_index(index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            load_directed_index(path)
