"""Unit tests for independent-set selection (Algorithm 2)."""

import pytest

from repro.core.independent_set import (
    external_independent_set,
    greedy_independent_set,
    is_independent_set,
    random_independent_set,
)
from repro.extmem.blockdev import BlockDevice
from repro.extmem.extgraph import ExternalGraph
from repro.extmem.iomodel import CostModel
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestGreedy:
    def test_result_is_independent(self, random_graph):
        selected, _ = greedy_independent_set(random_graph)
        assert is_independent_set(random_graph, selected)

    def test_result_is_maximal(self, random_graph):
        selected, _ = greedy_independent_set(random_graph)
        chosen = set(selected)
        for v in random_graph.vertices():
            if v in chosen:
                continue
            # Every unselected vertex must conflict with a selected one.
            assert any(u in chosen for u in random_graph.neighbors(v))

    def test_adjacency_snapshot(self, small_weighted):
        selected, adj_of = greedy_independent_set(small_weighted)
        for v in selected:
            assert adj_of[v] == sorted(small_weighted.neighbors(v).items())

    def test_min_degree_first(self):
        # Star: the leaves (degree 1) are picked, the hub excluded.
        g = star_graph(6)
        selected, _ = greedy_independent_set(g)
        assert 0 not in selected
        assert len(selected) == 6

    def test_path_takes_alternate_vertices(self):
        selected, _ = greedy_independent_set(path_graph(7))
        assert is_independent_set(path_graph(7), selected)
        assert len(selected) >= 3

    def test_complete_graph_single_vertex(self):
        selected, _ = greedy_independent_set(complete_graph(5))
        assert len(selected) == 1

    def test_empty_graph(self):
        selected, adj_of = greedy_independent_set(Graph())
        assert selected == [] and adj_of == {}

    def test_isolated_vertices_all_selected(self):
        g = Graph()
        for v in range(5):
            g.add_vertex(v)
        selected, _ = greedy_independent_set(g)
        assert sorted(selected) == [0, 1, 2, 3, 4]

    def test_deterministic(self, random_graph):
        assert greedy_independent_set(random_graph) == greedy_independent_set(
            random_graph
        )


class TestRandomStrategy:
    def test_result_is_independent(self, random_graph):
        selected, _ = random_independent_set(random_graph, seed=3)
        assert is_independent_set(random_graph, selected)

    def test_seeded_determinism(self, random_graph):
        a = random_independent_set(random_graph, seed=5)
        b = random_independent_set(random_graph, seed=5)
        assert a == b

    def test_different_seeds_usually_differ(self):
        g = erdos_renyi(60, 150, seed=1)
        a, _ = random_independent_set(g, seed=1)
        b, _ = random_independent_set(g, seed=2)
        assert a != b


class TestExternal:
    @pytest.mark.parametrize("buffer_capacity", [5, 17, 10_000])
    def test_matches_in_memory(self, buffer_capacity):
        g = erdos_renyi(80, 200, seed=9, max_weight=3)
        device = BlockDevice(CostModel(block_size=256, memory=4096))
        eg = ExternalGraph.from_graph(device, g)
        adj_li, remainder = external_independent_set(
            device, eg, excluded_buffer_capacity=buffer_capacity
        )
        ext = dict(adj_li.rows())
        mem_selected, mem_adj = greedy_independent_set(g)
        assert set(ext) == set(mem_selected)
        assert all(ext[v] == mem_adj[v] for v in mem_selected)

    def test_selected_plus_remainder_cover_graph(self):
        g = erdos_renyi(60, 140, seed=11)
        device = BlockDevice(CostModel(block_size=256, memory=4096))
        eg = ExternalGraph.from_graph(device, g)
        adj_li, remainder = external_independent_set(
            device, eg, excluded_buffer_capacity=8
        )
        selected = {v for v, _ in adj_li.rows()}
        rest = {v for v, _ in remainder.rows()}
        assert selected | rest == set(g.vertices())
        assert not selected & rest

    def test_only_sequential_io(self):
        g = erdos_renyi(50, 120, seed=13)
        device = BlockDevice(CostModel(block_size=128, memory=2048))
        eg = ExternalGraph.from_graph(device, g)
        device.stats.reset()
        external_independent_set(device, eg, excluded_buffer_capacity=10)
        # Tight purge buffer forces several extra scans; still bounded by a
        # modest multiple of sort + scan of the graph file.
        bound = 10 * device.cost_model.sort_cost(eg.nbytes)
        assert device.stats.total_ios <= bound
