"""Theorem 3/4's label-consistency claim, tested directly.

Both proofs rest on this invariant: "the occurrences and contents of such
label entries will be identical in the labels of vertices in the first k
levels of any vertex hierarchy H_{<j}, k <= j <= h+1, which is formed by
limiting the height of a given H."  In other words, truncating the same
underlying hierarchy at different heights must not change the label
entries among low-level ancestors.
"""

import pytest

from repro.core.hierarchy import build_hierarchy
from repro.core.index import ISLabelIndex
from repro.core.labeling import top_down_labels
from repro.graph.generators import ensure_connected, erdos_renyi, random_tree


@pytest.fixture(scope="module", params=["er", "tree"])
def graph(request):
    if request.param == "er":
        return ensure_connected(erdos_renyi(120, 280, seed=131, max_weight=4), seed=131)
    return random_tree(150, seed=132)


def test_level_assignment_is_a_prefix_across_k(graph):
    """The greedy peel is deterministic, so smaller k = a prefix of larger k."""
    deep = build_hierarchy(graph, k=6)
    shallow = build_hierarchy(graph, k=3)
    for i in range(1, shallow.k):
        assert shallow.level_vertices(i) == deep.level_vertices(i)
        for v in shallow.level_vertices(i):
            assert shallow.removal_adjacency(v) == deep.removal_adjacency(v)


def test_label_entries_below_cutoff_are_identical(graph):
    """Entries about ancestors below the smaller cutoff coincide exactly."""
    k_small, k_large = 3, 6
    h_small = build_hierarchy(graph, k=k_small)
    h_large = build_hierarchy(graph, k=k_large)
    labels_small, _ = top_down_labels(h_small)
    labels_large, _ = top_down_labels(h_large)
    for v in graph.vertices():
        if h_small.level(v) >= k_small:
            continue  # v only labeled below the smaller cutoff
        small_low = {
            w: d for w, d in labels_small[v].items() if h_small.level(w) < k_small
        }
        large_low = {
            w: d for w, d in labels_large[v].items() if h_small.level(w) < k_small
        }
        assert small_low == large_low, v


def test_gateway_entries_agree_between_k_and_full(graph):
    """A k-level label's G_k-gateway distances appear in the full
    hierarchy's label for the same vertex (possibly among more entries)."""
    h_k = build_hierarchy(graph, k=4)
    h_full = build_hierarchy(graph, full=True)
    labels_k, _ = top_down_labels(h_k)
    labels_full, _ = top_down_labels(h_full)
    for v in list(graph.vertices())[::5]:
        if h_k.level(v) >= h_k.k:
            continue
        for w, d in labels_k[v].items():
            full_d = labels_full[v].get(w)
            if full_d is not None:
                # The full hierarchy may know a better increasing-level
                # route (more levels = more routes), never a worse one.
                assert full_d <= d


def test_answers_invariant_across_all_truncations(graph):
    full = ISLabelIndex.build(graph, full=True)
    indexes = [ISLabelIndex.build(graph, k=k) for k in range(2, full.k + 1, 2)]
    import random

    rng = random.Random(7)
    vs = sorted(graph.vertices())
    for _ in range(60):
        s, t = rng.choice(vs), rng.choice(vs)
        expected = full.distance(s, t)
        for ix in indexes:
            assert ix.distance(s, t) == expected
