"""Unit tests for shortest-path reconstruction (§8.1)."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.index import ISLabelIndex
from repro.core.paths import PathReconstructor, is_valid_path, path_length
from repro.errors import QueryError
from repro.graph.generators import ensure_connected, erdos_renyi, path_graph
from repro.graph.graph import Graph

from tests.conftest import random_pairs


@pytest.fixture(scope="module")
def graph():
    return ensure_connected(erdos_renyi(120, 300, seed=51, max_weight=5), seed=51)


@pytest.fixture(scope="module")
def reconstructor(graph):
    return PathReconstructor(ISLabelIndex.build(graph, with_paths=True))


class TestReconstruction:
    def test_paths_are_real_and_tight(self, graph, reconstructor):
        for s, t in random_pairs(graph, 120, seed=7):
            dist, path = reconstructor.shortest_path(s, t)
            assert dist == dijkstra_distance(graph, s, t)
            assert path is not None
            assert path[0] == s and path[-1] == t
            assert is_valid_path(graph, path)
            assert path_length(graph, path) == dist

    def test_self_path(self, reconstructor):
        dist, path = reconstructor.shortest_path(5, 5)
        assert dist == 0 and path == [5]

    def test_adjacent_pair(self, graph, reconstructor):
        u, v, w = next(iter(graph.edges()))
        dist, path = reconstructor.shortest_path(u, v)
        assert dist <= w
        assert path[0] == u and path[-1] == v

    def test_disconnected_returns_none(self):
        g = Graph([(0, 1), (5, 6)])
        r = PathReconstructor(ISLabelIndex.build(g, with_paths=True))
        dist, path = r.shortest_path(0, 6)
        assert math.isinf(dist) and path is None

    def test_no_repeated_vertices(self, graph, reconstructor):
        for s, t in random_pairs(graph, 60, seed=8):
            _, path = reconstructor.shortest_path(s, t)
            assert path is not None
            assert len(path) == len(set(path)), path


class TestModes:
    def test_full_hierarchy_paths(self, graph):
        r = PathReconstructor(
            ISLabelIndex.build(graph, full=True, with_paths=True)
        )
        for s, t in random_pairs(graph, 60, seed=9):
            dist, path = r.shortest_path(s, t)
            assert dist == dijkstra_distance(graph, s, t)
            assert path_length(graph, path) == dist

    def test_explicit_k_paths(self, graph):
        r = PathReconstructor(ISLabelIndex.build(graph, k=2, with_paths=True))
        for s, t in random_pairs(graph, 60, seed=10):
            dist, path = r.shortest_path(s, t)
            assert dist == dijkstra_distance(graph, s, t)
            assert path_length(graph, path) == dist

    def test_disk_storage_paths(self, graph):
        r = PathReconstructor(
            ISLabelIndex.build(graph, with_paths=True, storage="disk")
        )
        for s, t in random_pairs(graph, 30, seed=11):
            dist, path = r.shortest_path(s, t)
            assert path_length(graph, path) == dist


class TestGuards:
    def test_requires_path_mode(self, graph):
        plain = ISLabelIndex.build(graph)
        with pytest.raises(QueryError):
            PathReconstructor(plain)

    def test_path_helpers(self):
        g = path_graph(4, weight=3)
        assert path_length(g, [0, 1, 2]) == 6
        assert is_valid_path(g, [0, 1, 2, 3])
        assert not is_valid_path(g, [0, 2])
        assert not is_valid_path(g, [])
        assert not is_valid_path(g, [0, 99])
