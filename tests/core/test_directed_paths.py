"""Unit tests for directed shortest-path reconstruction (§8.1 + §8.2)."""

import math
import random

import pytest

from repro.baselines.dijkstra import dijkstra_digraph_distance
from repro.core.directed import DirectedISLabelIndex
from repro.errors import QueryError
from repro.graph.digraph import DiGraph


def _arc_path_length(dg: DiGraph, path):
    return sum(dg.weight(a, b) for a, b in zip(path, path[1:]))


def _is_valid_arc_path(dg: DiGraph, path):
    return all(dg.has_edge(a, b) for a, b in zip(path, path[1:]))


def _random_digraph(n, arcs, seed, max_weight=4):
    rng = random.Random(seed)
    dg = DiGraph()
    for v in range(n):
        dg.add_vertex(v)
    placed = 0
    while placed < arcs:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not dg.has_edge(u, v):
            dg.add_edge(u, v, rng.randint(1, max_weight))
            placed += 1
    return dg


@pytest.fixture(scope="module")
def setup():
    dg = _random_digraph(110, 380, seed=161)
    return dg, DirectedISLabelIndex.build(dg, with_paths=True)


class TestDirectedPaths:
    def test_paths_valid_and_tight(self, setup):
        dg, index = setup
        rng = random.Random(1)
        for _ in range(200):
            s, t = rng.randrange(110), rng.randrange(110)
            dist, path = index.shortest_path(s, t)
            truth = dijkstra_digraph_distance(dg, s, t)
            assert dist == truth
            if math.isinf(truth):
                assert path is None
            else:
                assert path[0] == s and path[-1] == t
                assert _is_valid_arc_path(dg, path), (s, t, path)
                assert _arc_path_length(dg, path) == truth

    def test_self_path(self, setup):
        _, index = setup
        assert index.shortest_path(4, 4) == (0, [4])

    def test_chain(self):
        dg = DiGraph([(i, i + 1, 2) for i in range(12)])
        index = DirectedISLabelIndex.build(dg, with_paths=True)
        dist, path = index.shortest_path(0, 12)
        assert dist == 24
        assert path == list(range(13))
        dist, path = index.shortest_path(12, 0)
        assert math.isinf(dist) and path is None

    def test_full_hierarchy_paths(self):
        dg = _random_digraph(60, 200, seed=162)
        index = DirectedISLabelIndex.build(dg, full=True, with_paths=True)
        rng = random.Random(2)
        for _ in range(120):
            s, t = rng.randrange(60), rng.randrange(60)
            dist, path = index.shortest_path(s, t)
            truth = dijkstra_digraph_distance(dg, s, t)
            assert dist == truth
            if path is not None:
                assert _is_valid_arc_path(dg, path)
                assert _arc_path_length(dg, path) == truth

    def test_explicit_k_paths(self):
        dg = _random_digraph(60, 200, seed=163)
        index = DirectedISLabelIndex.build(dg, k=2, with_paths=True)
        rng = random.Random(3)
        for _ in range(120):
            s, t = rng.randrange(60), rng.randrange(60)
            dist, path = index.shortest_path(s, t)
            assert dist == dijkstra_digraph_distance(dg, s, t)
            if path is not None:
                assert _arc_path_length(dg, path) == dist

    def test_requires_path_mode(self):
        dg = _random_digraph(20, 50, seed=164)
        plain = DirectedISLabelIndex.build(dg)
        with pytest.raises(QueryError):
            plain.shortest_path(0, 1)

    def test_paths_have_no_cycles(self, setup):
        dg, index = setup
        rng = random.Random(4)
        for _ in range(100):
            s, t = rng.randrange(110), rng.randrange(110)
            _, path = index.shortest_path(s, t)
            if path is not None:
                assert len(path) == len(set(path))
