"""Unit tests for dynamic update maintenance (§8.3)."""

import random

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.updates import DynamicISLabelIndex
from repro.errors import GraphError, QueryError, StaleIndexError
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.graph.graph import Graph

from tests.conftest import random_pairs


@pytest.fixture
def base_graph():
    return ensure_connected(erdos_renyi(80, 200, seed=71, max_weight=3), seed=71)


@pytest.fixture
def dyn(base_graph):
    return DynamicISLabelIndex(base_graph)


class TestInsertion:
    def test_insert_then_query_new_vertex(self, dyn):
        dyn.insert_vertex(1000, {0: 2, 5: 1})
        truth = dijkstra_distance(dyn.graph, 1000, 17)
        answer = dyn.distance(1000, 17)
        assert answer >= truth
        assert dyn.distance(1000, 0) == 2 or dyn.distance(1000, 0) == 1 + dyn.graph.weight(0, 5)

    def test_insert_never_underestimates(self, dyn):
        rng = random.Random(3)
        for i in range(15):
            neighbours = {
                v: rng.randint(1, 3)
                for v in rng.sample(sorted(dyn.graph.vertices()), rng.randint(1, 3))
            }
            dyn.insert_vertex(2000 + i, neighbours)
        for s, t in random_pairs(dyn.graph, 150, seed=4):
            truth = dijkstra_distance(dyn.graph, s, t)
            assert dyn.distance(s, t) >= truth

    def test_insert_mostly_exact(self, dyn):
        rng = random.Random(5)
        for i in range(10):
            neighbours = {
                v: rng.randint(1, 3)
                for v in rng.sample(sorted(dyn.graph.vertices()), 3)
            }
            dyn.insert_vertex(3000 + i, neighbours)
        pairs = random_pairs(dyn.graph, 200, seed=6)
        exact = sum(
            dyn.distance(s, t) == dijkstra_distance(dyn.graph, s, t)
            for s, t in pairs
        )
        assert exact >= 0.9 * len(pairs)

    def test_insert_counts_staleness(self, dyn):
        dyn.insert_vertex(1000, {0: 1})
        dyn.insert_vertex(1001, {1000: 1})
        assert dyn.staleness == 2
        assert dyn.inserts_applied == 2
        assert not dyn.approximate  # inserts keep upper-bound guarantees

    def test_duplicate_insert_rejected(self, dyn):
        dyn.insert_vertex(1000, {0: 1})
        with pytest.raises(GraphError):
            dyn.insert_vertex(1000, {1: 1})

    def test_insert_needs_known_neighbours(self, dyn):
        with pytest.raises(GraphError):
            dyn.insert_vertex(1000, {424242: 1})

    def test_insert_needs_nonempty_adjacency(self, dyn):
        with pytest.raises(GraphError):
            dyn.insert_vertex(1000, {})

    def test_insert_into_gk_neighbours(self, dyn):
        gk = sorted(dyn.index.gk.vertices())[:2]
        dyn.insert_vertex(1000, {gk[0]: 1, gk[1]: 2})
        truth = dijkstra_distance(dyn.graph, 1000, gk[1])
        assert dyn.distance(1000, gk[1]) == truth


class TestDeletion:
    def test_delete_marks_approximate(self, dyn):
        victim = sorted(dyn.graph.vertices())[0]
        dyn.delete_vertex(victim)
        assert dyn.approximate
        assert dyn.deletes_applied == 1

    def test_delete_unknown_vertex_rejected(self, dyn):
        with pytest.raises(GraphError):
            dyn.delete_vertex(999999)

    def test_deleted_vertex_gone_from_labels(self, dyn):
        victim = sorted(dyn.graph.vertices())[3]
        dyn.delete_vertex(victim)
        for entries in dyn.index._labels.values():
            assert all(anc != victim for anc, _ in entries)

    def test_exact_distance_guard(self, dyn):
        victim = sorted(dyn.graph.vertices())[0]
        dyn.delete_vertex(victim)
        others = sorted(dyn.graph.vertices())[:2]
        with pytest.raises(StaleIndexError):
            dyn.exact_distance(others[0], others[1])

    def test_insert_then_delete_round_trip(self, dyn):
        dyn.insert_vertex(1000, {0: 1})
        dyn.delete_vertex(1000)
        assert not dyn.graph.has_vertex(1000)
        for s, t in random_pairs(dyn.graph, 40, seed=8):
            assert dyn.distance(s, t) >= dijkstra_distance(dyn.graph, s, t)


class TestRebuild:
    def test_rebuild_restores_exactness(self, dyn):
        rng = random.Random(9)
        for i in range(8):
            neighbours = {
                v: rng.randint(1, 3)
                for v in rng.sample(sorted(dyn.graph.vertices()), 2)
            }
            dyn.insert_vertex(4000 + i, neighbours)
        dyn.delete_vertex(4000)
        dyn.rebuild()
        assert dyn.staleness == 0
        assert not dyn.approximate
        for s, t in random_pairs(dyn.graph, 80, seed=10):
            assert dyn.distance(s, t) == dijkstra_distance(dyn.graph, s, t)

    def test_path_mode_rejected(self, base_graph):
        with pytest.raises(QueryError):
            DynamicISLabelIndex(base_graph, with_paths=True)

    def test_disk_storage_supported(self, base_graph):
        dyn = DynamicISLabelIndex(base_graph, storage="disk")
        dyn.insert_vertex(1000, {0: 1})
        for s, t in random_pairs(dyn.graph, 30, seed=11):
            assert dyn.distance(s, t) >= dijkstra_distance(dyn.graph, s, t)
