"""Unit tests for dynamic update maintenance (§8.3), both orientations,
including the fast-engine integration (incremental invalidation) and the
dynamic-state serialization round trip."""

import random

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.serialization import (
    load_dynamic_directed_index,
    load_dynamic_index,
    save_dynamic_directed_index,
    save_dynamic_index,
)
from repro.core.updates import DynamicDirectedISLabelIndex, DynamicISLabelIndex
from repro.errors import GraphError, QueryError, StaleIndexError, StorageError
from repro.graph.digraph import DiGraph
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.graph.graph import Graph

from tests.conftest import random_pairs


@pytest.fixture
def base_graph():
    return ensure_connected(erdos_renyi(80, 200, seed=71, max_weight=3), seed=71)


@pytest.fixture
def dyn(base_graph):
    return DynamicISLabelIndex(base_graph)


class TestInsertion:
    def test_insert_then_query_new_vertex(self, dyn):
        dyn.insert_vertex(1000, {0: 2, 5: 1})
        truth = dijkstra_distance(dyn.graph, 1000, 17)
        answer = dyn.distance(1000, 17)
        assert answer >= truth
        assert dyn.distance(1000, 0) == 2 or dyn.distance(1000, 0) == 1 + dyn.graph.weight(0, 5)

    def test_insert_never_underestimates(self, dyn):
        rng = random.Random(3)
        for i in range(15):
            neighbours = {
                v: rng.randint(1, 3)
                for v in rng.sample(sorted(dyn.graph.vertices()), rng.randint(1, 3))
            }
            dyn.insert_vertex(2000 + i, neighbours)
        for s, t in random_pairs(dyn.graph, 150, seed=4):
            truth = dijkstra_distance(dyn.graph, s, t)
            assert dyn.distance(s, t) >= truth

    def test_insert_mostly_exact(self, dyn):
        rng = random.Random(5)
        for i in range(10):
            neighbours = {
                v: rng.randint(1, 3)
                for v in rng.sample(sorted(dyn.graph.vertices()), 3)
            }
            dyn.insert_vertex(3000 + i, neighbours)
        pairs = random_pairs(dyn.graph, 200, seed=6)
        exact = sum(
            dyn.distance(s, t) == dijkstra_distance(dyn.graph, s, t)
            for s, t in pairs
        )
        assert exact >= 0.9 * len(pairs)

    def test_insert_counts_staleness(self, dyn):
        dyn.insert_vertex(1000, {0: 1})
        dyn.insert_vertex(1001, {1000: 1})
        assert dyn.staleness == 2
        assert dyn.inserts_applied == 2
        assert not dyn.approximate  # inserts keep upper-bound guarantees

    def test_duplicate_insert_rejected(self, dyn):
        dyn.insert_vertex(1000, {0: 1})
        with pytest.raises(GraphError):
            dyn.insert_vertex(1000, {1: 1})

    def test_insert_needs_known_neighbours(self, dyn):
        with pytest.raises(GraphError):
            dyn.insert_vertex(1000, {424242: 1})

    def test_insert_needs_nonempty_adjacency(self, dyn):
        with pytest.raises(GraphError):
            dyn.insert_vertex(1000, {})

    def test_insert_into_gk_neighbours(self, dyn):
        gk = sorted(dyn.index.gk.vertices())[:2]
        dyn.insert_vertex(1000, {gk[0]: 1, gk[1]: 2})
        truth = dijkstra_distance(dyn.graph, 1000, gk[1])
        assert dyn.distance(1000, gk[1]) == truth


class TestDeletion:
    def test_delete_marks_approximate(self, dyn):
        victim = sorted(dyn.graph.vertices())[0]
        dyn.delete_vertex(victim)
        assert dyn.approximate
        assert dyn.deletes_applied == 1

    def test_delete_unknown_vertex_rejected(self, dyn):
        with pytest.raises(GraphError):
            dyn.delete_vertex(999999)

    def test_deleted_vertex_gone_from_labels(self, dyn):
        victim = sorted(dyn.graph.vertices())[3]
        dyn.delete_vertex(victim)
        for entries in dyn.index._labels.values():
            assert all(anc != victim for anc, _ in entries)

    def test_exact_distance_guard(self, dyn):
        victim = sorted(dyn.graph.vertices())[0]
        dyn.delete_vertex(victim)
        others = sorted(dyn.graph.vertices())[:2]
        with pytest.raises(StaleIndexError):
            dyn.exact_distance(others[0], others[1])

    def test_insert_then_delete_round_trip(self, dyn):
        dyn.insert_vertex(1000, {0: 1})
        dyn.delete_vertex(1000)
        assert not dyn.graph.has_vertex(1000)
        for s, t in random_pairs(dyn.graph, 40, seed=8):
            assert dyn.distance(s, t) >= dijkstra_distance(dyn.graph, s, t)


class TestRebuild:
    def test_rebuild_restores_exactness(self, dyn):
        rng = random.Random(9)
        for i in range(8):
            neighbours = {
                v: rng.randint(1, 3)
                for v in rng.sample(sorted(dyn.graph.vertices()), 2)
            }
            dyn.insert_vertex(4000 + i, neighbours)
        dyn.delete_vertex(4000)
        dyn.rebuild()
        assert dyn.staleness == 0
        assert not dyn.approximate
        for s, t in random_pairs(dyn.graph, 80, seed=10):
            assert dyn.distance(s, t) == dijkstra_distance(dyn.graph, s, t)

    def test_path_mode_rejected(self, base_graph):
        with pytest.raises(QueryError):
            DynamicISLabelIndex(base_graph, with_paths=True)

    def test_disk_storage_supported(self, base_graph):
        dyn = DynamicISLabelIndex(base_graph, storage="disk")
        dyn.insert_vertex(1000, {0: 1})
        for s, t in random_pairs(dyn.graph, 30, seed=11):
            assert dyn.distance(s, t) >= dijkstra_distance(dyn.graph, s, t)


class TestEngineIntegration:
    """§8.3 updates keep serving from the fast engine between rebuilds."""

    def test_default_engine_is_fast(self, dyn):
        assert dyn.engine == "fast"
        assert dyn.index.engine == "fast"

    def test_dict_engine_still_available(self, base_graph):
        ref = DynamicISLabelIndex(base_graph, engine="dict")
        assert ref.engine == "dict"
        ref.insert_vertex(1000, {0: 1})
        assert ref.distance(1000, 0) == 1

    def test_insert_keeps_engine_frozen(self, dyn):
        engine = dyn.index._fast
        dyn.distance(0, 1)  # freeze
        assert engine.frozen
        dyn.insert_vertex(1000, {0: 2, 5: 1})
        assert engine.frozen, "insert should invalidate incrementally"
        assert dyn.distance(1000, 0) <= 2

    def test_fast_matches_dict_after_updates(self, base_graph):
        rng = random.Random(13)
        fast = DynamicISLabelIndex(base_graph)
        ref = DynamicISLabelIndex(base_graph, engine="dict")
        for i in range(10):
            verts = sorted(fast.graph.vertices())
            if i % 3 == 2:
                victim = rng.choice(verts)
                fast.delete_vertex(victim)
                ref.delete_vertex(victim)
            else:
                adj = {
                    v: rng.randint(1, 3) for v in rng.sample(verts, rng.randint(1, 3))
                }
                fast.insert_vertex(5000 + i, dict(adj))
                ref.insert_vertex(5000 + i, dict(adj))
        pairs = random_pairs(fast.graph, 120, seed=14)
        expected = [ref.distance(s, t) for s, t in pairs]
        assert [fast.distance(s, t) for s, t in pairs] == expected
        assert fast.distances(pairs) == expected

    def test_forced_full_refreeze_matches_incremental(self, base_graph):
        rng = random.Random(15)
        incremental = DynamicISLabelIndex(base_graph)
        full = DynamicISLabelIndex(base_graph)
        full.index._fast.incremental_max_fraction = 0.0
        for i in range(6):
            verts = sorted(incremental.graph.vertices())
            adj = {v: rng.randint(1, 3) for v in rng.sample(verts, 2)}
            incremental.insert_vertex(6000 + i, dict(adj))
            full.insert_vertex(6000 + i, dict(adj))
            assert incremental.index._fast.frozen or i == 0
            pairs = random_pairs(incremental.graph, 40, seed=16 + i)
            assert incremental.distances(pairs) == full.distances(pairs)

    def test_gk_delete_falls_back_to_full_refreeze(self, dyn):
        engine = dyn.index._fast
        dyn.distance(0, 1)
        gk_vertex = next(iter(dyn.index.gk.vertices()))
        dyn.delete_vertex(gk_vertex)
        assert not engine.frozen
        # Next query re-freezes from the scrubbed labels and still answers.
        others = [v for v in sorted(dyn.graph.vertices())][:2]
        dyn.distance(others[0], others[1])
        assert engine.frozen

    def test_disk_storage_on_fast_engine(self, base_graph):
        dyn = DynamicISLabelIndex(base_graph, storage="disk")
        assert dyn.engine == "fast"
        dyn.insert_vertex(1000, {0: 1})
        for s, t in random_pairs(dyn.graph, 30, seed=17):
            assert dyn.distance(s, t) >= dijkstra_distance(dyn.graph, s, t)

    def test_rebuild_reattaches_fast_engine(self, dyn):
        dyn.insert_vertex(1000, {0: 1})
        dyn.rebuild()
        assert dyn.engine == "fast"
        assert dyn.distance(1000, 0) == 1


def _random_digraph(n, arcs, seed):
    rng = random.Random(seed)
    dg = DiGraph()
    for v in range(1, n):
        dg.add_edge(rng.randrange(v), v, rng.randint(1, 3))
    for _ in range(arcs):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            dg.merge_edge(u, v, rng.randint(1, 3))
    return dg


class TestDynamicDirected:
    @pytest.fixture
    def ddyn(self):
        return DynamicDirectedISLabelIndex(_random_digraph(50, 120, seed=31))

    def test_insert_then_query(self, ddyn):
        ddyn.insert_vertex(1000, out_arcs={0: 2}, in_arcs={5: 1})
        assert ddyn.distance(1000, 0) == 2
        assert ddyn.distance(5, 1000) == 1
        assert ddyn.staleness == 1
        assert ddyn.engine == "fast"

    def test_insert_requires_an_arc(self, ddyn):
        with pytest.raises(GraphError):
            ddyn.insert_vertex(1000)

    def test_insert_rejects_unknown_endpoints(self, ddyn):
        with pytest.raises(GraphError):
            ddyn.insert_vertex(1000, out_arcs={424242: 1})

    def test_duplicate_insert_rejected(self, ddyn):
        ddyn.insert_vertex(1000, out_arcs={0: 1})
        with pytest.raises(GraphError):
            ddyn.insert_vertex(1000, out_arcs={1: 1})

    def test_fast_matches_dict_after_updates(self):
        graph = _random_digraph(40, 100, seed=32)
        rng = random.Random(33)
        fast = DynamicDirectedISLabelIndex(graph)
        ref = DynamicDirectedISLabelIndex(graph, engine="dict")
        for i in range(8):
            verts = sorted(fast.graph.vertices())
            if i % 4 == 3:
                victim = rng.choice(verts)
                fast.delete_vertex(victim)
                ref.delete_vertex(victim)
            else:
                outs = {rng.choice(verts): rng.randint(1, 3)}
                ins = {rng.choice(verts): rng.randint(1, 3)}
                fast.insert_vertex(7000 + i, dict(outs), dict(ins))
                ref.insert_vertex(7000 + i, dict(outs), dict(ins))
        verts = sorted(fast.graph.vertices())
        pairs = [(rng.choice(verts), rng.choice(verts)) for _ in range(100)]
        expected = [ref.distance(s, t) for s, t in pairs]
        assert [fast.distance(s, t) for s, t in pairs] == expected
        assert fast.distances(pairs) == expected

    def test_delete_marks_approximate_and_guards(self, ddyn):
        victim = sorted(ddyn.graph.vertices())[1]
        ddyn.delete_vertex(victim)
        assert ddyn.approximate
        others = sorted(ddyn.graph.vertices())[:2]
        with pytest.raises(StaleIndexError):
            ddyn.exact_distance(others[0], others[1])
        ddyn.rebuild()
        assert not ddyn.approximate and ddyn.staleness == 0

    def test_deleted_vertex_scrubbed_from_both_tables(self, ddyn):
        victim = sorted(ddyn.graph.vertices())[3]
        ddyn.delete_vertex(victim)
        for table in (ddyn.index._out_labels, ddyn.index._in_labels):
            for entries in table.values():
                assert all(anc != victim for anc, _ in entries)


class TestDynamicSerialization:
    def test_undirected_round_trip(self, dyn, tmp_path):
        rng = random.Random(41)
        for i in range(5):
            verts = sorted(dyn.graph.vertices())
            dyn.insert_vertex(8000 + i, {rng.choice(verts): rng.randint(1, 3)})
        dyn.delete_vertex(2)
        path = tmp_path / "dyn.islx"
        save_dynamic_index(dyn, path)
        back = load_dynamic_index(path)
        assert back.staleness == dyn.staleness == 6
        assert back.approximate == dyn.approximate
        assert back.engine == "fast"
        pairs = random_pairs(dyn.graph, 60, seed=42)
        assert [back.distance(s, t) for s, t in pairs] == [
            dyn.distance(s, t) for s, t in pairs
        ]
        # The restored index keeps absorbing updates.
        anchor = sorted(back.graph.vertices())[0]
        back.insert_vertex(9000, {anchor: 1})
        assert back.distance(9000, anchor) == 1

    def test_undirected_round_trip_dict_engine(self, dyn, tmp_path):
        dyn.insert_vertex(8000, {0: 2})
        path = tmp_path / "dyn.islx"
        save_dynamic_index(dyn, path)
        back = load_dynamic_index(path, engine="dict")
        assert back.engine == "dict"
        assert back.distance(8000, 0) == dyn.distance(8000, 0)

    def test_directed_round_trip(self, tmp_path):
        ddyn = DynamicDirectedISLabelIndex(_random_digraph(40, 90, seed=43))
        rng = random.Random(44)
        for i in range(4):
            verts = sorted(ddyn.graph.vertices())
            ddyn.insert_vertex(
                8100 + i,
                {rng.choice(verts): rng.randint(1, 3)},
                {rng.choice(verts): rng.randint(1, 3)},
            )
        path = tmp_path / "dyn.isld"
        save_dynamic_directed_index(ddyn, path)
        back = load_dynamic_directed_index(path)
        assert back.staleness == 4 and back.engine == "fast"
        verts = sorted(ddyn.graph.vertices())
        pairs = [(rng.choice(verts), rng.choice(verts)) for _ in range(60)]
        assert back.distances(pairs) == ddyn.distances(pairs)

    def test_round_trip_preserves_build_kwargs(self, base_graph, tmp_path):
        dyn = DynamicISLabelIndex(base_graph, k=5)
        assert dyn.index.k == 5
        dyn.insert_vertex(8000, {0: 1})
        path = tmp_path / "dyn.islx"
        save_dynamic_index(dyn, path)
        back = load_dynamic_index(path)
        back.rebuild()
        assert back.index.k == 5, "rebuild() must reproduce the saved config"
        assert back.engine == "fast"

    def test_wrong_magic_rejected(self, dyn, tmp_path):
        path = tmp_path / "dyn.islx"
        save_dynamic_index(dyn, path)
        with pytest.raises(StorageError):
            load_dynamic_directed_index(path)
