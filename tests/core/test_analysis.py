"""Unit tests for index introspection."""

import pytest

from repro.core.analysis import describe_index, hierarchy_report, label_report
from repro.core.index import ISLabelIndex
from repro.graph.generators import ensure_connected, erdos_renyi, path_graph


@pytest.fixture(scope="module")
def index():
    g = ensure_connected(erdos_renyi(90, 220, seed=151, max_weight=3), seed=151)
    return ISLabelIndex.build(g)


class TestHierarchyReport:
    def test_rows_cover_every_level_plus_gk(self, index):
        rows = hierarchy_report(index)
        assert len(rows) == index.k
        assert [r.level for r in rows] == list(range(1, index.k + 1))

    def test_peeled_counts_match_levels(self, index):
        rows = hierarchy_report(index)
        for row in rows[:-1]:
            assert row.peeled == len(index.hierarchy.levels[row.level - 1])
        assert rows[-1].peeled == 0  # the G_k row

    def test_graph_sizes_match_trace(self, index):
        rows = hierarchy_report(index)
        for row, size in zip(rows, index.hierarchy.sizes):
            assert row.graph_size == size

    def test_shrink_ratios_respect_sigma_rule(self, index):
        rows = hierarchy_report(index)
        # Ratios are positive; all peeled levels except possibly the last
        # shrank by the σ rule (the final peel may even grow |G| — that is
        # precisely what makes the rule stop).
        for row in rows:
            assert row.shrink_ratio > 0.0
        sigma = index.hierarchy.sigma
        for row in rows[:-2]:
            assert row.shrink_ratio <= sigma


class TestLabelReport:
    def test_statistics_consistent(self, index):
        stats = label_report(index)
        assert stats["count"] == index.stats.num_vertices
        assert stats["min"] <= stats["median"] <= stats["max"]
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_mean_matches_index_stats(self, index):
        stats = label_report(index)
        # index.stats counts stored entries; G_k vertices contribute their
        # implicit single-entry labels to both views.
        assert stats["mean"] == pytest.approx(
            index.stats.label_entries / index.stats.num_vertices, rel=0.25
        )


class TestDescribe:
    def test_render_contains_key_facts(self, index):
        text = describe_index(index)
        assert f"k={index.k}" in text
        assert "(G_k)" in text
        assert "label entries per vertex" in text

    def test_path_graph_report(self):
        index = ISLabelIndex.build(path_graph(16))
        rows = hierarchy_report(index)
        # A path halves per level until the σ rule stops it.
        assert rows[0].peeled >= 7
        assert describe_index(index)
