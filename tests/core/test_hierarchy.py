"""Unit tests for vertex hierarchy construction (Definitions 1 and 4)."""

import math

import pytest

from repro.baselines.dijkstra import dijkstra
from repro.core.hierarchy import (
    build_hierarchy,
    build_hierarchy_with_levels,
)
from repro.core.independent_set import is_independent_set
from repro.errors import IndexBuildError
from repro.graph.generators import erdos_renyi, path_graph, random_tree
from repro.graph.graph import Graph


def _reconstruct_gi(hierarchy, graph, level):
    """Rebuild G_level by replaying the peel (test helper)."""
    from repro.core.reduce import reduce_graph_inplace

    work = graph.copy()
    for i in range(1, level):
        peeled = hierarchy.levels[i - 1]
        reduce_graph_inplace(work, list(peeled), peeled)
    return work


class TestDefinition1:
    def test_levels_partition_vertices(self, random_graph):
        h = build_hierarchy(random_graph)
        seen = set()
        for peeled in h.levels:
            assert not (set(peeled) & seen)
            seen |= set(peeled)
        seen |= set(h.gk.vertices())
        assert seen == set(random_graph.vertices())

    def test_each_level_is_independent_in_its_graph(self, random_graph):
        h = build_hierarchy(random_graph)
        for i in range(1, h.k):
            gi = _reconstruct_gi(h, random_graph, i)
            assert is_independent_set(gi, h.level_vertices(i))

    def test_lemma1_distance_preservation_per_level(self, random_graph):
        h = build_hierarchy(random_graph)
        original = {
            s: dijkstra(random_graph, s)
            for s in list(random_graph.vertices())[:6]
        }
        for i in range(2, h.k + 1):
            gi = _reconstruct_gi(h, random_graph, i)
            for s, truth in original.items():
                if not gi.has_vertex(s):
                    continue
                after = dijkstra(gi, s)
                for t in gi.vertices():
                    assert after.get(t, math.inf) == truth.get(t, math.inf)

    def test_removal_adjacency_has_higher_levels_only(self, random_graph):
        h = build_hierarchy(random_graph)
        for i in range(1, h.k):
            for v in h.level_vertices(i):
                for u, _ in h.removal_adjacency(v):
                    assert h.level(u) > i


class TestSigmaRule:
    def test_sigma_stops_at_first_slow_level(self, random_graph):
        h = build_hierarchy(random_graph, sigma=0.95)
        sizes = h.sizes
        # Every peeled level except the last shrank by at least 5%.
        for i in range(1, len(sizes) - 1):
            assert sizes[i] <= 0.95 * sizes[i - 1]

    def test_smaller_sigma_stops_earlier(self):
        g = random_tree(400, seed=1)
        strict = build_hierarchy(g, sigma=0.99)
        lax = build_hierarchy(g, sigma=0.5)
        assert lax.k <= strict.k

    def test_sigma_out_of_range_rejected(self, triangle):
        with pytest.raises(IndexBuildError):
            build_hierarchy(triangle, sigma=0.0)
        with pytest.raises(IndexBuildError):
            build_hierarchy(triangle, sigma=1.5)


class TestExplicitK:
    def test_exact_level_count(self, random_graph):
        h = build_hierarchy(random_graph, k=3)
        assert h.k == 3
        assert len(h.levels) == 2

    def test_k_too_small_rejected(self, triangle):
        with pytest.raises(IndexBuildError):
            build_hierarchy(triangle, k=1)

    def test_k_larger_than_h_stops_at_empty(self):
        g = path_graph(4)
        h = build_hierarchy(g, k=50)
        assert h.gk.num_vertices == 0
        assert h.k < 50

    def test_k_and_full_mutually_exclusive(self, triangle):
        with pytest.raises(IndexBuildError):
            build_hierarchy(triangle, k=3, full=True)


class TestFullHierarchy:
    def test_decomposes_completely(self, random_graph):
        h = build_hierarchy(random_graph, full=True)
        assert h.is_full
        assert h.gk.num_vertices == 0
        assert len(h.level_of) == random_graph.num_vertices

    def test_every_vertex_below_k(self, random_graph):
        h = build_hierarchy(random_graph, full=True)
        assert all(h.level(v) < h.k for v in random_graph.vertices())


class TestAccessors:
    def test_level_of_unknown_vertex_raises(self, triangle):
        h = build_hierarchy(triangle)
        with pytest.raises(IndexBuildError):
            h.level(42)

    def test_removal_adjacency_of_gk_vertex_raises(self):
        g = erdos_renyi(30, 120, seed=2)
        h = build_hierarchy(g, k=2)
        gk_vertex = next(iter(h.gk.vertices()))
        with pytest.raises(IndexBuildError):
            h.removal_adjacency(gk_vertex)

    def test_level_vertices_bounds(self, random_graph):
        h = build_hierarchy(random_graph)
        with pytest.raises(IndexBuildError):
            h.level_vertices(0)
        with pytest.raises(IndexBuildError):
            h.level_vertices(h.k)

    def test_validate_level_numbers_passes(self, random_graph):
        build_hierarchy(random_graph).validate_level_numbers()

    def test_input_graph_not_mutated(self, random_graph):
        before = random_graph.copy()
        build_hierarchy(random_graph)
        assert random_graph == before

    def test_sizes_starts_with_input_size(self, random_graph):
        h = build_hierarchy(random_graph)
        assert h.sizes[0] == random_graph.size
        assert len(h.sizes) == h.k


class TestPrescribedLevels:
    def test_respects_given_sets(self):
        g = path_graph(5)
        h = build_hierarchy_with_levels(g, [[0, 2, 4]])
        assert h.level_vertices(1) == [0, 2, 4]
        assert sorted(h.gk.vertices()) == [1, 3]

    def test_rejects_dependent_set(self):
        g = path_graph(5)
        with pytest.raises(IndexBuildError, match="independent"):
            build_hierarchy_with_levels(g, [[0, 1]])

    def test_rejects_unknown_vertex(self):
        g = path_graph(3)
        with pytest.raises(IndexBuildError):
            build_hierarchy_with_levels(g, [[99]])

    def test_random_strategy_seeded(self, random_graph):
        a = build_hierarchy(random_graph, is_strategy="random", seed=7)
        b = build_hierarchy(random_graph, is_strategy="random", seed=7)
        assert a.level_of == b.level_of

    def test_unknown_strategy_rejected(self, triangle):
        with pytest.raises(IndexBuildError):
            build_hierarchy(triangle, is_strategy="bogus")
