"""Unit tests for directed IS-LABEL (§8.2)."""

import math
import random

import pytest

from repro.baselines.dijkstra import dijkstra_digraph_distance
from repro.core.directed import DirectedISLabelIndex
from repro.errors import IndexBuildError, QueryError
from repro.graph.digraph import DiGraph


def _random_digraph(n, arcs, seed, max_weight=4):
    rng = random.Random(seed)
    dg = DiGraph()
    for v in range(n):
        dg.add_vertex(v)
    placed = 0
    while placed < arcs:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not dg.has_edge(u, v):
            dg.add_edge(u, v, rng.randint(1, max_weight))
            placed += 1
    return dg


@pytest.fixture(scope="module")
def digraph():
    return _random_digraph(120, 420, seed=61)


@pytest.fixture(scope="module")
def index(digraph):
    return DirectedISLabelIndex.build(digraph)


class TestCorrectness:
    def test_matches_directed_dijkstra(self, digraph, index):
        rng = random.Random(3)
        for _ in range(150):
            s, t = rng.randrange(120), rng.randrange(120)
            assert index.distance(s, t) == dijkstra_digraph_distance(digraph, s, t)

    def test_asymmetry_preserved(self):
        dg = DiGraph([(0, 1, 2), (1, 2, 2)])
        index = DirectedISLabelIndex.build(dg)
        assert index.distance(0, 2) == 4
        assert math.isinf(index.distance(2, 0))

    def test_self_distance(self, index):
        assert index.distance(7, 7) == 0

    def test_unknown_vertex_raises(self, index):
        with pytest.raises(QueryError):
            index.distance(0, 10**9)

    def test_full_hierarchy_mode(self, digraph):
        index = DirectedISLabelIndex.build(digraph, full=True)
        rng = random.Random(5)
        for _ in range(80):
            s, t = rng.randrange(120), rng.randrange(120)
            assert index.distance(s, t) == dijkstra_digraph_distance(digraph, s, t)

    def test_explicit_k(self, digraph):
        index = DirectedISLabelIndex.build(digraph, k=2)
        assert index.k == 2
        rng = random.Random(7)
        for _ in range(80):
            s, t = rng.randrange(120), rng.randrange(120)
            assert index.distance(s, t) == dijkstra_digraph_distance(digraph, s, t)

    def test_k_too_small_rejected(self, digraph):
        with pytest.raises(IndexBuildError):
            DirectedISLabelIndex.build(digraph, k=1)


class TestLabels:
    def test_out_label_self_entry(self, index):
        label = dict(index.out_label(3))
        assert label[3] == 0

    def test_labels_sorted(self, index):
        for v in (1, 2, 3):
            assert index.out_label(v) == sorted(index.out_label(v))
            assert index.in_label(v) == sorted(index.in_label(v))

    def test_out_entries_upper_bound_forward_distance(self, digraph, index):
        for v in range(0, 120, 17):
            for w, d in index.out_label(v):
                assert d >= dijkstra_digraph_distance(digraph, v, w)

    def test_in_entries_upper_bound_backward_distance(self, digraph, index):
        for v in range(0, 120, 17):
            for w, d in index.in_label(v):
                assert d >= dijkstra_digraph_distance(digraph, w, v)

    def test_label_entries_counter(self, index):
        assert index.label_entries > 0


class TestReachability:
    def test_reachable_matches_distance(self, digraph, index):
        rng = random.Random(9)
        for _ in range(60):
            s, t = rng.randrange(120), rng.randrange(120)
            expected = not math.isinf(dijkstra_digraph_distance(digraph, s, t))
            assert index.reachable(s, t) == expected

    def test_chain_reachability(self):
        dg = DiGraph([(i, i + 1, 1) for i in range(10)])
        index = DirectedISLabelIndex.build(dg)
        assert index.reachable(0, 10)
        assert not index.reachable(10, 0)
