"""Unit tests for label algebra and Equation 1."""

import math

from repro.core.labels import (
    eq1_distance,
    eq1_distance_argmin,
    intersect_labels,
    label_nbytes,
    sort_label,
    vertex_set,
)


def test_sort_label():
    assert sort_label({5: 1, 2: 9, 3: 0}) == [(2, 9), (3, 0), (5, 1)]


def test_vertex_set_extraction():
    assert vertex_set([(2, 9), (3, 0)]) == [2, 3]


class TestIntersection:
    def test_common_ancestors(self):
        a = [(1, 5), (3, 2), (7, 1)]
        b = [(2, 4), (3, 3), (7, 9)]
        assert list(intersect_labels(a, b)) == [(3, 2, 3), (7, 1, 9)]

    def test_disjoint(self):
        assert list(intersect_labels([(1, 1)], [(2, 2)])) == []

    def test_empty_inputs(self):
        assert list(intersect_labels([], [(1, 1)])) == []
        assert list(intersect_labels([], [])) == []

    def test_identical_labels(self):
        a = [(1, 2), (4, 0)]
        assert list(intersect_labels(a, a)) == [(1, 2, 2), (4, 0, 0)]


class TestEquation1:
    def test_minimum_over_common(self):
        a = [(1, 5), (3, 2), (7, 1)]
        b = [(3, 3), (7, 9)]
        assert eq1_distance(a, b) == 5  # via 3: 2+3

    def test_empty_intersection_is_inf(self):
        assert eq1_distance([(1, 0)], [(2, 0)]) == math.inf

    def test_argmin_vertex(self):
        a = [(1, 5), (3, 2), (7, 1)]
        b = [(1, 1), (3, 3), (7, 9)]
        dist, w = eq1_distance_argmin(a, b)
        assert (dist, w) == (5, 3)

    def test_argmin_empty(self):
        dist, w = eq1_distance_argmin([(1, 0)], [])
        assert math.isinf(dist) and w == -1

    def test_self_query_through_shared_vertex(self):
        label = [(9, 0)]
        assert eq1_distance(label, label) == 0


def test_label_nbytes():
    assert label_nbytes([(1, 2), (3, 4)]) == 32
    assert label_nbytes([]) == 0
