"""Unit tests for index save/load."""

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.index import ISLabelIndex
from repro.core.paths import PathReconstructor, path_length
from repro.core.serialization import load_index, save_index
from repro.errors import StorageError
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.graph.graph import Graph

from tests.conftest import random_pairs


@pytest.fixture(scope="module")
def graph():
    return ensure_connected(erdos_renyi(90, 220, seed=81, max_weight=4), seed=81)


class TestRoundTrip:
    def test_distance_queries_survive(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "index.islx"
        written = save_index(index, path)
        assert written == path.stat().st_size
        loaded = load_index(path)
        for s, t in random_pairs(graph, 60, seed=1):
            assert loaded.distance(s, t) == dijkstra_distance(graph, s, t)

    def test_metadata_survives(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "index.islx"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.k == index.k
        assert loaded.hierarchy.sizes == index.hierarchy.sizes
        assert loaded.hierarchy.sigma == index.hierarchy.sigma
        assert loaded.stats.label_entries == index.stats.label_entries
        assert loaded.gk.num_edges == index.gk.num_edges

    def test_labels_identical(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "index.islx"
        save_index(index, path)
        loaded = load_index(path)
        for v in list(graph.vertices())[::5]:
            assert loaded.label(v) == index.label(v)

    def test_path_mode_round_trip(self, graph, tmp_path):
        index = ISLabelIndex.build(graph, with_paths=True)
        path = tmp_path / "index.islx"
        save_index(index, path)
        loaded = load_index(path)
        reconstructor = PathReconstructor(loaded)
        for s, t in random_pairs(graph, 40, seed=2):
            dist, p = reconstructor.shortest_path(s, t)
            assert dist == dijkstra_distance(graph, s, t)
            if p is not None:
                assert path_length(graph, p) == dist

    def test_full_hierarchy_round_trip(self, tmp_path):
        g = Graph([(0, 1, 2), (1, 2, 2), (2, 3, 1), (3, 0, 4)])
        index = ISLabelIndex.build(g, full=True)
        path = tmp_path / "full.islx"
        save_index(index, path)
        loaded = load_index(path)
        for s in range(4):
            for t in range(4):
                assert loaded.distance(s, t) == index.distance(s, t)


class TestFailureInjection:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.islx"
        path.write_bytes(b"XXXX" + b"\x00" * 64)
        with pytest.raises(StorageError):
            load_index(path)

    def test_truncated_file(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "trunc.islx"
        save_index(index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) * 2 // 3])
        with pytest.raises(StorageError):
            load_index(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.islx"
        path.write_bytes(b"")
        with pytest.raises(StorageError):
            load_index(path)

    def test_wrong_version(self, graph, tmp_path):
        index = ISLabelIndex.build(graph)
        path = tmp_path / "ver.islx"
        save_index(index, path)
        data = bytearray(path.read_bytes())
        data[4] = 99  # version halfword
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            load_index(path)


class TestTruncationDiagnostics:
    """Truncated/empty artifacts must fail as StorageError naming the
    path and the observed size — never a raw struct.error."""

    def test_empty_stream_file_names_path_and_size(self, tmp_path):
        path = tmp_path / "empty.islx"
        path.write_bytes(b"")
        with pytest.raises(StorageError) as excinfo:
            load_index(path)
        message = str(excinfo.value)
        assert "empty.islx" in message
        assert "0 bytes" in message

    def test_short_header_names_path_and_size(self, tmp_path):
        path = tmp_path / "short.islx"
        path.write_bytes(b"ISLX\x01")  # 5 of the header's bytes
        with pytest.raises(StorageError) as excinfo:
            load_index(path)
        message = str(excinfo.value)
        assert "short.islx" in message and "5 bytes" in message

    def test_empty_directed_file_names_path_and_size(self, tmp_path):
        from repro.core.serialization import load_directed_index

        path = tmp_path / "empty.isld"
        path.write_bytes(b"")
        with pytest.raises(StorageError) as excinfo:
            load_directed_index(path)
        assert "empty.isld" in str(excinfo.value)
        assert "0 bytes" in str(excinfo.value)

    def test_truncated_dynamic_header_names_path(self, tmp_path):
        from repro.core.serialization import load_dynamic_index

        path = tmp_path / "short.isly"
        path.write_bytes(b"ISLY")
        with pytest.raises(StorageError) as excinfo:
            load_dynamic_index(path)
        assert "short.isly" in str(excinfo.value)
        assert "4 bytes" in str(excinfo.value)

    def test_truncated_snapshot_sniff_branch_names_path_and_size(self, tmp_path):
        # Starts with the snapshot magic, so the magic-sniff branch takes
        # it — and must then report the truncation, not crash unpacking.
        path = tmp_path / "short.snap"
        path.write_bytes(b"ISNP\x01\x00")
        with pytest.raises(StorageError) as excinfo:
            load_index(path)
        message = str(excinfo.value)
        assert "short.snap" in message
        assert "6 bytes" in message

    def test_corrupt_shard_manifest_rejected(self, graph, tmp_path):
        from repro.core.serialization import save_snapshot

        index = ISLabelIndex.build(graph)
        shard_dir = tmp_path / "m.shards"
        save_snapshot(index, shard_dir, shards=3)
        (shard_dir / "manifest.json").write_text("{not json")
        with pytest.raises(StorageError, match="manifest"):
            load_index(shard_dir)
        (shard_dir / "manifest.json").write_text("{}")
        with pytest.raises(StorageError, match="manifest"):
            load_index(shard_dir)
