#!/usr/bin/env python3
"""Directed distances and reachability on a citation-style DAG (§8.2, §9).

Citations point backwards in time, so "can paper A reach paper B" is a
directed reachability question and "how many citation hops" a directed
distance.  The §8.2 directed IS-LABEL index answers both; §9 notes that
the directed index "simultaneously solves the fundamental problem of
reachability".

Run:  python examples/directed_reachability.py
"""

import math
import random
import time

from repro import DiGraph, DirectedISLabelIndex
from repro.baselines.dijkstra import dijkstra_digraph_distance


def citation_graph(papers: int, seed: int) -> DiGraph:
    """Preferential-attachment citations: newer papers cite older ones."""
    rng = random.Random(seed)
    dg = DiGraph()
    dg.add_vertex(0)
    cited_pool = [0]
    for paper in range(1, papers):
        dg.add_vertex(paper)
        for _ in range(rng.randint(1, 4)):
            target = rng.choice(cited_pool) if rng.random() < 0.7 else rng.randrange(paper)
            dg.merge_edge(paper, target, 1)
            cited_pool.append(target)
        cited_pool.append(paper)
    return dg


def main() -> None:
    papers = 3000
    dg = citation_graph(papers, seed=33)
    print(f"citation graph: {dg.num_vertices} papers, {dg.num_edges} citations")

    started = time.perf_counter()
    index = DirectedISLabelIndex.build(dg)
    print(
        f"directed index built in {time.perf_counter() - started:.2f}s "
        f"(k={index.k}, in+out label entries={index.label_entries})"
    )

    rng = random.Random(5)
    queries = [(rng.randrange(papers), rng.randrange(papers)) for _ in range(400)]

    started = time.perf_counter()
    answers = [index.distance(s, t) for s, t in queries]
    index_time = time.perf_counter() - started

    started = time.perf_counter()
    reference = [dijkstra_digraph_distance(dg, s, t) for s, t in queries]
    online_time = time.perf_counter() - started
    assert answers == reference

    reachable = sum(1 for d in answers if not math.isinf(d))
    hops = [d for d in answers if not math.isinf(d)]
    print(
        f"400 directed queries: {1000 * index_time / 400:.3f} ms/query vs "
        f"{1000 * online_time / 400:.3f} ms online "
        f"({online_time / index_time:.0f}x speedup)"
    )
    print(
        f"reachability: {reachable}/400 pairs connected "
        f"(newer papers reach older ones); avg citation depth "
        f"{sum(hops) / len(hops):.2f}"
    )

    # Directionality in action: pick a connected pair and flip it.
    s, t = next(
        (s, t) for (s, t), d in zip(queries, answers)
        if not math.isinf(d) and s != t
    )
    print(
        f"paper {s} -> {t}: reachable={index.reachable(s, t)}; "
        f"reverse {t} -> {s}: reachable={index.reachable(t, s)}"
    )


if __name__ == "__main__":
    main()
