#!/usr/bin/env python3
"""The I/O-efficient construction pipeline of §6, step by step.

Runs Algorithm 2 (external independent set), Algorithm 3 (external
reduction) and Algorithm 4 (block nested-loop labeling) on a simulated
block device with a deliberately tiny memory budget, reporting the I/O
traffic of every stage and verifying each against its in-memory twin.

The closing act covers the other side of the disk story: once built, the
labels are *static*, and the zero-copy snapshot path (`save_snapshot` +
`load_index(..., engine="mmap")`) serves them straight from the page
cache — the §6.2 on-disk layout turned into a memory-mapped serving
artifact instead of a simulated cost model.

Run:  python examples/external_memory.py
"""

import os
import tempfile
import time

from repro import ISLabelIndex, load_index, save_snapshot
from repro.core.hierarchy import build_hierarchy
from repro.core.independent_set import external_independent_set, greedy_independent_set
from repro.core.labeling import external_top_down_labels, top_down_labels
from repro.core.reduce import external_reduce, reduce_graph
from repro.extmem import BlockDevice, CostModel, ExternalGraph
from repro.extmem.extgraph import pack_row
from repro.graph.generators import ensure_connected, powerlaw_configuration


def main() -> None:
    graph = ensure_connected(
        powerlaw_configuration(1200, 2.3, seed=55, min_degree=1), seed=55
    )
    # 1 KB blocks, 16 KB of "main memory": the graph does not fit.
    model = CostModel(block_size=1024, memory=16 * 1024)
    device = BlockDevice(model)
    on_disk = ExternalGraph.from_graph(device, graph, "G1")
    print(
        f"G1 on disk: {on_disk.num_vertices} vertices, {on_disk.num_edges} "
        f"edges, {on_disk.data.num_blocks} blocks of {model.block_size} B "
        f"(memory budget {model.memory} B = {model.blocks_in_memory} blocks)"
    )

    # --- Algorithm 2: I/O-efficient independent set -------------------
    device.stats.reset()
    adj_l1, _ = external_independent_set(device, on_disk, excluded_buffer_capacity=400)
    selected = [v for v, _ in adj_l1.rows()]
    mem_selected, mem_adj = greedy_independent_set(graph)
    assert set(selected) == set(mem_selected)
    print(
        f"Algorithm 2: |L1| = {len(selected)} "
        f"({device.stats.total_ios} block I/Os; matches in-memory greedy)"
    )

    # --- Algorithm 3: I/O-efficient reduction -------------------------
    device.stats.reset()
    adj_file = device.create("ADJ_L1")
    for v in sorted(mem_adj):
        adj_file.append(pack_row(v, mem_adj[v]))
    adj_file.close()
    adj_graph = ExternalGraph(device, adj_file, len(mem_adj), 0)
    g2_disk = external_reduce(device, on_disk, set(mem_selected), adj_graph, "G2")
    g2_mem = reduce_graph(graph, mem_selected, mem_adj)
    assert g2_disk.to_graph() == g2_mem
    print(
        f"Algorithm 3: |G2| = {g2_disk.num_vertices} vertices, "
        f"{g2_disk.num_edges} edges "
        f"({device.stats.total_ios} block I/Os; distances preserved)"
    )

    # --- Algorithm 4: block nested-loop labeling ----------------------
    hierarchy = build_hierarchy(graph)
    label_device = BlockDevice(model)
    external_labels, io = external_top_down_labels(
        hierarchy, label_device, block_vertices=64
    )
    in_memory_labels, _ = top_down_labels(hierarchy)
    assert external_labels == in_memory_labels
    total_entries = sum(len(l) for l in external_labels.values())
    print(
        f"Algorithm 4: {total_entries} label entries across "
        f"{len(external_labels)} vertices "
        f"({io.total_ios} block I/Os for the BNL join; matches in-memory)"
    )
    print(
        f"simulated label-join time at {model.io_latency_s * 1000:.0f} ms/IO: "
        f"{model.time_for(io.total_ios):.1f} s"
    )

    # --- Serving from disk: the zero-copy snapshot path ---------------
    index = ISLabelIndex.build(graph)
    vertices = sorted(graph.vertices())
    probe = [(vertices[0], vertices[-1]), (vertices[3], vertices[-7])]
    expected = index.distances(probe)
    with tempfile.TemporaryDirectory() as tmp:
        snap = os.path.join(tmp, "graph.snap")
        nbytes = save_snapshot(index, snap)
        started = time.perf_counter()
        served = load_index(snap, engine="mmap")
        elapsed = time.perf_counter() - started
        assert served.distances(probe) == expected
        print(
            f"snapshot serving: {nbytes} B memmapped in {elapsed * 1000:.1f} ms "
            f"(engine={served.engine}; labels fault in lazily, answers "
            "bit-identical)"
        )


if __name__ == "__main__":
    main()
