#!/usr/bin/env python3
"""Quickstart: build an IS-LABEL index and answer distance queries.

Run:  python examples/quickstart.py
"""

from repro import Graph, ISLabelIndex, PathReconstructor


def main() -> None:
    # A small weighted undirected graph (ids are arbitrary integers).
    graph = Graph(
        [
            (1, 2, 4),
            (1, 3, 1),
            (3, 2, 2),
            (2, 4, 5),
            (3, 4, 8),
            (4, 5, 1),
            (2, 5, 7),
        ]
    )

    # Build the index.  sigma=0.95 is the paper's default stopping rule;
    # storage="disk" would simulate the paper's disk-resident labels.
    index = ISLabelIndex.build(graph)
    print(f"built: {index!r}")
    print(f"k = {index.k}, G_k has {index.gk.num_vertices} vertices")

    # Point-to-point distances (exact, == Dijkstra).
    for s, t in [(1, 5), (1, 4), (5, 3)]:
        print(f"dist({s}, {t}) = {index.distance(s, t)}")

    # The cost-split report of the paper's Tables 4/5.
    report = index.query(1, 5)
    print(
        f"query(1, 5): type={report.query_type}, "
        f"bi-Dijkstra used={report.used_bidijkstra}, "
        f"label I/Os={report.label_ios}"
    )

    # Shortest paths need an index built with path bookkeeping (§8.1).
    path_index = ISLabelIndex.build(graph, with_paths=True)
    dist, path = PathReconstructor(path_index).shortest_path(1, 5)
    print(f"shortest path 1 -> 5: {path} (length {dist})")

    # Vertex labels are inspectable: (ancestor, distance-bound) pairs.
    print(f"label(1) = {index.label(1)}")


if __name__ == "__main__":
    main()
