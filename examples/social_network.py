#!/usr/bin/env python3
"""Degrees-of-separation queries on a synthetic social network.

The paper's motivating workloads include social network analysis: "how far
apart are these two users?".  This example builds a wiki-Talk-style graph
(power-law degrees plus a couple of celebrity superhubs), indexes it, and
compares IS-LABEL against online bidirectional Dijkstra on a batch of
friend-distance queries.

Run:  python examples/social_network.py
"""

import time

from repro import ISLabelIndex
from repro.baselines.dijkstra import bidirectional_dijkstra
from repro.graph.generators import attach_hubs, ensure_connected, powerlaw_configuration
from repro.graph.stats import graph_stats
from repro.workloads.queries import random_query_pairs


def main() -> None:
    # A 6000-user network: heavy-tailed friendships + 2 celebrity accounts.
    graph = powerlaw_configuration(
        6000, 2.3, seed=42, min_degree=1, max_degree=500
    )
    attach_hubs(graph, 2, 2000, seed=43)
    ensure_connected(graph, seed=44)

    stats = graph_stats(graph)
    print(
        f"network: {stats.num_vertices} users, {stats.num_edges} friendships, "
        f"max degree {stats.max_degree}"
    )

    started = time.perf_counter()
    index = ISLabelIndex.build(graph)
    print(
        f"index built in {time.perf_counter() - started:.2f}s: "
        f"k={index.k}, |V_Gk|={index.gk.num_vertices}, "
        f"avg label entries={index.stats.avg_label_entries:.1f}"
    )

    queries = random_query_pairs(graph, 500, seed=7)

    started = time.perf_counter()
    separations = [index.distance(s, t) for s, t in queries]
    index_time = time.perf_counter() - started

    started = time.perf_counter()
    reference = [bidirectional_dijkstra(graph, s, t) for s, t in queries]
    online_time = time.perf_counter() - started

    assert separations == reference, "index answers must be exact"
    print(
        f"500 queries: IS-LABEL {1000 * index_time / 500:.3f} ms/query, "
        f"online bi-Dijkstra {1000 * online_time / 500:.3f} ms/query "
        f"({online_time / index_time:.0f}x speedup)"
    )

    finite = [d for d in separations if d != float("inf")]
    print(
        f"average separation: {sum(finite) / len(finite):.2f} hops "
        f"(the small-world effect: superhubs keep everyone close)"
    )


if __name__ == "__main__":
    main()
