#!/usr/bin/env python3
"""Maintaining the index while the graph changes (§8.3).

Models a collaboration network that keeps gaining members: new vertices are
inserted with the paper's lazy label-patching scheme, query quality is
monitored, and the index is rebuilt once staleness passes a threshold —
exactly the "rebuild the index periodically" regime the paper prescribes.

Run:  python examples/dynamic_updates.py
"""

import random

from repro import DynamicISLabelIndex
from repro.baselines.dijkstra import dijkstra_distance
from repro.graph.generators import ensure_connected, powerlaw_configuration
from repro.workloads.queries import random_query_pairs

REBUILD_THRESHOLD = 25


def quality(dyn: DynamicISLabelIndex, samples: int, seed: int) -> float:
    """Fraction of sampled queries answered exactly."""
    pairs = random_query_pairs(dyn.graph, samples, seed=seed)
    exact = sum(
        dyn.distance(s, t) == dijkstra_distance(dyn.graph, s, t) for s, t in pairs
    )
    return exact / samples


def main() -> None:
    rng = random.Random(21)
    base = ensure_connected(
        powerlaw_configuration(1500, 2.3, seed=20, min_degree=1), seed=20
    )
    dyn = DynamicISLabelIndex(base)
    print(
        f"initial index: {base.num_vertices} members, k={dyn.index.k}, "
        f"exactness={quality(dyn, 150, seed=1):.1%}"
    )

    next_id = 100_000
    for wave in range(1, 4):
        # A wave of 20 new members joining with 1-4 collaborations each.
        for _ in range(20):
            members = sorted(dyn.graph.vertices())
            links = {
                v: rng.randint(1, 3)
                for v in rng.sample(members, rng.randint(1, 4))
            }
            dyn.insert_vertex(next_id, links)
            next_id += 1
        print(
            f"wave {wave}: {dyn.graph.num_vertices} members, "
            f"staleness={dyn.staleness}, "
            f"exactness={quality(dyn, 150, seed=wave + 1):.1%} "
            f"(answers are never underestimates)"
        )
        if dyn.staleness >= REBUILD_THRESHOLD:
            dyn.rebuild()
            print(
                f"  -> periodic rebuild: staleness reset, "
                f"exactness={quality(dyn, 150, seed=90 + wave):.1%}"
            )

    # Members may also leave; deletions flip the index to approximate mode.
    leaver = sorted(dyn.graph.vertices())[10]
    dyn.delete_vertex(leaver)
    print(
        f"after a departure: approximate={dyn.approximate} "
        f"(call rebuild() to restore guarantees)"
    )
    dyn.rebuild()
    print(f"final rebuild: exactness={quality(dyn, 150, seed=99):.1%}")


if __name__ == "__main__":
    main()
