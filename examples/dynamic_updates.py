#!/usr/bin/env python3
"""Maintaining the index while the graph changes (§8.3) — on the fast engine.

Models a collaboration network that keeps gaining members.  New vertices
are inserted with the paper's lazy label-patching scheme, and — this is
the part the engine layer adds — every update reports the set of touched
labels to the packed-array query engine, which re-packs *only those
labels* and repairs its ``G_k`` structures in place.  The index therefore
keeps serving queries from the fast path between updates instead of
falling back to the dict reference:

* ``DynamicISLabelIndex(graph)`` builds with the default ``engine="fast"``;
* ``insert_vertex`` / ``delete_vertex`` apply §8.3 maintenance and call
  ``index.invalidate_labels(dirty)`` — an incremental invalidation that
  keeps the engine's frozen arrays alive (watch ``engine.frozen`` below);
* the dict reference engine (``engine="dict"``) runs the identical label
  maintenance, so it doubles as a correctness oracle: both must agree on
  every query, which this script checks while it runs;
* deletions mark the index ``approximate`` and a periodic ``rebuild()``
  restores full exactness guarantees — the paper's prescribed regime.

Run:  python examples/dynamic_updates.py
"""

import random

from repro import DynamicISLabelIndex
from repro.baselines.dijkstra import dijkstra_distance
from repro.graph.generators import ensure_connected, powerlaw_configuration
from repro.workloads.queries import random_query_pairs

REBUILD_THRESHOLD = 25


def quality(dyn: DynamicISLabelIndex, samples: int, seed: int) -> float:
    """Fraction of sampled queries answered exactly (vs the Dijkstra oracle)."""
    pairs = random_query_pairs(dyn.graph, samples, seed=seed)
    exact = sum(
        dyn.distance(s, t) == dijkstra_distance(dyn.graph, s, t) for s, t in pairs
    )
    return exact / samples


def agreement(dyn: DynamicISLabelIndex, oracle: DynamicISLabelIndex, seed: int) -> bool:
    """Fast engine vs dict reference on a fresh query sample."""
    pairs = random_query_pairs(dyn.graph, 100, seed=seed)
    return dyn.distances(pairs) == [oracle.distance(s, t) for s, t in pairs]


def main() -> None:
    rng = random.Random(21)
    base = ensure_connected(
        powerlaw_configuration(1500, 2.3, seed=20, min_degree=1), seed=20
    )
    # Two instances running the same §8.3 maintenance: the serving index on
    # the packed fast engine, and the dict reference as correctness oracle.
    dyn = DynamicISLabelIndex(base)
    oracle = DynamicISLabelIndex(base, engine="dict")
    engine = dyn.index._fast
    dyn.distance(*sorted(base.vertices())[:2])  # first query freezes the arrays
    print(
        f"initial index: {base.num_vertices} members, k={dyn.index.k}, "
        f"engine={dyn.engine} (search_mode={dyn.index.search_mode}), "
        f"exactness={quality(dyn, 150, seed=1):.1%}"
    )

    next_id = 100_000
    for wave in range(1, 4):
        # A wave of 20 new members joining with 1-4 collaborations each.
        for _ in range(20):
            members = sorted(dyn.graph.vertices())
            links = {
                v: rng.randint(1, 3)
                for v in rng.sample(members, rng.randint(1, 4))
            }
            dyn.insert_vertex(next_id, dict(links))
            oracle.insert_vertex(next_id, dict(links))
            next_id += 1
        print(
            f"wave {wave}: {dyn.graph.num_vertices} members, "
            f"staleness={dyn.staleness}, "
            f"engine still frozen={engine.frozen} (incremental invalidation), "
            f"exactness={quality(dyn, 150, seed=wave + 1):.1%} "
            f"(answers are never underestimates)"
        )
        print(f"  fast == dict on 100 sampled queries: {agreement(dyn, oracle, wave)}")
        if dyn.staleness >= REBUILD_THRESHOLD:
            dyn.rebuild()
            oracle.rebuild()
            engine = dyn.index._fast
            print(
                f"  -> periodic rebuild: staleness reset, "
                f"exactness={quality(dyn, 150, seed=90 + wave):.1%}"
            )

    # Members may also leave; deletions flip the index to approximate mode.
    leaver = sorted(dyn.graph.vertices())[10]
    dyn.delete_vertex(leaver)
    print(
        f"after a departure: approximate={dyn.approximate} "
        f"(call rebuild() to restore guarantees)"
    )
    dyn.rebuild()
    print(f"final rebuild: exactness={quality(dyn, 150, seed=99):.1%}")


if __name__ == "__main__":
    main()
