#!/usr/bin/env python3
"""Route-length queries on a road-style grid with shortest-path output.

Roads are where hierarchy-based distance indexes came from (contraction
hierarchies, §3.1); IS-LABEL works there too.  This example builds a city
grid with random segment lengths, answers route-length queries, and prints
an actual turn-by-turn shortest path via the §8.1 reconstruction.

Run:  python examples/road_network.py
"""

import time

from repro import ISLabelIndex, PathReconstructor
from repro.baselines.dijkstra import dijkstra_path
from repro.core.paths import path_length
from repro.graph.generators import grid_graph
from repro.workloads.queries import random_query_pairs

ROWS, COLS = 40, 50


def intersection(v: int) -> str:
    return f"({v // COLS},{v % COLS})"


def main() -> None:
    # 40x50 street grid; segment lengths 1..9 (think travel minutes).
    city = grid_graph(ROWS, COLS, seed=9, max_weight=9)
    print(f"city grid: {city.num_vertices} intersections, {city.num_edges} segments")

    started = time.perf_counter()
    index = ISLabelIndex.build(city, with_paths=True)
    print(
        f"index built in {time.perf_counter() - started:.2f}s "
        f"(k={index.k}, |V_Gk|={index.gk.num_vertices})"
    )
    reconstructor = PathReconstructor(index)

    # One detailed route.
    source, target = 0, ROWS * COLS - 1  # opposite corners
    dist, route = reconstructor.shortest_path(source, target)
    ref_dist, _ = dijkstra_path(city, source, target)
    assert dist == ref_dist and path_length(city, route) == dist
    corners = " -> ".join(intersection(v) for v in route[:6])
    print(
        f"route {intersection(source)} -> {intersection(target)}: "
        f"{dist} minutes over {len(route) - 1} segments"
    )
    print(f"  first hops: {corners} ...")

    # Batch routing throughput.
    queries = random_query_pairs(city, 300, seed=11)
    started = time.perf_counter()
    for s, t in queries:
        index.distance(s, t)
    per_query = 1000 * (time.perf_counter() - started) / len(queries)
    print(f"300 route-length queries: {per_query:.3f} ms/query")


if __name__ == "__main__":
    main()
