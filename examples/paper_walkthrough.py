#!/usr/bin/env python3
"""Replay the paper's running example (Figures 1-3, Examples 1-6).

Builds the 9-vertex graph of Figure 1 with the paper's exact level
assignment, prints the hierarchy, the augmenting edges, every vertex label
of Figure 2(b), and the query traces of Examples 4-6.

Run:  python examples/paper_walkthrough.py
"""

from repro import ISLabelIndex
from repro.core.hierarchy import build_hierarchy_with_levels
from repro.core.labeling import top_down_labels
from repro.workloads.paper_example import (
    EXAMPLE_QUERIES,
    FIGURE2_LABELS,
    PAPER_LEVELS,
    VERTEX_IDS,
    VERTEX_NAMES,
    paper_example_graph,
)


def main() -> None:
    graph = paper_example_graph()
    print("Figure 1 graph: 9 vertices a..i, unit weights except ω(e,f)=3")
    for u, v, w in sorted(graph.edges()):
        print(f"  ({VERTEX_NAMES[u]}, {VERTEX_NAMES[v]})  weight {w}")

    levels = [[VERTEX_IDS[c] for c in level] for level in PAPER_LEVELS]
    hierarchy = build_hierarchy_with_levels(graph, levels, with_hints=True)

    print("\nVertex hierarchy (the paper's level assignment):")
    for i, level in enumerate(PAPER_LEVELS, start=1):
        print(f"  L{i} = {{{', '.join(level)}}}")
    print(f"  k = {hierarchy.k} (full decomposition, G_{hierarchy.k} empty)")

    print("\nAugmenting edges created during peeling (Example 1):")
    for (a, b), mid in sorted(hierarchy.hints.items()):
        print(
            f"  ({VERTEX_NAMES[a]}, {VERTEX_NAMES[b]}) "
            f"via removed vertex {VERTEX_NAMES[mid]}"
        )

    print("\nVertex labels (Figure 2(b); label(f)'s g-entry per the erratum):")
    labels, _ = top_down_labels(hierarchy)
    for name in FIGURE2_LABELS:
        entries = sorted(
            (VERTEX_NAMES[w], d) for w, d in labels[VERTEX_IDS[name]].items()
        )
        rendered = ", ".join(f"({w},{d})" for w, d in entries)
        print(f"  label({name}) = {{{rendered}}}")

    print("\nQueries (Examples 4 and 6):")
    index = ISLabelIndex.build(graph, full=True)
    for s, t, expected in EXAMPLE_QUERIES:
        got = index.distance(VERTEX_IDS[s], VERTEX_IDS[t])
        status = "ok" if got == expected else "MISMATCH"
        print(f"  dist({s}, {t}) = {got}  (paper: {expected})  [{status}]")

    print("\nExample 5 (k = 2): labels of the L1 vertices")
    k2 = build_hierarchy_with_levels(graph, levels[:1])
    k2_labels, _ = top_down_labels(k2)
    for name in ("c", "f", "i"):
        entries = sorted(
            (VERTEX_NAMES[w], d) for w, d in k2_labels[VERTEX_IDS[name]].items()
        )
        rendered = ", ".join(f"({w},{d})" for w, d in entries)
        print(f"  label({name}) = {{{rendered}}}")


if __name__ == "__main__":
    main()
