"""E4 / Table 5 — query time by query type (btc and web).

Type 1: both endpoints in G_k (labels are implicit ``{(v,0)}`` — no label
I/O at all); Type 2: one endpoint in G_k (one label fetched); Type 3:
neither (two labels fetched).  Paper shape: Time (a) ≈ 0 / one fetch / two
fetches respectively, while Time (b) barely varies across types.
"""

import itertools

import pytest

from repro.bench import built_index, emit, fmt_ms, render_table, run_query_workload
from repro.bench.paper import TABLE5
from repro.workloads.queries import typed_query_pairs

DATASETS = ("btc", "web")
QUERIES_PER_TYPE = 300


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("query_type", (1, 2, 3))
def test_table5_single_type(benchmark, dataset, query_type):
    index = built_index(dataset, storage="disk")
    pairs = itertools.cycle(typed_query_pairs(index, 128, query_type, seed=11))
    result = benchmark(lambda: index.query(*next(pairs)))
    assert result.query_type == query_type


def test_table5_emit_table(benchmark):
    rows = []
    summaries = {}
    for name in DATASETS:
        index = built_index(name, storage="disk")
        for qtype in (1, 2, 3):
            pairs = typed_query_pairs(index, QUERIES_PER_TYPE, qtype, seed=11)
            summary = run_query_workload(index, pairs)
            summaries[(name, qtype)] = summary
            p_total, p_a, p_b = TABLE5[name][qtype]
            rows.append(
                (
                    name,
                    index.k,
                    qtype,
                    fmt_ms(summary.avg_total_ms),
                    fmt_ms(p_total),
                    fmt_ms(summary.avg_time_a_ms),
                    fmt_ms(p_a),
                    fmt_ms(summary.avg_time_b_ms),
                    fmt_ms(p_b),
                )
            )
    benchmark(lambda: summaries)

    emit(
        "table5",
        render_table(
            "Table 5 — query time by type (measured vs paper)",
            (
                "dataset",
                "k",
                "type",
                "total ms",
                "paper",
                "Time(a) ms",
                "paper",
                "Time(b) ms",
                "paper",
            ),
            rows,
        ),
    )

    for name in DATASETS:
        t1, t2, t3 = (summaries[(name, q)] for q in (1, 2, 3))
        assert t1.avg_time_a_ms == 0.0, "Type 1 reads no labels"
        assert 0.0 < t2.avg_time_a_ms < t3.avg_time_a_ms, (
            "Type 2 reads one label, Type 3 reads two"
        )
        assert t3.avg_total_ms > t1.avg_total_ms, (
            "label I/O makes Type 3 the most expensive, as in the paper"
        )
