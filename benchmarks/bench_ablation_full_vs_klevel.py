"""E10 (ablation) — full hierarchy (§4) vs k-level hierarchy (§5).

The paper motivates the k cut-off with two costs of deep hierarchies:
label size and construction time (§5: "as the number of levels h
increases, the label size ... also increases").  This ablation builds both
variants on the two most hierarchy-friendly datasets and quantifies the
trade-off: the full hierarchy answers from labels alone (no bi-Dijkstra)
but pays in label entries and build time.
"""

import pytest

from repro.bench import emit, fmt_bytes, fmt_ms, render_table, run_query_workload
from repro.core.index import ISLabelIndex
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs

DATASETS = ("google", "wikitalk")
QUERIES = 400
SCALE = 0.5


@pytest.mark.parametrize("dataset", DATASETS)
def test_ablation_full_build(benchmark, dataset):
    graph = load_dataset(dataset, SCALE)
    index = benchmark.pedantic(
        ISLabelIndex.build, args=(graph,), kwargs={"full": True}, rounds=1, iterations=1
    )
    assert index.hierarchy.is_full


def test_ablation_full_vs_klevel_emit(benchmark):
    rows = []
    measured = {}
    for name in DATASETS:
        graph = load_dataset(name, SCALE)
        pairs = random_query_pairs(graph, QUERIES, seed=29)
        k_index = ISLabelIndex.build(graph, sigma=0.95, storage="memory")
        f_index = ISLabelIndex.build(graph, full=True, storage="memory")
        k_summary = run_query_workload(k_index, pairs)
        f_summary = run_query_workload(f_index, pairs)
        # Same answers, by construction.
        for s, t in pairs[:50]:
            assert k_index.distance(s, t) == f_index.distance(s, t)
        measured[name] = (k_index, f_index, k_summary, f_summary)
        rows.append(
            (
                name,
                f"k={k_index.k}",
                f"h+1={f_index.k}",
                k_index.stats.label_entries,
                f_index.stats.label_entries,
                fmt_bytes(k_index.stats.label_bytes),
                fmt_bytes(f_index.stats.label_bytes),
                f"{k_index.stats.build_seconds:.2f}s",
                f"{f_index.stats.build_seconds:.2f}s",
                fmt_ms(k_summary.avg_time_b_ms),
                fmt_ms(f_summary.avg_time_b_ms),
            )
        )
    benchmark(lambda: measured)

    emit(
        "ablation_full_vs_klevel",
        render_table(
            "Ablation — k-level (σ=0.95) vs full hierarchy "
            "(label entries / bytes / build / query CPU)",
            (
                "dataset",
                "k",
                "full",
                "entries k",
                "entries full",
                "bytes k",
                "bytes full",
                "build k",
                "build full",
                "query k",
                "query full",
            ),
            rows,
        ),
    )

    for name in DATASETS:
        k_index, f_index, _, _ = measured[name]
        assert f_index.stats.label_entries >= k_index.stats.label_entries, (
            f"{name}: the full hierarchy cannot have fewer label entries"
        )
