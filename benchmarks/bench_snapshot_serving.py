"""Snapshot serving vs stream loading: cold load, per-worker RSS, QPS.

Measures what the zero-copy snapshot layer (`repro/core/snapshot.py`) buys
over the stream format on the generated dataset stand-ins:

* **cold-load time** — ``load_index(stream)`` parses every label entry and
  rebuilds dict structures; ``load_index(snapshot, engine="mmap")`` memmaps
  the frozen arrays and materializes nothing.  The acceptance gate demands
  a >= 20x speedup on the largest stand-in.
* **resident memory per extra worker** — each worker is a *spawned*
  subprocess (no fork copy-on-write flattery) that loads the index itself
  and reports its VmRSS; a null worker (imports only) is subtracted.  Mmap
  workers should sit near zero because label pages stay in the shared page
  cache, while dict/stream workers hold a private full copy.
* **multi-process batch QPS** — aggregate ``distances()`` throughput of
  the worker fleet, mmap/sharded vs stream-loaded.

Every loaded configuration (``fast`` from the stream file, ``mmap`` and
``sharded`` from the snapshot) is cross-checked for bit-identical
distances on the benchmark query set; disagreement aborts the run.

Emits ``BENCH_snapshot.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_snapshot_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_snapshot_serving.py --quick   # smoke
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import process_rss_kib
from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_index, save_snapshot
from repro.graph.generators import ensure_connected, grid_graph, random_weights
from repro.graph.graph import Graph
from repro.workloads.datasets import load_dataset

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Ordered smallest to largest; the last entry carries the gates.
FULL_DATASETS = [
    ("grid40", lambda: grid_graph(40, 40, seed=11, max_weight=8)),
    ("google", lambda: load_dataset("google", 1.0)),
    ("skitter", lambda: load_dataset("skitter", 1.0)),
    ("web", lambda: load_dataset("web", 1.0)),
]

QUICK_DATASETS = [
    ("grid10", lambda: grid_graph(10, 10, seed=11, max_weight=8)),
    ("google-s", lambda: load_dataset("google", 0.15)),
]

SHARDS = 8


# The RSS measurement (VmRSS + private RssAnon) is shared with the CLI's
# `repro serve-bench`; see its docstring for why RssAnon is the honest
# per-worker cost metric for mmap-served indexes.
_rss_kib = process_rss_kib


def _query_pairs(graph: Graph, count: int, seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    return [(rng.choice(vertices), rng.choice(vertices)) for _ in range(count)]


def _time_load(path: str, engine: str, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time of ``load_index``; returns the last index."""
    best = float("inf")
    index = None
    for _ in range(repeats):
        started = time.perf_counter()
        index = load_index(path, engine=engine)
        best = min(best, time.perf_counter() - started)
    return best, index


def _worker_main(path: str, engine: str, queries: int, seed: int) -> int:
    """Subprocess body: load (or not, for the null worker), serve, report."""
    row: Dict[str, object] = {"engine": engine}
    if path == "-":
        row["rss_kib"], row["anon_kib"] = _rss_kib()
        print(json.dumps(row))
        return 0
    started = time.perf_counter()
    index = load_index(path, engine=engine)
    row["load_seconds"] = time.perf_counter() - started
    pairs = _query_pairs_from_coverage(index, queries, seed)
    started = time.perf_counter()
    index.distances(pairs)
    elapsed = time.perf_counter() - started
    row["qps"] = len(pairs) / elapsed if elapsed else float("inf")
    row["rss_kib"], row["anon_kib"] = _rss_kib()
    print(json.dumps(row))
    return 0


def _query_pairs_from_coverage(index, count: int, seed: int):
    rng = random.Random(seed)
    covered = sorted(index.hierarchy.level_of)
    return [(rng.choice(covered), rng.choice(covered)) for _ in range(count)]


def _spawn_workers(
    path: str, engine: str, workers: int, queries: int, seed: int
) -> List[Dict]:
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                os.path.abspath(__file__),
                "--worker",
                path,
                engine,
                str(queries),
                str(seed + i),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        for i in range(workers)
    ]
    rows = []
    for proc in procs:
        out, _ = proc.communicate()
        if proc.returncode != 0:
            raise RuntimeError(f"worker exited with {proc.returncode}")
        rows.append(json.loads(out.strip().splitlines()[-1]))
    return rows


def bench_dataset(
    name: str,
    graph: Graph,
    tmp: str,
    queries: int,
    repeats: int,
    workers: int,
    null_rss_kib: Optional[int],
) -> Dict[str, object]:
    built = ISLabelIndex.build(graph, engine="fast")
    pairs = _query_pairs(graph, queries, seed=7)
    expected = built.distances(pairs)
    # Warm the lazily filled all-pairs rows with the fleet's query seeds
    # before snapshotting: the snapshot then ships the warmed table, and
    # worker processes read those rows from shared pages instead of each
    # recomputing them into private copy-on-write memory.
    for i in range(workers):
        built.distances(_query_pairs_from_coverage(built, queries, 40 + i))

    stream_path = os.path.join(tmp, f"{name}.islx")
    snap_path = os.path.join(tmp, f"{name}.snap")
    shard_path = os.path.join(tmp, f"{name}.shards")
    stream_bytes = save_index(built, stream_path)
    snap_bytes = save_snapshot(built, snap_path)
    shard_bytes = save_snapshot(built, shard_path, shards=SHARDS)

    stream_load, stream_index = _time_load(stream_path, "fast", repeats)
    mmap_load, mmap_index = _time_load(snap_path, "mmap", repeats)
    shard_load, shard_index = _time_load(shard_path, "sharded", repeats)

    # Bit-identical distances across every loaded configuration.
    for label, index in (
        ("stream+fast", stream_index),
        ("snapshot+mmap", mmap_index),
        ("snapshot+sharded", shard_index),
    ):
        got = index.distances(pairs)
        if got != expected:
            raise AssertionError(f"{name}: {label} disagrees with built index")

    row: Dict[str, object] = {
        "dataset": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "label_entries": built.stats.label_entries,
        "queries": len(pairs),
        "bytes": {
            "stream": stream_bytes,
            "snapshot": snap_bytes,
            "sharded": shard_bytes,
        },
        "cold_load_seconds": {
            "stream_fast": stream_load,
            "snapshot_mmap": mmap_load,
            "snapshot_sharded": shard_load,
        },
        "cold_load_speedup_mmap": stream_load / mmap_load,
        "cold_load_speedup_sharded": stream_load / shard_load,
        "engines_agree": True,
    }

    if workers > 0:
        fleet: Dict[str, object] = {}
        for label, path, engine in (
            ("stream_dict", stream_path, "dict"),
            ("snapshot_mmap", snap_path, "mmap"),
            ("snapshot_sharded", shard_path, "sharded"),
        ):
            rows = _spawn_workers(path, engine, workers, queries, seed=40)
            rss = [r["rss_kib"] for r in rows if r.get("rss_kib")]
            anon = [r["anon_kib"] for r in rows if r.get("anon_kib")]
            fleet[label] = {
                "workers": workers,
                "aggregate_qps": sum(r["qps"] for r in rows),
                "worker_rss_kib_avg": sum(rss) / len(rss) if rss else None,
                "worker_private_kib_avg": (
                    sum(anon) / len(anon) - null_rss_kib
                    if anon and null_rss_kib is not None
                    else None
                ),
                "load_seconds_avg": sum(r["load_seconds"] for r in rows)
                / len(rows),
            }
        row["fleet"] = fleet
    return row


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["--worker"]:
        path, engine, queries, seed = argv[1:5]
        return _worker_main(path, engine, int(queries), int(seed))

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graphs / few queries (CI smoke)"
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3, help="load repetitions")
    parser.add_argument(
        "--workers", type=int, default=None, help="worker processes per fleet"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_snapshot.json"),
        help="output JSON path (default: repo root BENCH_snapshot.json)",
    )
    args = parser.parse_args(argv)

    datasets = QUICK_DATASETS if args.quick else FULL_DATASETS
    queries = args.queries or (100 if args.quick else 1500)
    workers = args.workers if args.workers is not None else (1 if args.quick else 4)

    null_rss = None
    if workers > 0:
        null_rss = _spawn_workers("-", "dict", 1, 0, 0)[0].get("anon_kib")

    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-snap-") as tmp:
        for name, builder in datasets:
            graph = builder()
            row = bench_dataset(
                name, graph, tmp, queries, args.repeats, workers, null_rss
            )
            results.append(row)
            loads = row["cold_load_seconds"]
            print(
                f"{name:10s} |V|={row['num_vertices']:>6} "
                f"entries={row['label_entries']:>7} | "
                f"load stream {loads['stream_fast'] * 1000:8.1f}ms "
                f"mmap {loads['snapshot_mmap'] * 1000:6.1f}ms "
                f"({row['cold_load_speedup_mmap']:7.1f}x) "
                f"sharded {loads['snapshot_sharded'] * 1000:6.1f}ms "
                f"({row['cold_load_speedup_sharded']:7.1f}x)"
            )
            if "fleet" in row:
                for label, stats in row["fleet"].items():
                    rss = stats["worker_private_kib_avg"]
                    rss_txt = f"{rss / 1024:7.1f} MiB" if rss is not None else "n/a"
                    print(
                        f"{'':10s} fleet {label:16s} "
                        f"{stats['aggregate_qps']:>10,.0f} qps "
                        f"private/worker {rss_txt}"
                    )

    largest = results[-1]
    gates = {
        "cold_load_speedup_at_least_20x": largest["cold_load_speedup_mmap"] >= 20.0,
        "engines_bit_identical": all(r["engines_agree"] for r in results),
    }
    report = {
        "benchmark": "snapshot_serving",
        "mode": "quick" if args.quick else "full",
        "queries_per_dataset": queries,
        "workers": workers,
        "null_worker_rss_kib": null_rss,
        "datasets": results,
        "largest_dataset": largest["dataset"],
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    ok = all(gates.values())
    print("gates:", gates, "->", "PASS" if ok else "FAIL")
    if args.quick:
        # Smoke mode keeps the script (and the engine agreement check)
        # alive; timing gates are meaningless on tiny graphs.
        return 0
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
