"""Scenario percentiles from the shared load harness: local vs remote.

Every row is one :class:`repro.loadgen.Scenario` executed by
:func:`repro.loadgen.run_scenario` — the same code path as ``repro
loadgen`` and the serving benchmarks — against (a) the local ``"fast"``
engine and (b) a spawned remote fleet.  The matrix covers the traffic
shapes the serving claims depend on:

* **uniform vs Zipf(1.1) pair skew**, closed loop — how much endpoint
  popularity skew changes p50/p99 on the same dataset (hot shard-pair
  buckets batch better remotely; the artifact's scheduler stats show the
  coalescing).
* **open-loop bursts** — arrivals scheduled on the wall clock in bursts
  of 16; queueing shows up in p99, not in a conveniently slowed client.

Gates (all correctness/hygiene, so ``--quick`` keeps them):

* ``answers_bit_identical`` — every read in every row matches the fast
  oracle bit-for-bit (local and remote, under skew and bursts);
* ``workers_reaped`` — every spawned fleet was torn down with no
  surviving child;
* ``latency_reported`` — each row carries finite positive p50/p99.

Emits ``BENCH_loadgen.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_loadgen.py           # full
    PYTHONPATH=src python benchmarks/bench_loadgen.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List

from repro.loadgen import get_scenario, run_scenario

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Scenario names in the matrix; each runs locally and against a fleet.
SCENARIO_NAMES = ("uniform-base", "zipf-hot", "open-burst")


def scenario_matrix(quick: bool):
    """The (scenario, engine) rows, shrunk for CI when ``quick``."""
    rows = []
    for name in SCENARIO_NAMES:
        base = get_scenario(name)
        if quick:
            base = base.replace(dataset="grid:10x10", num_queries=80)
        for engine in ("fast", "remote"):
            rows.append(base.replace(engine=engine))
    return rows


def run_row(scenario) -> Dict[str, object]:
    result = run_scenario(scenario)
    reads = result["reads"]
    row: Dict[str, object] = {
        "scenario": scenario.name,
        "engine": scenario.engine,
        "skew": scenario.skew,
        "arrival": scenario.arrival,
        "queries": reads["count"],
        "p50_ms": reads["p50_ms"],
        "p90_ms": reads["p90_ms"],
        "p99_ms": reads["p99_ms"],
        "throughput_qps": reads["throughput_qps"],
        "bit_identical": result["bit_identical"],
    }
    if scenario.engine == "remote":
        row["workers_reaped"] = result["workers_reaped"]
        row["scheduler"] = result.get("scheduler")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graphs / few queries (CI smoke)"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_loadgen.json"),
        help="output JSON path (default: repo root BENCH_loadgen.json)",
    )
    args = parser.parse_args(argv)

    rows: List[Dict[str, object]] = []
    for scenario in scenario_matrix(args.quick):
        row = run_row(scenario)
        rows.append(row)
        print(
            f"{row['scenario']:14s} {row['engine']:6s} | "
            f"{row['queries']:>5} reads | "
            f"p50 {row['p50_ms']:8.3f} ms | p99 {row['p99_ms']:8.3f} ms | "
            f"{row['throughput_qps']:>9,.0f} qps | "
            f"bit_identical={row['bit_identical']}"
        )

    def finite_latency(row: Dict[str, object]) -> bool:
        return all(
            isinstance(row[k], float) and math.isfinite(row[k]) and row[k] > 0
            for k in ("p50_ms", "p99_ms")
        )

    gates = {
        "answers_bit_identical": all(r["bit_identical"] for r in rows),
        "workers_reaped": all(
            r.get("workers_reaped", True) for r in rows
        ),
        "latency_reported": all(finite_latency(r) for r in rows),
    }
    report = {
        "benchmark": "loadgen",
        "quick": args.quick,
        "rows": rows,
        "gates": gates,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.output}")
    for gate, ok in gates.items():
        print(f"gate {gate}: {'PASS' if ok else 'FAIL'}")
    return 0 if all(gates.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
