"""E11 (ablation) — the label-intersection pruning bound µ (Algorithm 1).

Algorithm 1 seeds the bidirectional search's stopping bound µ from the
label intersection (lines 4–6).  This ablation runs the same Type-2 query
workload with and without the µ seed and reports how many G_k vertices the
search settles — quantifying how much of the paper's query speed comes
from the labels *pruning* the search rather than merely seeding it.
"""

import pytest

from repro.bench import built_index, emit, render_table
from repro.core.labels import eq1_distance
from repro.core.query import label_bidijkstra
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs

DATASETS = ("web", "skitter", "google")
QUERIES = 300


def _run(index, pairs, use_mu0):
    """Run the Type-2 search stage with or without the µ0 seed.

    The Equation-1 bound is applied to the *answer* in both variants
    (paths that never enter G_k are not the search's job either way);
    ``use_mu0`` only controls whether it seeds the pruning bound.
    """
    settled = 0
    answered = []
    for s, t in pairs:
        label_s = index.label(s)
        label_t = index.label(t)
        seeds_f = [(w, d) for w, d in label_s if index.gk.has_vertex(w)]
        seeds_r = [(w, d) for w, d in label_t if index.gk.has_vertex(w)]
        mu0 = eq1_distance(label_s, label_t)
        if not seeds_f or not seeds_r:
            answered.append(mu0)
            continue
        result = label_bidijkstra(
            lambda v: index.gk.neighbors(v).items(),
            lambda v: index.gk.neighbors(v).items(),
            seeds_f,
            seeds_r,
            initial_mu=mu0 if use_mu0 else float("inf"),
        )
        answered.append(min(result.distance, mu0))
        settled += result.stats.settled_total
    return settled / len(pairs), answered


@pytest.mark.parametrize("dataset", DATASETS)
def test_ablation_pruning_one(benchmark, dataset):
    index = built_index(dataset, storage="memory")
    pairs = random_query_pairs(load_dataset(dataset), 64, seed=31)
    benchmark.pedantic(_run, args=(index, pairs, True), rounds=1, iterations=1)


def test_ablation_pruning_emit(benchmark):
    rows = []
    measured = {}
    for name in DATASETS:
        index = built_index(name, storage="memory")
        pairs = random_query_pairs(load_dataset(name), QUERIES, seed=31)
        with_mu, answers_with = _run(index, pairs, True)
        without_mu, answers_without = _run(index, pairs, False)
        # Same exact answers either way: µ0 only prunes.
        mismatches = sum(
            1 for a, b in zip(answers_with, answers_without) if a != b
        )
        measured[name] = (with_mu, without_mu, mismatches)
        rows.append(
            (
                name,
                f"{with_mu:.1f}",
                f"{without_mu:.1f}",
                f"{without_mu / with_mu:.2f}x" if with_mu else "-",
                mismatches,
            )
        )
    benchmark(lambda: measured)

    emit(
        "ablation_pruning",
        render_table(
            "Ablation — Algorithm 1 with vs without the label-derived µ seed "
            "(avg settled G_k vertices per query)",
            ("dataset", "settled with µ0", "settled without", "ratio", "answer diffs"),
            rows,
        ),
    )

    for name in DATASETS:
        with_mu, without_mu, mismatches = measured[name]
        assert mismatches == 0, f"{name}: µ0 must not change answers"
        assert with_mu <= without_mu, f"{name}: µ0 can only prune work"
