"""E5 / Table 6 — effect of the k value (btc and web).

The paper rebuilds btc with k ∈ {5,6,7} and web with k ∈ {18,19,20} —
the auto-selected k and its neighbours — and shows the trade-off: larger k
gives a smaller G_k and faster bi-Dijkstra but larger labels, longer
construction and more label I/O.  We sweep k* − 1, k*, k* + 1 around our
auto-selected k* per dataset and assert the same monotone trade-offs.
"""

import pytest

from repro.bench import built_index, emit, fmt_bytes, fmt_count, fmt_ms, render_table
from repro.bench.paper import TABLE6
from repro.core.index import ISLabelIndex
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs
from repro.bench.harness import run_query_workload

DATASETS = ("btc", "web")
QUERIES = 400


def _sweep(name):
    auto_k = built_index(name, storage="disk").k
    graph = load_dataset(name)
    sweep = {}
    for k in (auto_k - 1, auto_k, auto_k + 1):
        index = ISLabelIndex.build(graph, sigma=None, k=k, storage="disk")
        pairs = random_query_pairs(graph, QUERIES, seed=13)
        summary = run_query_workload(index, pairs)
        sweep[k] = (index, summary)
    return auto_k, sweep


@pytest.mark.parametrize("dataset", DATASETS)
def test_table6_build_at_explicit_k(benchmark, dataset):
    graph = load_dataset(dataset)
    auto_k = built_index(dataset, storage="disk").k
    index = benchmark.pedantic(
        ISLabelIndex.build,
        args=(graph,),
        kwargs={"sigma": None, "k": auto_k + 1},
        rounds=1,
        iterations=1,
    )
    assert index.k <= auto_k + 1


def test_table6_emit_table(benchmark):
    rows = []
    shapes = {}
    for name in DATASETS:
        auto_k, sweep = _sweep(name)
        shapes[name] = (auto_k, sweep)
        paper_rows = sorted(TABLE6[name].items())
        for offset, (k, (index, summary)) in enumerate(sorted(sweep.items())):
            p_k, (p_gkv, p_gke, p_label, p_secs, p_query) = paper_rows[offset]
            st = index.stats
            rows.append(
                (
                    name,
                    k,
                    p_k,
                    fmt_count(st.gk_vertices),
                    fmt_count(p_gkv),
                    fmt_bytes(st.label_bytes),
                    p_label,
                    f"{st.build_seconds:.2f}",
                    f"{p_secs:.2f}",
                    fmt_ms(summary.avg_total_ms),
                    fmt_ms(p_query),
                )
            )
    benchmark(lambda: shapes)

    emit(
        "table6",
        render_table(
            "Table 6 — k sweep around the auto-selected k (measured vs paper)",
            (
                "dataset",
                "k",
                "k paper",
                "|V_Gk|",
                "paper",
                "label size",
                "paper",
                "build s",
                "paper s",
                "query ms",
                "paper ms",
            ),
            rows,
        ),
    )

    # The paper's trade-off: G_k shrinks and labels grow as k increases.
    for name in DATASETS:
        _, sweep = shapes[name]
        ks = sorted(sweep)
        gk_sizes = [sweep[k][0].stats.gk_vertices for k in ks]
        label_sizes = [sweep[k][0].stats.label_bytes for k in ks]
        assert gk_sizes[0] >= gk_sizes[1] >= gk_sizes[2], f"{name}: G_k shrinks with k"
        assert label_sizes[0] <= label_sizes[1] <= label_sizes[2], (
            f"{name}: label size grows with k"
        )
