"""E6 / Table 7 — the σ = 0.90 threshold.

A laxer threshold stops peeling earlier: smaller (or equal) k, larger
``G_k``, *smaller* labels and faster construction, at the cost of more
bi-Dijkstra work per query — "a trade-off for the smaller indexing costs".
"""

import pytest

from repro.bench import (
    built_index,
    emit,
    fmt_bytes,
    fmt_count,
    fmt_ms,
    render_table,
    run_query_workload,
)
from repro.bench.paper import DATASET_ORDER, TABLE7
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs

QUERIES = 400


@pytest.mark.parametrize("dataset", DATASET_ORDER)
def test_table7_build_sigma090(benchmark, dataset):
    graph = load_dataset(dataset)
    from repro.core.index import ISLabelIndex

    index = benchmark.pedantic(
        ISLabelIndex.build, args=(graph,), kwargs={"sigma": 0.90}, rounds=1, iterations=1
    )
    assert index.k >= 2


def test_table7_emit_table(benchmark):
    rows = []
    measured = {}
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        index95 = built_index(name, sigma=0.95, storage="disk")
        index90 = built_index(name, sigma=0.90, storage="disk")
        pairs = random_query_pairs(graph, QUERIES, seed=17)
        summary = run_query_workload(index90, pairs)
        measured[name] = (index95, index90, summary)
        p_k, p_gkv, p_gke, p_label, p_secs, p_query = TABLE7[name]
        st = index90.stats
        rows.append(
            (
                name,
                st.k,
                p_k,
                fmt_count(st.gk_vertices),
                fmt_count(p_gkv),
                fmt_bytes(st.label_bytes),
                p_label,
                f"{st.build_seconds:.2f}",
                f"{p_secs:.2f}",
                fmt_ms(summary.avg_total_ms),
                fmt_ms(p_query),
            )
        )
    benchmark(lambda: measured)

    emit(
        "table7",
        render_table(
            "Table 7 — σ=0.90 construction and query time (measured vs paper)",
            (
                "dataset",
                "k",
                "k paper",
                "|V_Gk|",
                "paper",
                "label size",
                "paper",
                "build s",
                "paper s",
                "query ms",
                "paper ms",
            ),
            rows,
        ),
    )

    # Paper shape: σ=0.90 gives smaller-or-equal k, larger G_k, smaller labels.
    for name in DATASET_ORDER:
        index95, index90, _ = measured[name]
        assert index90.k <= index95.k, f"{name}: smaller threshold, smaller k"
        assert index90.stats.gk_vertices >= index95.stats.gk_vertices, (
            f"{name}: earlier stop leaves a larger G_k"
        )
        assert index90.stats.label_bytes <= index95.stats.label_bytes, (
            f"{name}: earlier stop gives smaller labels"
        )
