"""E7 / Table 8 — IS-LABEL vs IM-ISL vs VC-Index (P2P) vs IM-DIJ.

The paper's headline comparison: label-based querying beats the
search-based VC-Index by 2–3 orders of magnitude and beats in-memory
bidirectional Dijkstra handily; the in-memory label variant (IM-ISL) is
faster still because the 10 ms/IO label fetches disappear.

Both disk-resident systems are costed identically: simulated I/O at the
paper's 10 ms/IO benchmark plus measured CPU — IS-LABEL fetches two small
labels, VC-Index random-reads the adjacency rows its searches touch and
scans the levels its downward sweep processes.  IM-ISL and IM-DIJ are pure
CPU.  VC-Index and IM-DIJ re-run a graph search per query, so they get a
smaller (but identically distributed) query sample.
"""

import itertools
import time

import pytest

from repro.bench import (
    built_index,
    built_vc_index,
    emit,
    fmt_ms,
    render_table,
    run_query_workload,
    time_im_dij,
)
from repro.bench.paper import DATASET_ORDER, TABLE8
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs

LABEL_QUERIES = 1000
SEARCH_QUERIES = 60


@pytest.mark.parametrize("dataset", DATASET_ORDER)
def test_table8_vc_index_query(benchmark, dataset):
    """Per-dataset VC-Index P2P query CPU latency (I/O costed separately)."""
    vc = built_vc_index(dataset)
    pairs = itertools.cycle(random_query_pairs(load_dataset(dataset), 32, seed=23))
    benchmark(lambda: vc.query(*next(pairs)))


def test_table8_emit_table(benchmark):
    rows = []
    measured = {}
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        disk_index = built_index(name, storage="disk")
        mem_index = built_index(name, storage="memory")
        vc = built_vc_index(name)

        label_pairs = random_query_pairs(graph, LABEL_QUERIES, seed=23)
        search_pairs = label_pairs[:SEARCH_QUERIES]

        islabel_ms = run_query_workload(disk_index, label_pairs).avg_total_ms
        imisl_ms = run_query_workload(mem_index, label_pairs).avg_total_ms

        # VC-Index pays simulated hierarchy I/O + measured CPU, exactly as
        # IS-LABEL pays simulated label I/O + measured CPU.
        vc_results = [vc.query(s, t) for s, t in search_pairs]
        vc_ms = 1000.0 * sum(r.total_time_s for r in vc_results) / len(vc_results)

        imdij_ms = time_im_dij(graph, search_pairs)

        measured[name] = (islabel_ms, imisl_ms, vc_ms, imdij_ms)
        p_is, p_im, p_vc, p_dij = TABLE8[name]
        rows.append(
            (
                name,
                fmt_ms(islabel_ms),
                fmt_ms(p_is),
                fmt_ms(imisl_ms),
                fmt_ms(p_im),
                fmt_ms(vc_ms),
                fmt_ms(p_vc),
                fmt_ms(imdij_ms),
                fmt_ms(p_dij),
                f"{vc_ms / islabel_ms:.0f}x" if islabel_ms else "-",
            )
        )
    benchmark(lambda: measured)

    emit(
        "table8",
        render_table(
            "Table 8 — query time comparison (measured vs paper)",
            (
                "dataset",
                "IS-LABEL",
                "paper",
                "IM-ISL",
                "paper",
                "VC-Index",
                "paper",
                "IM-DIJ",
                "paper",
                "VC/IS-LABEL",
            ),
            rows,
        ),
    )

    # The paper's ordering on every dataset: IM-ISL < IS-LABEL < VC-Index,
    # and IM-ISL at least as fast as IM-DIJ.
    for name in DATASET_ORDER:
        islabel_ms, imisl_ms, vc_ms, imdij_ms = measured[name]
        assert imisl_ms < islabel_ms, f"{name}: removing label I/O must help"
        assert vc_ms > 10 * islabel_ms, (
            f"{name}: VC-Index is orders of magnitude slower ({vc_ms:.2f} vs "
            f"{islabel_ms:.2f} ms)"
        )
        assert imisl_ms < imdij_ms, f"{name}: IM-ISL beats IM-DIJ, as in the paper"
