"""E15 / §8.3 — dynamic update maintenance.

Applies a batch of vertex insertions (and then deletions) to a built index,
measuring per-update cost and query quality before the periodic rebuild the
paper prescribes.  Insertions keep answers as exact-or-overestimate
(verified); deletions flip the index to its documented approximate state.
"""

import random
import time

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.bench import emit, fmt_ms, render_table
from repro.core.updates import DynamicISLabelIndex
from repro.workloads.datasets import load_dataset

DATASET = "google"
SCALE = 0.3
INSERTS = 40
QUERIES = 250


def test_update_insert_latency(benchmark):
    graph = load_dataset(DATASET, SCALE)
    dyn = DynamicISLabelIndex(graph)
    rng = random.Random(53)
    vertices = sorted(graph.vertices())
    counter = [10_000_000]

    def insert_one():
        counter[0] += 1
        neighbours = {v: rng.randint(1, 3) for v in rng.sample(vertices, 3)}
        dyn.insert_vertex(counter[0], neighbours)

    benchmark.pedantic(insert_one, rounds=20, iterations=1)


def test_updates_emit(benchmark):
    graph = load_dataset(DATASET, SCALE)
    dyn = DynamicISLabelIndex(graph)
    rng = random.Random(53)
    vertices = sorted(graph.vertices())

    started = time.perf_counter()
    new_ids = []
    for i in range(INSERTS):
        vid = 20_000_000 + i
        neighbours = {
            v: rng.randint(1, 3) for v in rng.sample(sorted(dyn.graph.vertices()), rng.randint(1, 4))
        }
        dyn.insert_vertex(vid, neighbours)
        new_ids.append(vid)
    insert_ms = 1000.0 * (time.perf_counter() - started) / INSERTS

    # Query quality after inserts: exact or overestimate, never under.
    pool = sorted(dyn.graph.vertices())
    exact = over = under = 0
    for _ in range(QUERIES):
        s, t = rng.choice(pool), rng.choice(pool)
        truth = dijkstra_distance(dyn.graph, s, t)
        answer = dyn.distance(s, t)
        if answer == truth:
            exact += 1
        elif answer > truth:
            over += 1
        else:
            under += 1
    assert under == 0, "lazy insertion must never underestimate distances"

    started = time.perf_counter()
    dyn.rebuild()
    rebuild_s = time.perf_counter() - started
    for _ in range(60):
        s, t = rng.choice(pool), rng.choice(pool)
        assert dyn.distance(s, t) == dijkstra_distance(dyn.graph, s, t)

    started = time.perf_counter()
    for vid in new_ids[:10]:
        dyn.delete_vertex(vid)
    delete_ms = 1000.0 * (time.perf_counter() - started) / 10
    assert dyn.approximate or dyn.deletes_applied == 10

    benchmark(lambda: (exact, over, under))

    emit(
        "updates",
        render_table(
            "§8.3 — lazy update maintenance (google stand-in)",
            (
                "inserts",
                "avg insert ms",
                "exact",
                "overestimate",
                "underestimate",
                "rebuild s",
                "avg delete ms",
            ),
            [
                (
                    INSERTS,
                    fmt_ms(insert_ms),
                    f"{exact}/{QUERIES}",
                    f"{over}/{QUERIES}",
                    f"{under}/{QUERIES}",
                    f"{rebuild_s:.2f}",
                    fmt_ms(delete_ms),
                )
            ],
        ),
    )
