"""E8 / Table 9 — VC-Index construction costs.

The paper reports VC-Index's indexing time and index size next to
IS-LABEL's (Table 3): the VC-Index structure is *smaller* (it stores the
hierarchy, not per-vertex labels) but its construction is not faster, and
its queries (Table 8) are orders of magnitude slower.
"""

import pytest

from repro.bench import built_index, built_vc_index, emit, fmt_bytes, render_table
from repro.bench.paper import DATASET_ORDER, TABLE9
from repro.baselines.vc_index import VCIndex
from repro.workloads.datasets import load_dataset


@pytest.mark.parametrize("dataset", DATASET_ORDER)
def test_table9_build_one(benchmark, dataset):
    graph = load_dataset(dataset)
    vc = benchmark.pedantic(VCIndex.build, args=(graph,), rounds=1, iterations=1)
    assert vc.k >= 2


def test_table9_emit_table(benchmark):
    rows = []
    measured = {}
    for name in DATASET_ORDER:
        vc = built_vc_index(name)
        is_index = built_index(name, storage="disk")
        measured[name] = (vc, is_index)
        p_secs, p_size = TABLE9[name]
        rows.append(
            (
                name,
                f"{vc.build_seconds:.2f}",
                f"{p_secs:.2f}",
                fmt_bytes(vc.index_bytes),
                p_size,
                fmt_bytes(is_index.stats.label_bytes),
            )
        )
    benchmark(lambda: measured)

    emit(
        "table9",
        render_table(
            "Table 9 — VC-Index construction (measured vs paper; last column: "
            "IS-LABEL label size for comparison)",
            (
                "dataset",
                "build s",
                "paper s",
                "index size",
                "paper",
                "IS-LABEL labels",
            ),
            rows,
        ),
    )

    # Paper shape: the VC-Index structure is smaller than IS-LABEL's labels
    # on the label-heavy datasets (btc, web in the paper).
    for name in ("btc", "web"):
        vc, is_index = measured[name]
        assert vc.index_bytes < is_index.stats.label_bytes, (
            f"{name}: VC-Index stores less than IS-LABEL's labels"
        )
