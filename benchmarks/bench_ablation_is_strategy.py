"""E12 (ablation) — min-degree greedy IS vs random maximal IS.

§6.1.1 justifies the min-degree greedy heuristic [16]: larger independent
sets mean fewer levels and smaller labels.  This ablation builds the same
datasets with a random-order maximal IS instead and compares hierarchy
depth, residual-graph size and label volume.
"""

import pytest

from repro.bench import emit, fmt_bytes, render_table
from repro.core.index import ISLabelIndex
from repro.workloads.datasets import load_dataset

DATASETS = ("btc", "skitter", "google")
SCALE = 0.4
SEEDS = (0, 1, 2)


@pytest.mark.parametrize("dataset", DATASETS)
def test_ablation_random_is_build(benchmark, dataset):
    graph = load_dataset(dataset, SCALE)
    index = benchmark.pedantic(
        ISLabelIndex.build,
        args=(graph,),
        kwargs={"is_strategy": "random", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert index.k >= 2


def test_ablation_is_strategy_emit(benchmark):
    rows = []
    measured = {}
    for name in DATASETS:
        graph = load_dataset(name, SCALE)
        greedy = ISLabelIndex.build(graph, is_strategy="min_degree")
        randoms = [
            ISLabelIndex.build(graph, is_strategy="random", seed=seed)
            for seed in SEEDS
        ]
        avg_entries = sum(r.stats.label_entries for r in randoms) / len(randoms)
        avg_first_level = sum(len(r.hierarchy.levels[0]) for r in randoms) / len(
            randoms
        )
        measured[name] = (greedy, randoms, avg_entries)
        rows.append(
            (
                name,
                len(greedy.hierarchy.levels[0]),
                f"{avg_first_level:.0f}",
                greedy.k,
                f"{sum(r.k for r in randoms) / len(randoms):.1f}",
                greedy.stats.label_entries,
                f"{avg_entries:.0f}",
                fmt_bytes(greedy.stats.label_bytes),
            )
        )
    benchmark(lambda: measured)

    emit(
        "ablation_is_strategy",
        render_table(
            "Ablation — min-degree greedy IS vs random maximal IS "
            "(|L1|, k, label entries; random averaged over 3 seeds)",
            (
                "dataset",
                "|L1| greedy",
                "|L1| random",
                "k greedy",
                "k random",
                "entries greedy",
                "entries random",
                "bytes greedy",
            ),
            rows,
        ),
    )

    for name in DATASETS:
        greedy, randoms, _ = measured[name]
        avg_l1 = sum(len(r.hierarchy.levels[0]) for r in randoms) / len(randoms)
        assert len(greedy.hierarchy.levels[0]) >= avg_l1, (
            f"{name}: min-degree greedy should peel at least as many vertices "
            "per level as a random maximal IS"
        )
