"""E16 (extension) — the §3.2 approximate mode, speed vs error.

The paper remarks that "approximation can be applied on top of our method
(e.g., on the graph G_k)".  This bench quantifies the realisation in
``repro.core.approx``: landmark-oracle estimates versus the exact Type-2
search, sweeping the landmark budget.
"""

import itertools
import time

import pytest

from repro.bench import built_index, emit, fmt_ms, render_table
from repro.core.approx import ApproximateDistanceOracle
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs

DATASET = "skitter"
QUERIES = 400
LANDMARK_BUDGETS = (2, 8, 32)


@pytest.mark.parametrize("landmarks", LANDMARK_BUDGETS)
def test_approx_query_latency(benchmark, landmarks):
    index = built_index(DATASET, storage="memory")
    oracle = ApproximateDistanceOracle(index, num_landmarks=landmarks)
    pairs = itertools.cycle(random_query_pairs(load_dataset(DATASET), 64, seed=61))
    benchmark(lambda: oracle.distance_upper_bound(*next(pairs)))


def test_approx_emit(benchmark):
    index = built_index(DATASET, storage="memory")
    graph = load_dataset(DATASET)
    pairs = random_query_pairs(graph, QUERIES, seed=61)

    started = time.perf_counter()
    exact = [index.distance(s, t) for s, t in pairs]
    exact_ms = 1000.0 * (time.perf_counter() - started) / len(pairs)

    rows = []
    for budget in LANDMARK_BUDGETS:
        oracle = ApproximateDistanceOracle(index, num_landmarks=budget)
        started = time.perf_counter()
        estimates = [oracle.distance_upper_bound(s, t) for s, t in pairs]
        approx_ms = 1000.0 * (time.perf_counter() - started) / len(pairs)

        errors = []
        exact_hits = 0
        for truth, estimate in zip(exact, estimates):
            assert estimate >= truth, "estimates must be upper bounds"
            if truth == estimate:
                exact_hits += 1
            if truth not in (0, float("inf")):
                errors.append((estimate - truth) / truth)
        rows.append(
            (
                budget,
                fmt_ms(approx_ms),
                fmt_ms(exact_ms),
                f"{exact_hits / len(pairs):.1%}",
                f"{sum(errors) / len(errors):.2%}" if errors else "-",
                f"{max(errors):.2%}" if errors else "-",
            )
        )
    benchmark(lambda: rows)

    emit(
        "approx_mode",
        render_table(
            f"§3.2 extension — landmark approximation on G_k ({DATASET}, "
            f"{QUERIES} queries, all estimates verified as upper bounds)",
            (
                "landmarks",
                "approx ms",
                "exact ms",
                "exact answers",
                "mean rel err",
                "max rel err",
            ),
            rows,
        ),
    )
