"""Async serving core: pipelined fleet dispatch vs the serial baseline.

Measures what PR 7's concurrency work buys on a real worker fleet:

* **pipelined vs serial aggregate QPS** — the same query batch answered
  by the ``"remote"`` engine (a) with ``pipelined=False`` (the PR 6
  behavior: one bucket dispatch at a time, one request in flight per
  connection) and (b) with the pipelined protocol-v2 path (all buckets
  of a batch in flight concurrently over per-worker channels).  Both
  modes are measured twice: over raw loopback (reported), and over an
  emulated network link — a :class:`~repro.serving.chaos.ChaosProxy`
  per worker in ``"latency"`` mode adding a constant
  ``--link-rtt-ms`` of propagation delay, the transport a real fleet
  actually talks over.  The acceptance gate demands >= 2.5x on a
  >= 3-worker fleet *over the link*: serial dispatch pays one RTT per
  bucket sequentially, pipelining keeps every bucket in flight at
  once, so the speedup approaches (RTT + compute) / compute.  (Raw
  loopback on a single-core CI host measures neither of pipelining's
  wins — there is no RTT to hide and no second core to overlap compute
  on — so it is reported but not gated.)
* **scaling efficiency** — pipelined fleet QPS against workers x a
  single-worker fleet's QPS over the same snapshot and the same link
  (how close the fleet comes to linear scaling).
* **open-loop latency** — requests arrive on a Poisson schedule at a
  rate derived from measured capacity (arrival times do *not* wait for
  completions — the real "streamed load" regime), and per-request p50 /
  p99 completion latency is reported for the pipelined and serial
  engines at the same offered rate.
* **bit-identity + clean teardown** — every mode's answers are checked
  against the local fast engine, and every worker subprocess must be
  reaped (the chaos harness asserts it).

Emits ``BENCH_async.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_async_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_async_serving.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.core.index import ISLabelIndex
from repro.core.serialization import save_snapshot
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.loadgen import READ, poisson_arrivals, uniform_pairs
from repro.loadgen.drivers import Operation, run_open_loop
from repro.serving.chaos import ChaosProxy, FaultInjector
from repro.serving.remote import RemoteEngine
from repro.serving.scheduler import SchedulerPolicy, assign_shards
from repro.workloads.datasets import load_dataset

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Ordered smallest to largest; the last entry carries the gates.
FULL_DATASETS = [
    ("grid40", lambda: grid_graph(40, 40, seed=11, max_weight=8)),
    ("google", lambda: load_dataset("google", 1.0)),
]

QUICK_DATASETS = [
    ("grid10", lambda: grid_graph(10, 10, seed=11, max_weight=8)),
]

SHARDS = 8
#: Admission knobs the spawned workers run with: two executor threads
#: overlap decode/encode/socket I/O with the engine stage; the queue is
#: deep enough that a closed-loop burst is buffered, not rejected.
SERVE_ARGS = ["--max-concurrency", "2", "--max-queue", "256"]
#: Emulated round-trip time for the gated link measurement — a
#: same-region cross-host hop.  The speedup gate runs over this link.
DEFAULT_LINK_RTT_MS = 5.0
#: Dispatch granularity.  Small batches are what pipelining is *for*:
#: serial dispatch pays one link RTT per dispatch, so fine-grained
#: units sink it, while the pipelined path keeps them all in flight
#: and decouples granularity from link cost.  (At the default 512 the
#: source-shard coalescer folds a whole pass into ~8 jumbo dispatches
#: and the comparison measures batching, not dispatch.)
MAX_BATCH = 64


class _FleetLink:
    """A ``"latency"``-mode :class:`ChaosProxy` in front of every worker.

    ``addresses`` is what a client should dial to reach the fleet over
    the emulated link.  Membership discovery never rewires past the
    proxies here: nothing in this bench answers ``not_owner``, which is
    the only path that adopts worker self-announced addresses.
    """

    def __init__(self, upstreams, rtt_ms: float) -> None:
        self.proxies = []
        for upstream in upstreams:
            proxy = ChaosProxy(upstream)
            proxy.latency_s = rtt_ms / 1000.0
            proxy.mode = "latency"
            self.proxies.append(proxy)
        self.addresses = [p.address for p in self.proxies]

    def __enter__(self) -> "_FleetLink":
        return self

    def __exit__(self, *exc) -> None:
        for proxy in self.proxies:
            proxy.close()


def _closed_loop(engine, pairs, expected, repeats: int, label: str) -> float:
    """Best-of-``repeats`` wall seconds for one batched fleet pass."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        got = engine.distances(pairs)
        elapsed = time.perf_counter() - started
        if got != expected:
            raise AssertionError(f"{label}: fleet answers disagree with fast")
        best = min(best, elapsed)
    return best


def _open_loop(
    engine, pairs, expected, rate_qps: float, requests: int, label: str
) -> Dict[str, float]:
    """Poisson arrivals at ``rate_qps`` via the shared loadgen driver.

    Arrivals come from :func:`repro.loadgen.poisson_arrivals` (seeded,
    scheduled on the wall clock before the run, never waiting for
    completions) and the firing/percentile machinery is
    :func:`repro.loadgen.drivers.run_open_loop` — the same open-loop
    code path as ``repro loadgen`` — so a backlog shows up as queueing
    latency in p99, measured from the scheduled arrival.
    """
    ops = [
        Operation(0, READ, i, pair) for i, pair in enumerate(pairs[:requests])
    ]
    offsets = poisson_arrivals(rate_qps, requests, seed=1234)
    result = run_open_loop(
        ops, offsets, [engine.distance], [None], [expected[:requests]]
    )
    if not result["bit_identical"]:
        raise AssertionError(
            f"{label}: open-loop answers disagree: {result['mismatches'][:1]}"
        )
    reads = result["reads"]
    return {
        "offered_qps": rate_qps,
        "requests": requests,
        "p50_ms": reads["p50_ms"],
        "p99_ms": reads["p99_ms"],
        "max_ms": reads["max_ms"],
    }


def bench_dataset(
    name: str,
    graph: Graph,
    tmp: str,
    queries: int,
    workers: int,
    repeats: int,
    open_loop_requests: int,
    link_rtt_ms: float,
) -> Dict[str, object]:
    built = ISLabelIndex.build(graph, engine="fast")
    pairs = uniform_pairs(graph.vertices(), queries, seed=7)
    expected = built.distances(pairs)

    snap_path = os.path.join(tmp, f"{name}.shards")
    save_snapshot(built, snap_path, shards=SHARDS)

    policy = SchedulerPolicy(max_batch=MAX_BATCH)
    row: Dict[str, object] = {
        "dataset": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "queries": len(pairs),
        "shards": SHARDS,
        "workers": workers,
        "repeats": repeats,
        "link_rtt_ms": link_rtt_ms,
    }

    # --- single-worker fleet: the linear-scaling denominator -----------
    with FaultInjector() as solo:
        solo.spawn_fleet(
            snap_path, [list(range(SHARDS))], serve_args=SERVE_ARGS
        )
        with _FleetLink(solo.addresses, link_rtt_ms) as link, RemoteEngine(
            addresses=link.addresses, policy=policy
        ) as engine:
            solo_seconds = _closed_loop(
                engine, pairs, expected, repeats, f"{name}/solo"
            )
        solo_reaped = True
    row["single_worker_qps_linked"] = len(pairs) / solo_seconds

    # --- the fleet: serial vs pipelined over identical workers ---------
    ownership = [o for o in assign_shards(SHARDS, workers) if o]
    with FaultInjector() as fleet:
        fleet.spawn_fleet(snap_path, ownership, serve_args=SERVE_ARGS)

        def timed(addresses, pipelined, label):
            with RemoteEngine(
                addresses=addresses, policy=policy, pipelined=pipelined
            ) as engine:
                seconds = _closed_loop(
                    engine, pairs, expected, repeats, f"{name}/{label}"
                )
            return len(pairs) / seconds

        # Raw loopback: reported only.  One CI core + zero RTT means
        # there is nothing for pipelining to hide or overlap here.
        loopback_serial = timed(fleet.addresses, False, "serial-loopback")
        loopback_pipelined = timed(fleet.addresses, True, "pipelined-loopback")

        # Emulated link: the gated comparison.  Identical workers,
        # identical proxies — only the dispatch strategy differs.
        with _FleetLink(fleet.addresses, link_rtt_ms) as link:
            serial_qps = timed(link.addresses, False, "serial-linked")
            pipelined_qps = timed(link.addresses, True, "pipelined-linked")

        row.update(
            serial_qps_loopback=loopback_serial,
            pipelined_qps_loopback=loopback_pipelined,
            pipelined_speedup_loopback=loopback_pipelined / loopback_serial,
            serial_qps_linked=serial_qps,
            pipelined_qps_linked=pipelined_qps,
            pipelined_speedup_linked=pipelined_qps / serial_qps,
            scaling_efficiency_linked=pipelined_qps
            / (len(ownership) * row["single_worker_qps_linked"]),
        )

        # --- open-loop (streamed) load at one shared offered rate ------
        # Over loopback, sized to the *pipelined* capacity: the serial
        # engine at the same rate shows what saturation costs in p99.
        rate = max(loopback_pipelined * 0.5, 10.0)
        with RemoteEngine(addresses=fleet.addresses, policy=policy) as engine:
            row["open_loop_pipelined"] = _open_loop(
                engine, pairs, expected, rate, open_loop_requests,
                f"{name}/open-pipelined",
            )
        with RemoteEngine(
            addresses=fleet.addresses, policy=policy, pipelined=False
        ) as engine:
            row["open_loop_serial"] = _open_loop(
                engine, pairs, expected, rate, open_loop_requests,
                f"{name}/open-serial",
            )
    row["answers_agree"] = True
    row["workers_reaped"] = solo_reaped and all(
        w.proc is None or w.proc.poll() is not None for w in fleet.workers
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graph / few queries (CI smoke)"
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument(
        "--workers", type=int, default=4, help="fleet size (gate needs >= 3)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="passes per mode (best is gated)"
    )
    parser.add_argument(
        "--open-loop-requests", type=int, default=None,
        help="requests per open-loop latency run",
    )
    parser.add_argument(
        "--link-rtt-ms", type=float, default=DEFAULT_LINK_RTT_MS,
        help="emulated network RTT for the gated link comparison",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_async.json"),
        help="output JSON path (default: repo root BENCH_async.json)",
    )
    args = parser.parse_args(argv)

    datasets = QUICK_DATASETS if args.quick else FULL_DATASETS
    queries = args.queries or (200 if args.quick else 2000)
    open_loop_requests = args.open_loop_requests or (60 if args.quick else 400)

    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-async-") as tmp:
        for name, builder in datasets:
            graph = builder()
            row = bench_dataset(
                name, graph, tmp, queries, args.workers, args.repeats,
                open_loop_requests, args.link_rtt_ms,
            )
            results.append(row)
            print(
                f"{name:8s} |V|={row['num_vertices']:>6} | "
                f"{args.link_rtt_ms:g}ms-RTT link: "
                f"serial {row['serial_qps_linked']:>8,.0f} qps | "
                f"pipelined {row['pipelined_qps_linked']:>8,.0f} qps "
                f"({row['pipelined_speedup_linked']:.2f}x, "
                f"scaling {row['scaling_efficiency_linked']:.0%} of linear)"
            )
            print(
                f"{'':8s} loopback: "
                f"serial {row['serial_qps_loopback']:>8,.0f} qps | "
                f"pipelined {row['pipelined_qps_loopback']:>8,.0f} qps "
                f"({row['pipelined_speedup_loopback']:.2f}x)"
            )
            for mode in ("open_loop_pipelined", "open_loop_serial"):
                ol = row[mode]
                print(
                    f"{'':8s} {mode.removeprefix('open_loop_'):9s} open-loop "
                    f"@{ol['offered_qps']:,.0f} qps: "
                    f"p50 {ol['p50_ms']:.1f} ms, p99 {ol['p99_ms']:.1f} ms"
                )

    largest = results[-1]
    gates = {
        "pipelined_at_least_2.5x_serial": (
            largest["pipelined_speedup_linked"] >= 2.5
        ),
        "fleet_at_least_3_workers": largest["workers"] >= 3,
        "answers_bit_identical": all(r["answers_agree"] for r in results),
        "latency_reported": all(
            r["open_loop_pipelined"]["p99_ms"] > 0
            and r["open_loop_serial"]["p99_ms"] > 0
            for r in results
        ),
        "workers_reaped": all(r["workers_reaped"] for r in results),
    }
    report = {
        "benchmark": "async_serving",
        "mode": "quick" if args.quick else "full",
        "queries_per_dataset": queries,
        "workers": args.workers,
        "shards": SHARDS,
        "serve_args": SERVE_ARGS,
        "link_rtt_ms": args.link_rtt_ms,
        "max_batch": MAX_BATCH,
        "datasets": results,
        "largest_dataset": largest["dataset"],
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    ok = all(gates.values())
    print("gates:", gates, "->", "PASS" if ok else "FAIL")
    if args.quick:
        # Smoke mode keeps the pipeline exercised end to end; the timing
        # ratio is meaningless on a tiny graph with spawn overhead.
        return (
            0
            if gates["answers_bit_identical"] and gates["workers_reaped"]
            else 1
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
