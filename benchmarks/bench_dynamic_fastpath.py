"""Dynamic indexes on the fast engine: update-then-query throughput.

A live service absorbing §8.3 graph changes under query traffic is the
workload the incremental invalidation path exists for.  This benchmark
replays the same update/query script — waves of one ``insert_vertex``
followed by a batch of distance queries — against three configurations of
:class:`repro.core.updates.DynamicISLabelIndex`:

* ``fast-incremental`` — the default: every update reports its dirty set
  and the engine re-packs only the touched labels, growing/repairing the
  ``G_k`` structures in place;
* ``fast-full`` — the same engine with the incremental path disabled
  (``incremental_max_fraction = 0``), so every update drops the frozen
  arrays and the next query re-freezes *everything*;
* ``dict`` — the reference engine (what dynamic indexes were stuck with
  before the engine layer learned about dirty sets).

All three run the same label maintenance, so their answers are
cross-checked for exact agreement while timing.  Emits machine-readable
``BENCH_dynamic.json`` at the repo root; the gates require the incremental
path to beat both the full re-freeze and the dict reference on the largest
dataset.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic_fastpath.py           # full run
    PYTHONPATH=src python benchmarks/bench_dynamic_fastpath.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.updates import DynamicISLabelIndex
from repro.graph.generators import (
    ensure_connected,
    grid_graph,
    powerlaw_configuration,
)
from repro.graph.graph import Graph

REPO_ROOT = Path(__file__).resolve().parents[1]

#: (name, builder) — ordered smallest to largest; the gates are evaluated
#: on the last entry.  Well-shrinking graphs (the σ-rule regime with a
#: small ``G_k``) are the dynamic path's target: there the full re-freeze
#: pays a whole-index re-pack per update while the incremental path
#: touches a handful of labels.  Poorly shrinking graphs (``k=2``, huge
#: ``G_k``) stress the all-pairs table under churn instead — grid1600
#: keeps a mid-size ``G_k`` in the mix for that reason.
FULL_DATASETS = [
    (
        "plc1500",
        lambda: ensure_connected(
            powerlaw_configuration(1500, 2.3, seed=20, min_degree=1), seed=20
        ),
    ),
    (
        "grid1600",
        lambda: grid_graph(40, 40, seed=11, max_weight=8),
    ),
    (
        "plc4000",
        lambda: ensure_connected(
            powerlaw_configuration(4000, 2.3, seed=23, min_degree=1), seed=23
        ),
    ),
]

QUICK_DATASETS = [
    (
        "plc300",
        lambda: ensure_connected(
            powerlaw_configuration(300, 2.3, seed=20, min_degree=1), seed=20
        ),
    ),
]


def _make_script(
    graph: Graph, waves: int, queries_per_wave: int, seed: int
) -> List[Tuple[int, Dict[int, int], List[Tuple[int, int]]]]:
    """Pre-generate the update/query waves so every config replays the
    identical workload (inserted ids, adjacency, query pairs)."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    script = []
    next_id = 10_000_000
    for _ in range(waves):
        adjacency = {
            v: rng.randint(1, 4) for v in rng.sample(vertices, rng.randint(1, 4))
        }
        pool = vertices + [next_id]
        pairs = [
            (rng.choice(pool), rng.choice(pool)) for _ in range(queries_per_wave)
        ]
        script.append((next_id, adjacency, pairs))
        vertices.append(next_id)
        next_id += 1
    return script


def _run_config(dyn: DynamicISLabelIndex, script) -> Tuple[float, List[float]]:
    """Replay the script; returns (seconds, concatenated answers)."""
    answers: List[float] = []
    started = time.perf_counter()
    for vertex, adjacency, pairs in script:
        dyn.insert_vertex(vertex, adjacency)
        answers.extend(dyn.distances(pairs))
    return time.perf_counter() - started, answers


def bench_dataset(
    name: str, graph: Graph, waves: int, queries_per_wave: int
) -> Dict[str, object]:
    script = _make_script(graph, waves, queries_per_wave, seed=7)
    ops = waves * (1 + queries_per_wave)

    configs: Dict[str, DynamicISLabelIndex] = {}
    configs["dict"] = DynamicISLabelIndex(graph, engine="dict")
    configs["fast-full"] = DynamicISLabelIndex(graph)
    configs["fast-full"].index._fast.incremental_max_fraction = 0.0
    configs["fast-incremental"] = DynamicISLabelIndex(graph)
    for dyn in configs.values():
        # Warm the engine (first freeze) outside the timed loop: steady
        # serving state, as in the other fast-path benchmarks.
        dyn.distance(*sorted(graph.vertices())[:2])

    seconds: Dict[str, float] = {}
    answers: Dict[str, List[float]] = {}
    for label, dyn in configs.items():
        seconds[label], answers[label] = _run_config(dyn, script)
    if not (answers["fast-incremental"] == answers["fast-full"] == answers["dict"]):
        raise AssertionError(f"{name}: dynamic configurations disagree")

    stats = configs["fast-incremental"].index.stats
    return {
        "dataset": name,
        "num_vertices": stats.num_vertices,
        "num_edges": stats.num_edges,
        "k": stats.k,
        "gk_vertices": stats.gk_vertices,
        "search_mode": configs["fast-incremental"].index.search_mode,
        "update_waves": waves,
        "queries_per_wave": queries_per_wave,
        "seconds": seconds,
        "ops_per_second": {label: ops / s for label, s in seconds.items()},
        "incremental_speedup_vs_full": seconds["fast-full"]
        / seconds["fast-incremental"],
        "incremental_speedup_vs_dict": seconds["dict"]
        / seconds["fast-incremental"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graph / few waves (CI smoke)"
    )
    parser.add_argument("--waves", type=int, default=None, help="update waves")
    parser.add_argument(
        "--queries", type=int, default=None, help="queries per wave"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_dynamic.json"),
        help="output JSON path (default: repo root BENCH_dynamic.json)",
    )
    args = parser.parse_args(argv)

    datasets = QUICK_DATASETS if args.quick else FULL_DATASETS
    waves = args.waves or (5 if args.quick else 40)
    queries = args.queries or (20 if args.quick else 50)

    results = []
    for name, builder in datasets:
        graph = builder()
        row = bench_dataset(name, graph, waves, queries)
        results.append(row)
        print(
            f"{name:10s} |V|={row['num_vertices']:>6} k={row['k']:>2} "
            f"gk={row['gk_vertices']:>5} mode={row['search_mode']:4s} | "
            f"incremental {row['seconds']['fast-incremental']:.3f}s "
            f"full {row['seconds']['fast-full']:.3f}s "
            f"dict {row['seconds']['dict']:.3f}s | "
            f"vs full {row['incremental_speedup_vs_full']:.2f}x "
            f"vs dict {row['incremental_speedup_vs_dict']:.2f}x"
        )

    largest = results[-1]
    report = {
        "benchmark": "dynamic_fastpath",
        "mode": "quick" if args.quick else "full",
        "datasets": results,
        "largest_dataset": largest["dataset"],
        "gates": {
            "incremental_beats_full_refreeze": largest[
                "incremental_speedup_vs_full"
            ]
            > 1.0,
            "incremental_beats_dict": largest["incremental_speedup_vs_dict"] > 1.0,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    ok = all(report["gates"].values())
    print("gates:", report["gates"], "->", "PASS" if ok else "FAIL")
    if args.quick:
        # Smoke mode exists to keep the script from rotting (and to verify
        # the configurations agree); timing gates need real graph sizes.
        return 0
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
