"""E2 / Table 3 — index construction with threshold σ = 0.95.

For every dataset: the auto-selected k, the size of the residual graph
``G_k``, the total label size, and construction time.  Shape targets from
the paper: |V_Gk| is a small fraction of |V|; web yields the deepest k and
the largest label size (bigger than btc's despite fewer vertices).
"""

import pytest

from repro.bench import emit, fmt_bytes, fmt_count, fmt_ms, render_table
from repro.bench.paper import DATASET_ORDER, TABLE3
from repro.core.index import ISLabelIndex
from repro.workloads.datasets import load_dataset


@pytest.mark.parametrize("dataset", DATASET_ORDER)
def test_table3_build_one(benchmark, dataset):
    """Per-dataset construction timing (one full build per round)."""
    graph = load_dataset(dataset)
    index = benchmark.pedantic(
        ISLabelIndex.build, args=(graph,), kwargs={"sigma": 0.95}, rounds=1, iterations=1
    )
    assert index.stats.gk_vertices < graph.num_vertices


def test_table3_emit_table(benchmark):
    rows = []
    measured = {}
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        index = ISLabelIndex.build(graph, sigma=0.95)
        st = index.stats
        measured[name] = st
        p_k, p_gkv, p_gke, p_label, p_secs = TABLE3[name]
        rows.append(
            (
                name,
                st.k,
                p_k,
                fmt_count(st.gk_vertices),
                fmt_count(p_gkv),
                fmt_count(st.gk_edges),
                fmt_count(p_gke),
                fmt_bytes(st.label_bytes),
                p_label,
                f"{st.build_seconds:.2f}",
                f"{p_secs:.2f}",
            )
        )
    benchmark(lambda: measured)  # table assembly is the benchmarked no-op

    emit(
        "table3",
        render_table(
            "Table 3 — index construction, σ=0.95 (measured vs paper)",
            (
                "dataset",
                "k",
                "k paper",
                "|V_Gk|",
                "paper",
                "|E_Gk|",
                "paper",
                "label size",
                "paper",
                "build s",
                "paper s",
            ),
            rows,
        ),
    )

    # Shape assertions mirroring the paper's observations.
    for name in DATASET_ORDER:
        st = measured[name]
        assert st.gk_vertices <= 0.15 * st.num_vertices, (
            f"{name}: G_k should be a small fraction of the graph"
        )
    assert measured["web"].k == max(m.k for m in measured.values()), (
        "web has the deepest hierarchy, as in the paper"
    )
    assert measured["web"].label_bytes > measured["btc"].label_bytes * 0.5, (
        "web's labels are comparatively large despite fewer vertices"
    )
    assert measured["wikitalk"].k <= min(
        measured[n].k for n in ("btc", "web", "google")
    ), "wikitalk has the shallowest hierarchy of the big datasets"
