"""E3 / Table 4 — query time split, σ = 0.95.

1000 random queries per dataset against the disk-storage index.  Time (a)
is the simulated label-fetch I/O time (10 ms per block read, the paper's
measured disk benchmark); Time (b) is the measured CPU time of the
label-intersection + bi-Dijkstra stage.  Paper shape: Time (a) dominates
everywhere (one I/O per label, ≥10 ms); btc has the smallest Time (b) (its
G_k search is trivial thanks to low degree); web has the largest Time (a)
(largest labels).
"""

import itertools

import pytest

from repro.bench import (
    DEFAULT_QUERY_COUNT,
    built_index,
    emit,
    fmt_ms,
    render_table,
    run_query_workload,
)
from repro.bench.paper import DATASET_ORDER, TABLE4
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs


@pytest.mark.parametrize("dataset", DATASET_ORDER)
def test_table4_single_query(benchmark, dataset):
    """Per-dataset single-query latency distribution (pytest-benchmark)."""
    index = built_index(dataset, storage="disk")
    pairs = itertools.cycle(random_query_pairs(load_dataset(dataset), 256, seed=7))
    result = benchmark(lambda: index.query(*next(pairs)))
    assert result is not None


def test_table4_emit_table(benchmark):
    rows = []
    summaries = {}
    for name in DATASET_ORDER:
        index = built_index(name, storage="disk")
        pairs = random_query_pairs(load_dataset(name), DEFAULT_QUERY_COUNT, seed=7)
        summary = run_query_workload(index, pairs)
        summaries[name] = summary
        p_total, p_a, p_b = TABLE4[name]
        rows.append(
            (
                name,
                index.k,
                fmt_ms(summary.avg_total_ms),
                fmt_ms(p_total),
                fmt_ms(summary.avg_time_a_ms),
                fmt_ms(p_a),
                fmt_ms(summary.avg_time_b_ms),
                fmt_ms(p_b),
            )
        )
    benchmark(lambda: summaries)

    emit(
        "table4",
        render_table(
            "Table 4 — avg query time over 1000 random queries, σ=0.95 "
            "(measured vs paper; Time (a) = simulated label I/O)",
            (
                "dataset",
                "k",
                "total ms",
                "paper",
                "Time(a) ms",
                "paper",
                "Time(b) ms",
                "paper",
            ),
            rows,
        ),
    )

    # Shape assertions from the paper's discussion.
    for name in DATASET_ORDER:
        s = summaries[name]
        assert s.avg_time_a_ms >= 10.0, (
            f"{name}: nearly every query reads two labels at >=10ms/IO"
        )
        assert s.avg_time_a_ms > s.avg_time_b_ms, (
            f"{name}: disk I/O dominates the query time, as in the paper"
        )
    cheapest_b = min(s.avg_time_b_ms for s in summaries.values())
    assert summaries["btc"].avg_time_b_ms <= 1.5 * cheapest_b, (
        "btc's bi-Dijkstra stage is among the cheapest (low average degree)"
    )
    slowest_two = sorted(summaries, key=lambda n: -summaries[n].avg_time_b_ms)[:2]
    assert set(slowest_two) == {"web", "skitter"}, (
        "web and skitter pay the most search CPU, as in the paper"
    )
    for name in DATASET_ORDER:
        assert 1.5 <= summaries[name].avg_label_ios <= 2.5, (
            f"{name}: a random query fetches ~two labels at ~one I/O each"
        )
