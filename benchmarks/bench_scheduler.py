"""Shard-aware scheduling vs naive per-query serving, plus a remote fleet.

Measures what the serving subsystem (`repro/serving/`) buys on top of the
PR 4 sharded snapshots:

* **scheduled vs naive throughput** — the same query set answered (a) by
  a naive per-query ``index.distance(s, t)`` loop against the sharded
  engine and (b) by :class:`repro.serving.scheduler.ShardScheduler`,
  which buckets the stream per owning shard pair and dispatches each
  bucket as one batched ``distances()`` call.  The acceptance gate
  demands >= 2x on the largest stand-in (batching amortizes shard
  routing, ``batch_eq1`` and the lazy all-pairs row fills).
* **remote fleet QPS** — worker subprocesses run ``repro serve`` over the
  same sharded snapshot, each owning a contiguous shard slice; the
  ``"remote"`` engine schedules the query set over the fleet and the
  aggregate throughput is recorded.  The fleet is spawned and reaped by
  :class:`repro.serving.chaos.FaultInjector` and the query pairs and
  latency percentiles come from :mod:`repro.loadgen` — the same harness
  every serving benchmark runs on.
* **bit-identity** — naive, scheduled and remote answers are all checked
  against the fast engine's; disagreement aborts the run.
* **clean teardown** — the fleet is shut down over the wire with a
  timeout guard and every child must be reaped (no orphaned processes);
  a straggler fails the ``workers_reaped`` gate.

Emits ``BENCH_scheduler.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler.py           # full
    PYTHONPATH=src python benchmarks/bench_scheduler.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_snapshot
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.loadgen import LatencySummary, uniform_pairs
from repro.serving.chaos import FaultInjector
from repro.serving.remote import RemoteEngine
from repro.serving.scheduler import SchedulerPolicy, ShardScheduler, assign_shards
from repro.workloads.datasets import load_dataset

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Ordered smallest to largest; the last entry carries the gates.
FULL_DATASETS = [
    ("grid40", lambda: grid_graph(40, 40, seed=11, max_weight=8)),
    ("google", lambda: load_dataset("google", 1.0)),
    ("skitter", lambda: load_dataset("skitter", 1.0)),
    ("web", lambda: load_dataset("web", 1.0)),
]

QUICK_DATASETS = [
    ("grid10", lambda: grid_graph(10, 10, seed=11, max_weight=8)),
    ("google-s", lambda: load_dataset("google", 0.15)),
]

SHARDS = 8


# ----------------------------------------------------------------------
# Per-dataset measurement
# ----------------------------------------------------------------------
def bench_dataset(
    name: str,
    graph: Graph,
    tmp: str,
    queries: int,
    workers: int,
    repeats: int,
) -> Dict[str, object]:
    built = ISLabelIndex.build(graph, engine="fast")
    pairs = uniform_pairs(graph.vertices(), queries, seed=7)
    expected = built.distances(pairs)

    snap_path = os.path.join(tmp, f"{name}.shards")
    save_snapshot(built, snap_path, shards=SHARDS)

    # Each mode runs `repeats` passes on its own fresh load: pass 1 is
    # the cold number (label views still materializing), the best pass is
    # the steady-state serving throughput the gate judges — one pass per
    # mode is too noisy to gate a ratio on.
    served = load_index(snap_path, engine="sharded")
    naive_times = []
    naive_latencies = []
    for rep in range(repeats):
        started = time.perf_counter()
        if rep == repeats - 1:
            # Last pass times each query so the row carries percentiles
            # from the shared summary implementation, not just a mean.
            naive = []
            for s, t in pairs:
                q0 = time.perf_counter()
                naive.append(served.distance(s, t))
                naive_latencies.append(time.perf_counter() - q0)
        else:
            naive = [served.distance(s, t) for s, t in pairs]
        naive_times.append(time.perf_counter() - started)
        if naive != expected:
            raise AssertionError(f"{name}: naive per-query disagrees with fast")

    served = load_index(snap_path, engine="sharded")
    scheduler = ShardScheduler.for_engine(served)
    scheduled_times = []
    for _ in range(repeats):
        # Per-pass counters: stats() totals are lifetime numbers and
        # drain() deliberately leaves them alone, so each measured pass
        # starts from zero instead of accumulating across repeats.
        scheduler.reset()
        started = time.perf_counter()
        scheduled = scheduler.schedule(pairs)
        scheduled_times.append(time.perf_counter() - started)
        if scheduled != expected:
            raise AssertionError(f"{name}: scheduled batching disagrees with fast")

    naive_best = min(naive_times)
    scheduled_best = min(scheduled_times)
    row: Dict[str, object] = {
        "dataset": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "label_entries": built.stats.label_entries,
        "queries": len(pairs),
        "shards": SHARDS,
        "repeats": repeats,
        "naive_cold_seconds": naive_times[0],
        "naive_seconds": naive_best,
        "naive_qps": len(pairs) / naive_best if naive_best else float("inf"),
        "scheduled_cold_seconds": scheduled_times[0],
        "scheduled_seconds": scheduled_best,
        "scheduled_qps": (
            len(pairs) / scheduled_best if scheduled_best else float("inf")
        ),
        "scheduled_speedup": (
            naive_best / scheduled_best if scheduled_best else float("inf")
        ),
        "scheduled_cold_speedup": (
            naive_times[0] / scheduled_times[0]
            if scheduled_times[0]
            else float("inf")
        ),
        "dispatch_calls_per_pass": scheduler.dispatch_calls,
        "scheduler_stats": scheduler.stats(),
        "naive_latency": LatencySummary.from_latencies(
            naive_latencies, naive_times[-1]
        ).to_dict(),
        "answers_agree": True,
    }

    if workers > 0:
        injector = FaultInjector()
        try:
            injector.spawn_fleet(snap_path, assign_shards(SHARDS, workers))
            engine = RemoteEngine(
                addresses=injector.addresses,
                policy=SchedulerPolicy(max_batch=2048),
            )
            remote = engine.distances(pairs)
            if remote != expected:
                raise AssertionError(f"{name}: remote fleet disagrees with fast")
            started = time.perf_counter()
            engine.distances(pairs)
            remote_seconds = time.perf_counter() - started
            remote_stats = engine.scheduler.stats() if engine.scheduler else None
            engine.close()
        finally:
            reaped = injector.teardown()
        row["fleet"] = {
            "workers": workers,
            "remote_seconds": remote_seconds,
            "remote_qps": (
                len(pairs) / remote_seconds if remote_seconds else float("inf")
            ),
            "scheduler_stats": remote_stats,
            "remote_bit_identical": True,
            "workers_reaped": reaped,
        }
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graphs / few queries (CI smoke)"
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument(
        "--workers", type=int, default=None, help="remote fleet size (0 = skip)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="passes per mode (best is gated)"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_scheduler.json"),
        help="output JSON path (default: repo root BENCH_scheduler.json)",
    )
    args = parser.parse_args(argv)

    datasets = QUICK_DATASETS if args.quick else FULL_DATASETS
    queries = args.queries or (150 if args.quick else 2000)
    workers = args.workers if args.workers is not None else (2 if args.quick else 4)

    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-sched-") as tmp:
        for name, builder in datasets:
            graph = builder()
            row = bench_dataset(name, graph, tmp, queries, workers, args.repeats)
            results.append(row)
            print(
                f"{name:10s} |V|={row['num_vertices']:>6} | "
                f"naive {row['naive_qps']:>9,.0f} qps | "
                f"scheduled {row['scheduled_qps']:>9,.0f} qps "
                f"({row['scheduled_speedup']:5.1f}x steady, "
                f"{row['scheduled_cold_speedup']:4.1f}x cold, "
                f"{row['dispatch_calls_per_pass']} dispatches)"
            )
            if "fleet" in row:
                fleet = row["fleet"]
                print(
                    f"{'':10s} fleet x{fleet['workers']} "
                    f"{fleet['remote_qps']:>9,.0f} qps remote "
                    f"(bit-identical={fleet['remote_bit_identical']}, "
                    f"reaped={fleet['workers_reaped']})"
                )

    largest = results[-1]
    gates = {
        "scheduled_at_least_2x_naive": largest["scheduled_speedup"] >= 2.0,
        "answers_bit_identical": all(r["answers_agree"] for r in results),
        "remote_bit_identical": all(
            r["fleet"]["remote_bit_identical"] for r in results if "fleet" in r
        ),
        "workers_reaped": all(
            r["fleet"]["workers_reaped"] for r in results if "fleet" in r
        ),
    }
    report = {
        "benchmark": "scheduler",
        "mode": "quick" if args.quick else "full",
        "queries_per_dataset": queries,
        "workers": workers,
        "shards": SHARDS,
        "datasets": results,
        "largest_dataset": largest["dataset"],
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    ok = all(gates.values())
    print("gates:", gates, "->", "PASS" if ok else "FAIL")
    if args.quick:
        # Smoke mode keeps the script (and the agreement/teardown checks)
        # alive; the timing gate is meaningless on tiny graphs.
        return 0 if gates["workers_reaped"] and gates["answers_bit_identical"] else 1
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
