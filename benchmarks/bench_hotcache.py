"""Hot-pair distance cache + landmark-bounded approximate tier.

Measures what the ``cached:*`` read-through tier (`repro/caching/`)
buys on skewed traffic, and proves it never lies:

* **cached vs uncached throughput** — the same Zipf(θ)-skewed query
  stream answered by the bare fast engine and by ``cached:fast``, at
  θ ∈ {0.8, 1.1}.  The cache is warmed with one seed's draws and
  measured on *fresh* draws from a second seed of the same
  distribution, so the cold-pass hit rate is the honest "new traffic
  against a warm cache" number, not a replay artifact.  Each mode then
  runs ``repeats`` passes over the measure stream; the best pass is the
  steady-state number the gate judges (matching ``bench_scheduler``'s
  protocol).  The acceptance gate demands >= 3x QPS at θ = 1.1.
* **staleness-freedom** — a ``cached:fast`` dynamic index replays mixed
  §8.3 update waves (pendant grafts, pendant removals, and core
  deletions that force the conservative flush path) interleaved with
  hot reads; every single exact read is checked bit-identical against
  the dict reference oracle.  The gate demands zero stale answers.
* **sketch tier** — per-vertex hub sketches (top-``h`` entries by
  hierarchy order) against the full labels they truncate.  Measured on
  a ``full=True`` index, where every label is a complete hub set and
  the merge-cost ratio is the real work saved per query; the gate
  demands >= 2x reduction, and the observed exactness fraction of the
  upper bounds is reported alongside (bounds are checked one-sided
  against the exact answers — a violation aborts the run).

Emits ``BENCH_hotcache.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotcache.py           # full
    PYTHONPATH=src python benchmarks/bench_hotcache.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import math
import random
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.index import ISLabelIndex
from repro.core.updates import DynamicISLabelIndex
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.loadgen import LatencySummary
from repro.loadgen.generators import derive_seed, zipf_pairs
from repro.workloads.datasets import load_dataset

REPO_ROOT = Path(__file__).resolve().parents[1]

THETAS = (0.8, 1.1)
GATE_THETA = 1.1


# ----------------------------------------------------------------------
# Cached vs uncached throughput on Zipf traffic
# ----------------------------------------------------------------------
def _timed_passes(
    answer, pairs: List[Tuple[int, int]], repeats: int
) -> Tuple[List[float], List[float]]:
    """Wall time per pass plus per-query latencies from the last pass."""
    times: List[float] = []
    latencies: List[float] = []
    for rep in range(repeats):
        started = time.perf_counter()
        if rep == repeats - 1:
            for s, t in pairs:
                q0 = time.perf_counter()
                answer([(s, t)])
                latencies.append(time.perf_counter() - q0)
        else:
            answer(pairs)
        times.append(time.perf_counter() - started)
    return times, latencies


def bench_theta(
    graph: Graph, theta: float, queries: int, repeats: int, seed: int
) -> Dict[str, object]:
    vertices = sorted(graph.vertices())
    warm_pairs = zipf_pairs(
        vertices, queries, derive_seed(seed, "warm", theta), theta=theta
    )
    measure_pairs = zipf_pairs(
        vertices, queries, derive_seed(seed, "measure", theta), theta=theta
    )

    uncached = ISLabelIndex.build(graph, engine="fast")
    expected = uncached.distances(measure_pairs)
    uncached_times, uncached_lat = _timed_passes(
        uncached.distances, measure_pairs, repeats
    )

    cached = ISLabelIndex.build(graph, engine="cached:fast")
    cached.distances(warm_pairs)  # warm with a *different* seed's draws
    cached._fast.cache.reset_counters()
    answers = cached.distances(measure_pairs)
    if answers != expected:
        raise AssertionError(f"theta={theta}: cached disagrees with fast")
    cold_hit_rate = cached._fast.cache.hit_rate
    cached_times, cached_lat = _timed_passes(
        cached.distances, measure_pairs, repeats
    )

    uncached_best = min(uncached_times)
    cached_best = min(cached_times)
    return {
        "theta": theta,
        "queries": queries,
        "repeats": repeats,
        "uncached_qps": queries / uncached_best if uncached_best else math.inf,
        "cached_qps": queries / cached_best if cached_best else math.inf,
        "cached_speedup": (
            uncached_best / cached_best if cached_best else math.inf
        ),
        "warm_hit_rate": cold_hit_rate,
        "steady_hit_rate": cached._fast.cache.hit_rate,
        "uncached_latency": LatencySummary.from_latencies(
            uncached_lat, uncached_times[-1]
        ).to_dict(),
        "cached_latency": LatencySummary.from_latencies(
            cached_lat, cached_times[-1]
        ).to_dict(),
        "cache_stats": cached._fast.cache.stats(),
        "bit_identical": True,
    }


# ----------------------------------------------------------------------
# Staleness-freedom under mixed §8.3 update waves
# ----------------------------------------------------------------------
def bench_staleness(
    graph: Graph, waves: int, reads_per_wave: int, seed: int
) -> Dict[str, object]:
    rng = random.Random(derive_seed(seed, "staleness"))
    cached = DynamicISLabelIndex(graph, engine="cached:fast")
    oracle = DynamicISLabelIndex(graph, engine="dict")
    next_id = 1_000_000
    grafts: List[int] = []
    stale = 0
    reads = 0
    for wave in range(waves):
        vertices = sorted(cached.graph.vertices())
        roll = rng.random()
        if roll < 0.55 or len(vertices) <= 3:
            # Pendant graft — the targeted-eviction fast path.
            anchor = rng.choice(vertices)
            adjacency = {anchor: rng.randint(1, 6)}
            for dyn in (cached, oracle):
                dyn.insert_vertex(next_id, dict(adjacency))
            grafts.append(next_id)
            next_id += 1
        elif roll < 0.8 and grafts:
            victim = grafts.pop()
            for dyn in (cached, oracle):
                dyn.delete_vertex(victim)
        else:
            # Core deletion — must trip the conservative flush path.
            victim = rng.choice(vertices)
            grafts = [g for g in grafts if g != victim]
            for dyn in (cached, oracle):
                dyn.delete_vertex(victim)
        vertices = sorted(cached.graph.vertices())
        # Hot read mix: half the reads repeat a small working set so the
        # wave's evictions are actually exercised against warm entries.
        hot = vertices[: max(2, len(vertices) // 20)]
        pairs = []
        for _ in range(reads_per_wave):
            pool = hot if rng.random() < 0.5 else vertices
            pairs.append((rng.choice(pool), rng.choice(pool)))
        got = cached.distances(pairs)
        want = [oracle.distance(s, t) for s, t in pairs]
        stale += sum(1 for g, w in zip(got, want) if g != w)
        reads += len(pairs)
    stats = cached.index._fast.cache.stats()
    return {
        "waves": waves,
        "reads": reads,
        "stale_answers": stale,
        "hit_rate": stats["hit_rate"],
        "flushes": stats["flushes"],
        "targeted_evictions": stats["invalidated"],
        "cache_stats": stats,
    }


# ----------------------------------------------------------------------
# Sketch tier: merge-cost reduction + observed exactness
# ----------------------------------------------------------------------
def bench_sketch(
    graph: Graph, h: int, queries: int, seed: int
) -> Dict[str, object]:
    # full=True gives complete hub labels (empty G_k search stage), so
    # the sketch's top-h truncation is measured against the real per-
    # query merge work rather than the trivial partial-hierarchy labels.
    index = ISLabelIndex.build(graph, engine="fast", full=True)
    vertices = sorted(graph.vertices())
    rng = random.Random(derive_seed(seed, "sketch"))
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(queries)
    ]
    exact = index.distances(pairs)

    sketch = index.hub_sketch(h=h)
    started = time.perf_counter()
    bounds = index.distances(pairs, approx=True)
    sketch_seconds = time.perf_counter() - started

    violations = sum(1 for b, e in zip(bounds, exact) if b < e - 1e-9)
    if violations:
        raise AssertionError(
            f"sketch produced {violations} bounds below the exact distance"
        )
    finite = [
        (b, e) for b, e in zip(bounds, exact) if not math.isinf(e)
    ]
    exact_hits = sum(1 for b, e in finite if b == e)
    stats = sketch.stats()
    return {
        "h": h,
        "queries": queries,
        "label_entries_full": stats["full_entries_merged"],
        "label_entries_sketch": stats["sketch_entries_merged"],
        "merge_cost_reduction": stats["merge_cost_reduction"],
        "claimed_exact_fraction": stats["exact_known_fraction"],
        "observed_exact_fraction": (
            exact_hits / len(finite) if finite else 1.0
        ),
        "bound_violations": violations,
        "sketch_seconds": sketch_seconds,
        "sketch_qps": (
            queries / sketch_seconds if sketch_seconds else math.inf
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graphs / few queries (CI smoke)"
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument(
        "--repeats", type=int, default=3, help="passes per mode (best is gated)"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_hotcache.json"),
        help="output JSON path (default: repo root BENCH_hotcache.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        graph = grid_graph(12, 12, seed=11, max_weight=8)
        sketch_graph = grid_graph(10, 10, seed=11, max_weight=8)
        queries = args.queries or 300
        waves, reads_per_wave = 12, 30
        sketch_queries = 300
    else:
        graph = load_dataset("google", 1.0)
        sketch_graph = load_dataset("google", 0.3)
        queries = args.queries or 4000
        waves, reads_per_wave = 40, 100
        sketch_queries = 2000

    zipf_rows = []
    for theta in THETAS:
        row = bench_theta(graph, theta, queries, args.repeats, args.seed)
        zipf_rows.append(row)
        print(
            f"theta={theta:3.1f} | uncached {row['uncached_qps']:>10,.0f} qps | "
            f"cached {row['cached_qps']:>10,.0f} qps "
            f"({row['cached_speedup']:5.1f}x steady) | "
            f"warm hit rate {row['warm_hit_rate']:.2f}"
        )

    staleness = bench_staleness(graph, waves, reads_per_wave, args.seed)
    print(
        f"staleness  | {staleness['reads']} reads over {staleness['waves']} "
        f"waves | stale={staleness['stale_answers']} | "
        f"hit rate {staleness['hit_rate']:.2f} | "
        f"flushes={staleness['flushes']} "
        f"targeted={staleness['targeted_evictions']}"
    )

    sketch = bench_sketch(sketch_graph, h=4, queries=sketch_queries, seed=args.seed)
    print(
        f"sketch h={sketch['h']} | merge cost /{sketch['merge_cost_reduction']:.1f} | "
        f"exact {sketch['observed_exact_fraction']:.2f} observed "
        f"({sketch['claimed_exact_fraction']:.2f} claimed) | "
        f"violations={sketch['bound_violations']}"
    )

    gate_row = next(r for r in zipf_rows if r["theta"] == GATE_THETA)
    gates = {
        "cached_at_least_3x_uncached": gate_row["cached_speedup"] >= 3.0,
        "zero_stale_answers": staleness["stale_answers"] == 0,
        "answers_bit_identical": all(r["bit_identical"] for r in zipf_rows),
        "sketch_merge_cost_at_least_2x": sketch["merge_cost_reduction"] >= 2.0,
        "sketch_bounds_one_sided": sketch["bound_violations"] == 0,
    }
    report = {
        "benchmark": "hotcache",
        "mode": "quick" if args.quick else "full",
        "queries": queries,
        "gate_theta": GATE_THETA,
        "zipf": zipf_rows,
        "staleness": staleness,
        "sketch": sketch,
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    ok = all(gates.values())
    print("gates:", gates, "->", "PASS" if ok else "FAIL")
    if args.quick:
        # Smoke mode keeps the correctness gates (staleness, bit-identity,
        # one-sided bounds) alive; timing ratios are meaningless on tiny
        # graphs under CI noise.
        return (
            0
            if gates["zero_stale_answers"]
            and gates["answers_bit_identical"]
            and gates["sketch_bounds_one_sided"]
            else 1
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
