"""E13 / §8.1 — shortest-path (not just distance) queries.

Builds a path-enabled index (intermediate-vertex hints on augmenting edges
and predecessor hops in labels), reconstructs full paths for a random
workload, validates every path edge-by-edge against the original graph,
and reports reconstruction throughput — the paper's claim is an expansion
cost of O(|SP(s,t)|) on top of the distance query.
"""

import itertools

import pytest

from repro.bench import emit, fmt_ms, render_table
from repro.core.index import ISLabelIndex
from repro.core.paths import PathReconstructor, is_valid_path, path_length
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs

DATASETS = ("skitter", "google")
SCALE = 0.4
QUERIES = 300


@pytest.mark.parametrize("dataset", DATASETS)
def test_path_query_latency(benchmark, dataset):
    graph = load_dataset(dataset, SCALE)
    reconstructor = PathReconstructor(ISLabelIndex.build(graph, with_paths=True))
    pairs = itertools.cycle(random_query_pairs(graph, 64, seed=37))
    benchmark(lambda: reconstructor.shortest_path(*next(pairs)))


def test_path_queries_emit(benchmark):
    import time

    rows = []
    for name in DATASETS:
        graph = load_dataset(name, SCALE)
        index = ISLabelIndex.build(graph, with_paths=True)
        reconstructor = PathReconstructor(index)
        pairs = random_query_pairs(graph, QUERIES, seed=37)

        started = time.perf_counter()
        results = [reconstructor.shortest_path(s, t) for s, t in pairs]
        elapsed_ms = 1000.0 * (time.perf_counter() - started) / len(pairs)

        hops = []
        for (s, t), (dist, path) in zip(pairs, results):
            if path is None:
                continue
            assert path[0] == s and path[-1] == t
            assert is_valid_path(graph, path), f"invalid path for ({s}, {t})"
            assert path_length(graph, path) == dist
            hops.append(len(path) - 1)
        rows.append(
            (
                name,
                len(hops),
                f"{sum(hops) / len(hops):.1f}",
                max(hops),
                fmt_ms(elapsed_ms),
            )
        )
    benchmark(lambda: rows)

    emit(
        "path_queries",
        render_table(
            "§8.1 — path reconstruction (every path validated edge-by-edge)",
            ("dataset", "paths", "avg hops", "max hops", "avg ms/query"),
            rows,
        ),
    )
