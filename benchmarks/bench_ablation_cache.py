"""E17 (ablation) — label caching and the Time (a) gap to the paper.

Our cold-cache Table 4 charges every query two full label fetches
(~20 ms), while the paper's measured Time (a) sits at 10–12 ms on most
datasets — their OS page cache absorbed part of the traffic.  This
ablation reruns the Table 4 workload through an LRU block cache of varying
size and shows Time (a) falling from the cold 20 ms towards the paper's
measured band as hot labels stay resident.
"""

import pytest

from repro.bench import emit, fmt_ms, render_table, run_query_workload
from repro.core.index import ISLabelIndex
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs, zipf_query_pairs

DATASET = "wikitalk"
QUERIES = 1000
CACHE_SIZES = (0, 64, 512, 4096)  # blocks; 0 = no cache


def _build(cache_blocks):
    graph = load_dataset(DATASET)
    return ISLabelIndex.build(
        graph,
        storage="disk",
        cache_blocks=None if cache_blocks == 0 else cache_blocks,
    )


@pytest.mark.parametrize("cache_blocks", CACHE_SIZES[1:])
def test_cached_query_latency(benchmark, cache_blocks):
    import itertools

    index = _build(cache_blocks)
    pairs = itertools.cycle(random_query_pairs(load_dataset(DATASET), 128, seed=67))
    benchmark(lambda: index.query(*next(pairs)))


def test_ablation_cache_emit(benchmark):
    graph = load_dataset(DATASET)
    # Draw the skewed workload among below-k vertices only: G_k endpoints
    # have implicit labels and would skip label I/O regardless of caching.
    probe = _build(0)
    below = [v for v in graph.vertices() if not probe.hierarchy.in_gk(v)]
    below_graph = graph.induced_subgraph(below)
    workloads = {
        "uniform": random_query_pairs(graph, QUERIES, seed=67),
        "zipf": zipf_query_pairs(below_graph, QUERIES, seed=67, exponent=1.3),
    }
    rows = []
    results = {}
    for workload_name, pairs in workloads.items():
        for cache_blocks in CACHE_SIZES:
            index = _build(cache_blocks)
            summary = run_query_workload(index, pairs)
            results[(workload_name, cache_blocks)] = summary
            hit_rate = "-"
            if cache_blocks:
                hit_rate = f"{index._store.cache.stats.hit_rate:.1%}"
            rows.append(
                (
                    workload_name,
                    cache_blocks if cache_blocks else "cold",
                    fmt_ms(summary.avg_time_a_ms),
                    f"{summary.avg_label_ios:.2f}",
                    hit_rate,
                    fmt_ms(summary.avg_total_ms),
                )
            )
    benchmark(lambda: results)

    emit(
        "ablation_cache",
        render_table(
            f"Ablation — LRU label cache on {DATASET} "
            "(paper Time (a) = 10.85 ms; cold model = ~20 ms)",
            (
                "workload",
                "cache blocks",
                "Time(a) ms",
                "label I/Os",
                "hit rate",
                "total ms",
            ),
            rows,
        ),
    )

    # Monotone shape per workload: more cache, less label I/O; and the
    # skewed workload benefits far more than the uniform one.
    for workload_name in workloads:
        ios = [results[(workload_name, c)].avg_label_ios for c in CACHE_SIZES]
        assert all(a >= b for a, b in zip(ios, ios[1:])), "cache must reduce I/O"
    biggest = CACHE_SIZES[-1]
    assert (
        results[("zipf", biggest)].avg_label_ios
        < results[("uniform", biggest)].avg_label_ios
    ), "a skewed workload caches better than a uniform one"
