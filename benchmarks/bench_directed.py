"""E14 / §8.2 — directed graphs: in/out labels and directed queries.

Builds the directed IS-LABEL index on a directed version of the google
stand-in (each undirected edge becomes one or two arcs), verifies directed
distances against directed Dijkstra, and compares query latency.  Also
exercises the §9 reachability by-product.
"""

import itertools
import math
import random
import time

import pytest

from repro.baselines.dijkstra import dijkstra_digraph_distance
from repro.bench import emit, fmt_ms, render_table
from repro.core.directed import DirectedISLabelIndex
from repro.graph.digraph import DiGraph
from repro.workloads.datasets import load_dataset

SCALE = 0.35
QUERIES = 300


def _directed_dataset(name: str, seed: int = 43) -> DiGraph:
    rng = random.Random(seed)
    undirected = load_dataset(name, SCALE)
    dg = DiGraph()
    for v in undirected.vertices():
        dg.add_vertex(v)
    for u, v, w in undirected.edges():
        roll = rng.random()
        if roll < 0.45:
            dg.merge_edge(u, v, w)
        elif roll < 0.9:
            dg.merge_edge(v, u, w)
        else:
            dg.merge_edge(u, v, w)
            dg.merge_edge(v, u, w)
    return dg


def test_directed_query_latency(benchmark):
    dg = _directed_dataset("google")
    index = DirectedISLabelIndex.build(dg)
    vertices = sorted(dg.vertices())
    rng = random.Random(47)
    pairs = itertools.cycle(
        [(rng.choice(vertices), rng.choice(vertices)) for _ in range(64)]
    )
    benchmark(lambda: index.distance(*next(pairs)))


def test_directed_emit(benchmark):
    rows = []
    for name in ("google", "skitter"):
        dg = _directed_dataset(name)
        index = DirectedISLabelIndex.build(dg)
        vertices = sorted(dg.vertices())
        rng = random.Random(47)
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(QUERIES)]

        started = time.perf_counter()
        answers = [index.distance(s, t) for s, t in pairs]
        index_ms = 1000.0 * (time.perf_counter() - started) / len(pairs)

        started = time.perf_counter()
        expected = [dijkstra_digraph_distance(dg, s, t) for s, t in pairs]
        dijkstra_ms = 1000.0 * (time.perf_counter() - started) / len(pairs)

        assert answers == expected, f"{name}: directed answers must be exact"
        reachable = sum(1 for a in answers if not math.isinf(a))
        rows.append(
            (
                name,
                index.k,
                index.label_entries,
                f"{reachable}/{len(pairs)}",
                fmt_ms(index_ms),
                fmt_ms(dijkstra_ms),
                f"{dijkstra_ms / index_ms:.1f}x" if index_ms else "-",
            )
        )
    benchmark(lambda: rows)

    emit(
        "directed",
        render_table(
            "§8.2 — directed IS-LABEL vs directed Dijkstra (all answers verified)",
            (
                "dataset",
                "k",
                "label entries",
                "reachable",
                "index ms",
                "dijkstra ms",
                "speedup",
            ),
            rows,
        ),
    )
