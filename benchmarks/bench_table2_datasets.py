"""E1 / Table 2 — dataset statistics.

Regenerates the paper's dataset table for the scaled synthetic stand-ins
and prints it next to the published numbers.  The scale factor per dataset
is |V|_paper / |V|_ours; every other column should preserve the paper's
*ordering* (btc largest and sparsest, wikitalk the most hub-skewed, ...).
"""

from repro.bench import emit, fmt_count, render_table
from repro.bench.paper import DATASET_ORDER, TABLE2
from repro.graph.stats import graph_stats, human_bytes
from repro.workloads.datasets import load_dataset


def test_table2_dataset_stats(benchmark):
    stats = {}
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        stats[name] = graph_stats(graph)

    # Benchmark the stats computation itself on the largest dataset.
    benchmark(graph_stats, load_dataset("btc"))

    rows = []
    for name in DATASET_ORDER:
        s = stats[name]
        p_v, p_e, p_avg, p_max, p_disk = TABLE2[name]
        rows.append(
            (
                name,
                fmt_count(s.num_vertices),
                fmt_count(p_v),
                fmt_count(s.num_edges),
                fmt_count(p_e),
                f"{s.avg_degree:.2f}",
                f"{p_avg:.2f}",
                fmt_count(s.max_degree),
                fmt_count(p_max),
                human_bytes(s.disk_size_bytes),
                p_disk,
            )
        )
    emit(
        "table2",
        render_table(
            "Table 2 — datasets (measured stand-in vs paper original)",
            (
                "dataset",
                "|V|",
                "|V| paper",
                "|E|",
                "|E| paper",
                "avg deg",
                "paper",
                "max deg",
                "paper",
                "disk",
                "paper",
            ),
            rows,
        ),
    )

    # Shape assertions: orderings the paper's table exhibits.
    sizes = [stats[n].num_vertices for n in ("btc", "web", "wikitalk", "google")]
    assert sizes == sorted(sizes, reverse=True), "|V| ordering must match paper"
    assert stats["btc"].avg_degree < 3.5, "btc must stay the sparsest family"
    hub_ratio = {n: stats[n].max_degree / stats[n].num_vertices for n in DATASET_ORDER}
    assert hub_ratio["wikitalk"] == max(hub_ratio.values()), (
        "wikitalk has the most extreme hub, as in the paper"
    )
