"""E9 / Figures 1–3 — the paper's running example, executed.

Replays the 9-vertex example with the paper's exact level assignment and
asserts the published hierarchy, augmenting edges, Figure 2(b) labels (with
the documented label(f) erratum corrected), the Example 4/6 query answers,
and Example 5's k = 2 labels.
"""

import itertools

from repro.bench import emit, render_table
from repro.core.hierarchy import build_hierarchy_with_levels
from repro.core.index import ISLabelIndex
from repro.core.labeling import top_down_labels
from repro.workloads.paper_example import (
    EXAMPLE5_K2_LABELS,
    EXAMPLE_QUERIES,
    FIGURE2_LABELS,
    PAPER_LEVELS,
    VERTEX_IDS,
    VERTEX_NAMES,
    paper_example_graph,
)


def test_figure1_walkthrough(benchmark):
    graph = paper_example_graph()
    levels = [[VERTEX_IDS[c] for c in level] for level in PAPER_LEVELS]
    hierarchy = build_hierarchy_with_levels(graph, levels, with_hints=True)

    # Figure 1: five levels, empty G6, the three augmenting edges.
    assert hierarchy.k == 6 and hierarchy.is_full
    named_hints = {
        (VERTEX_NAMES[a], VERTEX_NAMES[b]): VERTEX_NAMES[m]
        for (a, b), m in hierarchy.hints.items()
    }
    assert named_hints == {("e", "h"): "f", ("e", "g"): "d", ("a", "g"): "e"}

    # Figure 2(b): every label verbatim (label(f) per the erratum).
    labels, _ = top_down_labels(hierarchy)
    rows = []
    for name, expected in FIGURE2_LABELS.items():
        got = {
            VERTEX_NAMES[w]: d for w, d in labels[VERTEX_IDS[name]].items()
        }
        assert got == expected, f"label({name}): {got} != {expected}"
        rows.append(
            (name, ", ".join(f"({a},{d})" for a, d in sorted(got.items())))
        )

    # Examples 4 and 6: published query answers, on the full hierarchy and
    # the greedy auto-built index alike.
    full_index = ISLabelIndex.build(graph, full=True)
    auto_index = ISLabelIndex.build(graph)
    for s, t, expected_distance in EXAMPLE_QUERIES:
        assert full_index.distance(VERTEX_IDS[s], VERTEX_IDS[t]) == expected_distance
        assert auto_index.distance(VERTEX_IDS[s], VERTEX_IDS[t]) == expected_distance

    # Example 5: the k = 2 labels of c, f, i.
    k2 = build_hierarchy_with_levels(graph, levels[:1])
    k2_labels, _ = top_down_labels(k2)
    for name, expected in EXAMPLE5_K2_LABELS.items():
        got = {VERTEX_NAMES[w]: d for w, d in k2_labels[VERTEX_IDS[name]].items()}
        assert got == expected

    queries = itertools.cycle(EXAMPLE_QUERIES)

    def one_query():
        s, t, _ = next(queries)
        return full_index.distance(VERTEX_IDS[s], VERTEX_IDS[t])

    benchmark(one_query)

    emit(
        "figure1_walkthrough",
        render_table(
            "Figures 1-3 — running example labels (all match the paper; "
            "label(f) per the documented erratum)",
            ("vertex", "label"),
            rows,
        ),
    )
