"""Failover under fire: kill a replicated shard worker mid-stream.

Measures the fault-tolerance contract of the serving stack
(`repro/serving/`): a fleet of three ``repro serve`` subprocesses over
one sharded snapshot with **replication factor 2**
(``assign_shards(..., replication=2)``), driven by the ``"remote"``
engine while a worker is SIGKILLed mid-query-stream.

* **exactness under failover** — every answer produced while the fleet
  is dying/degraded/recovering is checked against the local fast engine;
  one wrong or lost answer aborts the run.
* **recovery time** — how long a bucket took from first failed dispatch
  to a correct answer from a surviving replica, read from the engine's
  ``failovers`` records.
* **steady-state degradation** — best-pass QPS of the full fleet vs the
  same stream after the kill (two survivors), as a ratio.
* **rejoin** — the killed worker is restarted on its old port and the
  heartbeat thread must mark it live again.
* **clean teardown** — every child reaped, asserted hard.

Query pairs, the per-query closed-loop pass and its percentiles come
from :mod:`repro.loadgen` — the shared traffic harness every serving
benchmark runs on.

Emits ``BENCH_failover.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_failover.py           # full
    PYTHONPATH=src python benchmarks/bench_failover.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict

from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_snapshot
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.loadgen import READ, uniform_pairs
from repro.loadgen.drivers import Operation, run_closed_loop
from repro.serving.chaos import FaultInjector
from repro.serving.membership import LIVE, RetryPolicy
from repro.serving.remote import RemoteEngine
from repro.serving.scheduler import SchedulerPolicy, assign_shards
from repro.workloads.datasets import load_dataset

REPO_ROOT = Path(__file__).resolve().parents[1]

FULL_DATASETS = [
    ("grid40", lambda: grid_graph(40, 40, seed=11, max_weight=8)),
    ("google", lambda: load_dataset("google", 1.0)),
]

QUICK_DATASETS = [
    ("grid10", lambda: grid_graph(10, 10, seed=11, max_weight=8)),
]

SHARDS = 6
WORKERS = 3
REPLICATION = 2
#: Tight backoff: the benchmark measures the failover machinery, not the
#: politeness of its default sleeps.
RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.02, max_delay_s=0.25)
REJOIN_TIMEOUT = 30.0


def _timed_pass(engine, pairs, expected, name, phase) -> float:
    started = time.perf_counter()
    got = engine.distances(pairs)
    elapsed = time.perf_counter() - started
    if got != expected:
        raise AssertionError(f"{name}: {phase} answers disagree with fast")
    return elapsed


def bench_dataset(
    name: str, graph: Graph, tmp: str, queries: int, repeats: int
) -> Dict[str, object]:
    built = ISLabelIndex.build(graph, engine="fast")
    pairs = uniform_pairs(graph.vertices(), queries, seed=7)
    expected = built.distances(pairs)
    snap_path = os.path.join(tmp, f"{name}.shards")
    save_snapshot(built, snap_path, shards=SHARDS)
    # Double-check the oracle loads from the same artifact the fleet serves.
    assert load_index(snap_path, engine="fast").distances(pairs[:8]) == expected[:8]

    ownership = assign_shards(SHARDS, WORKERS, replication=REPLICATION)
    fleet = FaultInjector()
    try:
        workers = fleet.spawn_fleet(snap_path, ownership)
        engine = RemoteEngine(
            addresses=fleet.addresses,
            policy=SchedulerPolicy(max_batch=2048),
            retry=RETRY,
            heartbeat_s=0.25,
        )
        try:
            # Steady state, full fleet.
            steady_times = [
                _timed_pass(engine, pairs, expected, name, "steady")
                for _ in range(repeats)
            ]
            steady_best = min(steady_times)

            # Per-query closed-loop percentiles from the shared loadgen
            # driver (one op in flight at a time; same pairs, verified
            # against the same oracle) — latency the batch passes above
            # cannot resolve.
            ops = [Operation(0, READ, i, p) for i, p in enumerate(pairs)]
            steady_latency = run_closed_loop(
                ops, [engine.distance], [None], [expected]
            )
            if not steady_latency["bit_identical"]:
                raise AssertionError(
                    f"{name}: steady per-query answers disagree with fast"
                )

            # Kill one worker mid-stream: a timer SIGKILLs it a fraction
            # of a steady pass into the next pass.
            victim = workers[0]
            killer = threading.Timer(max(steady_best * 0.2, 0.01), victim.kill)
            killer.start()
            kill_pass_s = _timed_pass(engine, pairs, expected, name, "kill")
            killer.join()
            # On tiny streams the pass can finish before the timer fires;
            # the next pass then absorbs the (already dead) worker.
            extra_passes = 0
            while not engine.failovers and extra_passes < 3:
                _timed_pass(engine, pairs, expected, name, "kill-settle")
                extra_passes += 1
            failovers = list(engine.failovers)
            recovery = [f["recovery_s"] for f in failovers]

            # Steady state, degraded fleet (two survivors).
            degraded_times = [
                _timed_pass(engine, pairs, expected, name, "degraded")
                for _ in range(repeats)
            ]
            degraded_best = min(degraded_times)

            # Rejoin: same identity comes back; the heartbeat must notice.
            victim.restart()
            rejoin_started = time.monotonic()
            victim_client = next(
                w for w in engine._workers if w.id == victim.worker_id
            )
            while victim_client.health.state != LIVE:
                if time.monotonic() - rejoin_started > REJOIN_TIMEOUT:
                    break
                time.sleep(0.05)
            rejoin_s = time.monotonic() - rejoin_started
            rejoined = victim_client.health.state == LIVE
            recovered_pass_s = _timed_pass(engine, pairs, expected, name, "rejoined")
        finally:
            engine.close()
    finally:
        reaped = fleet.teardown()

    steady_qps = len(pairs) / steady_best if steady_best else float("inf")
    degraded_qps = len(pairs) / degraded_best if degraded_best else float("inf")
    return {
        "dataset": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "queries": len(pairs),
        "shards": SHARDS,
        "workers": WORKERS,
        "replication": REPLICATION,
        "repeats": repeats,
        "steady_qps": steady_qps,
        "steady_latency": steady_latency["reads"],
        "kill_pass_seconds": kill_pass_s,
        "failovers": len(failovers),
        "failover_retries_max": max((f["retries"] for f in failovers), default=0),
        "recovery_s_max": max(recovery, default=0.0),
        "recovery_s_mean": sum(recovery) / len(recovery) if recovery else 0.0,
        "degraded_qps": degraded_qps,
        "degradation_ratio": (
            degraded_qps / steady_qps if steady_qps else float("inf")
        ),
        "rejoined": rejoined,
        "rejoin_s": rejoin_s,
        "recovered_pass_seconds": recovered_pass_s,
        "answers_exact": True,  # _timed_pass aborts otherwise
        "workers_reaped": reaped,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graph / few queries (CI smoke)"
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument(
        "--repeats", type=int, default=3, help="passes per phase (best is gated)"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_failover.json"),
        help="output JSON path (default: repo root BENCH_failover.json)",
    )
    args = parser.parse_args(argv)

    datasets = QUICK_DATASETS if args.quick else FULL_DATASETS
    queries = args.queries or (200 if args.quick else 2000)

    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-failover-") as tmp:
        for name, builder in datasets:
            row = bench_dataset(name, builder(), tmp, queries, args.repeats)
            results.append(row)
            print(
                f"{name:8s} |V|={row['num_vertices']:>6} | "
                f"steady {row['steady_qps']:>9,.0f} qps | "
                f"degraded {row['degraded_qps']:>9,.0f} qps "
                f"({row['degradation_ratio']:.2f}x) | "
                f"{row['failovers']} failovers, "
                f"recovery <= {row['recovery_s_max'] * 1000:.0f} ms | "
                f"rejoin {row['rejoin_s']:.2f}s "
                f"(reaped={row['workers_reaped']})"
            )

    largest = results[-1]
    gates = {
        "answers_exact_under_failover": all(r["answers_exact"] for r in results),
        "failover_observed": all(r["failovers"] > 0 for r in results),
        "recovery_under_5s": largest["recovery_s_max"] <= 5.0,
        "degradation_at_least_third": largest["degradation_ratio"] >= 1.0 / 3.0,
        "killed_worker_rejoins": all(r["rejoined"] for r in results),
        "workers_reaped": all(r["workers_reaped"] for r in results),
    }
    report = {
        "benchmark": "failover",
        "mode": "quick" if args.quick else "full",
        "queries_per_dataset": queries,
        "workers": WORKERS,
        "shards": SHARDS,
        "replication": REPLICATION,
        "datasets": results,
        "largest_dataset": largest["dataset"],
        "gates": gates,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    ok = all(gates.values())
    print("gates:", gates, "->", "PASS" if ok else "FAIL")
    if args.quick:
        # Smoke mode gates correctness and hygiene only; the timing gates
        # are meaningless on a tiny graph.
        return (
            0
            if (
                gates["answers_exact_under_failover"]
                and gates["failover_observed"]
                and gates["workers_reaped"]
            )
            else 1
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
