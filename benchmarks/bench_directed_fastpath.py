"""Directed fast engine vs dict reference: build parity and query throughput.

The directed counterpart of ``bench_fastpath.py``: runs
``DirectedISLabelIndex.build(engine="dict")`` and ``engine="fast"`` head to
head on directed stand-ins (random orientations of the undirected dataset
generators — each undirected edge becomes one arc, or both with probability
``both``), cross-checks that both engines return identical distances, and
emits machine-readable ``BENCH_directed.json`` at the repo root.

The stand-ins cover the three directed regimes, ordered smallest to largest
by graph size ``|G| = |V| + |A|`` (the paper's size measure):

* deep peeling (``dgrid30``): the hierarchy consumes the whole digraph,
  labels are short and queries are nearly pure Equation 1 — the floor for
  array overheads;
* web-like (``dgoogle``/``dskitter``, denser 35%-bidirectional
  orientations): the σ-rule leaves a real ``G_k`` and the Type-2 search
  matters; ``dskitter-csr`` re-runs skitter with the all-pairs table
  disabled via ``REPRO_APSP_BUDGET_MB=0`` to track the flat-array
  bidirectional search separately;
* scale-free core (``dba6000``, the largest): ``G_k`` just under the
  default table ceiling with long labels — the regime §8.2's machinery is
  built for, and the row the acceptance gates are evaluated on.

Per dataset it reports build seconds per engine (labeling is shared and the
fast engine freezes lazily, so the gate is parity, not speedup),
single-query throughput (``index.distance`` loop), batch throughput
(``index.distances`` — vectorized Equation 1 over the stacked out/in label
arrays plus the batched table reduction or pooled per-direction CSR search
on the fast engine, a per-pair loop on the reference), and the fast
engine's search mode.  Both engines are warmed before timing, so the
numbers are steady-state serving throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_directed_fastpath.py          # full
    PYTHONPATH=src python benchmarks/bench_directed_fastpath.py --quick  # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.directed import DirectedISLabelIndex
from repro.core.fastlabels import APSP_BUDGET_ENV
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    barabasi_albert,
    ensure_connected,
    grid_graph,
    random_weights,
)
from repro.graph.graph import Graph
from repro.workloads.datasets import load_dataset

REPO_ROOT = Path(__file__).resolve().parents[1]


def _orient(undirected: Graph, seed: int, both: float = 0.1) -> DiGraph:
    """Random orientation: each edge becomes one arc (or both)."""
    rng = random.Random(seed)
    one_way = (1.0 - both) / 2
    dg = DiGraph()
    for v in undirected.vertices():
        dg.add_vertex(v)
    for u, v, w in undirected.edges():
        roll = rng.random()
        if roll < one_way:
            dg.merge_edge(u, v, w)
        elif roll < 2 * one_way:
            dg.merge_edge(v, u, w)
        else:
            dg.merge_edge(u, v, w)
            dg.merge_edge(v, u, w)
    return dg


def _ba_digraph(n: int, seed: int) -> DiGraph:
    return _orient(
        ensure_connected(
            random_weights(barabasi_albert(n, 3, seed=13), 9, seed=13), seed=13
        ),
        seed,
    )


#: (name, builder, apsp_budget_mb) — ordered smallest to largest by
#: ``|V| + |A|``; the last entry is the "largest directed stand-in" the
#: acceptance gates are evaluated on.  ``apsp_budget_mb`` overrides the
#: engines' all-pairs-table budget for that row (None keeps the default).
FULL_DATASETS = [
    (
        "dgrid30",
        lambda: _orient(grid_graph(30, 30, seed=11, max_weight=8), 41),
        None,
    ),
    ("dgoogle", lambda: _orient(load_dataset("google", 1.0), 44, both=0.35), None),
    (
        "dskitter",
        lambda: _orient(load_dataset("skitter", 1.0), 43, both=0.35),
        None,
    ),
    # Same skitter graph with the table disabled: tracks the per-direction
    # flat-array bidirectional search on its own.
    (
        "dskitter-csr",
        lambda: _orient(load_dataset("skitter", 1.0), 43, both=0.35),
        0,
    ),
    ("dba6000", lambda: _ba_digraph(6000, 46), None),
]

QUICK_DATASETS = [
    ("dgrid10", lambda: _orient(grid_graph(10, 10, seed=11, max_weight=8), 41), None),
    ("dgoogle-s", lambda: _orient(load_dataset("google", 0.15), 44), None),
    ("dba300-csr", lambda: _ba_digraph(300, 46), 0),
]


def _query_pairs(dg: DiGraph, count: int, seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    vertices = sorted(dg.vertices())
    return [(rng.choice(vertices), rng.choice(vertices)) for _ in range(count)]


def _best_build_seconds(dg: DiGraph, engine: str, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        DirectedISLabelIndex.build(dg, engine=engine)
        best = min(best, time.perf_counter() - started)
    return best


def _time_single(index: DirectedISLabelIndex, pairs) -> float:
    distance = index.distance
    started = time.perf_counter()
    for s, t in pairs:
        distance(s, t)
    return time.perf_counter() - started


def _time_batch(index: DirectedISLabelIndex, pairs) -> float:
    started = time.perf_counter()
    index.distances(pairs)
    return time.perf_counter() - started


def bench_dataset(
    name: str,
    dg: DiGraph,
    queries: int,
    repeats: int,
    apsp_budget_mb: Optional[float] = None,
) -> Dict[str, object]:
    saved_budget = os.environ.get(APSP_BUDGET_ENV)
    if apsp_budget_mb is not None:
        os.environ[APSP_BUDGET_ENV] = str(apsp_budget_mb)
    try:
        build_dict = _best_build_seconds(dg, "dict", repeats)
        build_fast = _best_build_seconds(dg, "fast", repeats)

        dict_index = DirectedISLabelIndex.build(dg, engine="dict")
        fast_index = DirectedISLabelIndex.build(dg, engine="fast")
    finally:
        if apsp_budget_mb is not None:
            if saved_budget is None:
                os.environ.pop(APSP_BUDGET_ENV, None)
            else:
                os.environ[APSP_BUDGET_ENV] = saved_budget
    pairs = _query_pairs(dg, queries, seed=7)

    # Steady-state warm-up: freezes the fast engine's arrays, fills the
    # G_k table rows the workload touches, and cross-checks the engines.
    expected = dict_index.distances(pairs)
    got = fast_index.distances(pairs)
    if expected != got:
        raise AssertionError(f"{name}: engines disagree")

    single_dict = _time_single(dict_index, pairs)
    single_fast = _time_single(fast_index, pairs)
    batch_dict = _time_batch(dict_index, pairs)
    batch_fast = _time_batch(fast_index, pairs)

    reachable = sum(1 for d in expected if not math.isinf(d))
    return {
        "dataset": name,
        "num_vertices": dg.num_vertices,
        "num_arcs": dg.num_edges,
        "k": fast_index.k,
        "gk_vertices": fast_index.hierarchy.gk.num_vertices,
        "label_entries": fast_index.label_entries,
        "queries": len(pairs),
        "reachable_pairs": reachable,
        "search_mode": fast_index.search_mode,
        "build_seconds": {"dict": build_dict, "fast": build_fast},
        "build_ratio_fast_over_dict": build_fast / build_dict,
        "single_query_qps": {
            "dict": len(pairs) / single_dict,
            "fast": len(pairs) / single_fast,
        },
        "batch_qps": {
            "dict": len(pairs) / batch_dict,
            "fast": len(pairs) / batch_fast,
        },
        "single_query_speedup": single_dict / single_fast,
        "batch_speedup": batch_dict / batch_fast,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graphs / few queries (CI smoke)"
    )
    parser.add_argument("--queries", type=int, default=None, help="pairs per dataset")
    # Directed builds on the stand-ins are tens of milliseconds, so the
    # parity ratio needs several repetitions to sit above timer noise.
    parser.add_argument("--repeats", type=int, default=7, help="build repetitions")
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_directed.json"),
        help="output JSON path (default: repo root BENCH_directed.json)",
    )
    args = parser.parse_args(argv)

    datasets = QUICK_DATASETS if args.quick else FULL_DATASETS
    queries = args.queries or (100 if args.quick else 1200)

    results = []
    for name, builder, apsp_budget_mb in datasets:
        dg = builder()
        row = bench_dataset(name, dg, queries, args.repeats, apsp_budget_mb)
        results.append(row)
        print(
            f"{name:10s} |V|={row['num_vertices']:>6} k={row['k']:>2} "
            f"gk={row['gk_vertices']:>5} mode={row['search_mode']:4s} | "
            f"build dict {row['build_seconds']['dict']:.3f}s "
            f"fast {row['build_seconds']['fast']:.3f}s "
            f"({row['build_ratio_fast_over_dict']:.2f}x) | "
            f"single {row['single_query_speedup']:.2f}x "
            f"batch {row['batch_speedup']:.2f}x"
        )

    largest = results[-1]
    report = {
        "benchmark": "directed_fastpath",
        "mode": "quick" if args.quick else "full",
        "queries_per_dataset": queries,
        "datasets": results,
        "largest_dataset": largest["dataset"],
        "gates": {
            "batch_speedup_at_least_3x": largest["batch_speedup"] >= 3.0,
            "build_parity_within_10pct": largest["build_ratio_fast_over_dict"]
            <= 1.10,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    ok = all(report["gates"].values())
    print("gates:", report["gates"], "->", "PASS" if ok else "FAIL")
    if args.quick:
        # Smoke mode exists to keep the script from rotting (and to verify
        # engine agreement); timing gates are meaningless on tiny graphs.
        return 0
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
