"""Fast engine vs dict reference: build time and query throughput.

Runs ``ISLabelIndex.build(engine="dict")`` and ``engine="fast"`` head to
head on several generated datasets, cross-checks that both engines return
identical distances, and emits machine-readable ``BENCH_fastpath.json`` at
the repo root — the first point of the repo's performance trajectory, which
future perf PRs are judged against.

Per dataset it reports:

* build seconds per engine (best of ``--repeats``);
* single-query throughput (``index.distance`` loop) per engine;
* batch throughput (``index.distances`` — a true batch path on the fast
  engine, a per-pair loop on the reference);
* the fast engine's search mode (``apsp`` table or ``csr`` bi-Dijkstra).

Both engines are warmed before timing (the fast engine freezes its arrays
and fills distance-table rows on first use), so the numbers are
steady-state serving throughput.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py           # full run
    PYTHONPATH=src python benchmarks/bench_fastpath.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import math
import random
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.index import ISLabelIndex
from repro.graph.generators import (
    barabasi_albert,
    ensure_connected,
    grid_graph,
    random_weights,
)
from repro.graph.graph import Graph
from repro.workloads.datasets import load_dataset

REPO_ROOT = Path(__file__).resolve().parents[1]

#: (name, builder) — ordered smallest to largest; the last entry is the
#: "largest dataset" the acceptance gates are evaluated on.
FULL_DATASETS = [
    ("grid40", lambda: grid_graph(40, 40, seed=11, max_weight=8)),
    (
        "ba3000",
        lambda: ensure_connected(
            random_weights(barabasi_albert(3000, 3, seed=12), 9, seed=12), seed=12
        ),
    ),
    # ba6000's G_k exceeds the default all-pairs-table budget's ceiling
    # (fastlabels.apsp_ceiling: 2048 vertices at 32 MB), so this row
    # exercises (and tracks) the CSR bi-Dijkstra search path instead.
    (
        "ba6000",
        lambda: ensure_connected(
            random_weights(barabasi_albert(6000, 3, seed=13), 9, seed=13), seed=13
        ),
    ),
    ("google", lambda: load_dataset("google", 1.0)),
    ("skitter", lambda: load_dataset("skitter", 1.0)),
    ("web", lambda: load_dataset("web", 1.0)),
]

QUICK_DATASETS = [
    ("grid10", lambda: grid_graph(10, 10, seed=11, max_weight=8)),
    ("google-s", lambda: load_dataset("google", 0.15)),
]


def _query_pairs(graph: Graph, count: int, seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    return [(rng.choice(vertices), rng.choice(vertices)) for _ in range(count)]


def _best_build_seconds(graph: Graph, engine: str, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        ISLabelIndex.build(graph, engine=engine)
        best = min(best, time.perf_counter() - started)
    return best


def _time_single(index: ISLabelIndex, pairs) -> float:
    distance = index.distance
    started = time.perf_counter()
    for s, t in pairs:
        distance(s, t)
    return time.perf_counter() - started


def _time_batch(index: ISLabelIndex, pairs) -> float:
    started = time.perf_counter()
    index.distances(pairs)
    return time.perf_counter() - started


def bench_dataset(
    name: str, graph: Graph, queries: int, repeats: int
) -> Dict[str, object]:
    build_dict = _best_build_seconds(graph, "dict", repeats)
    build_fast = _best_build_seconds(graph, "fast", repeats)

    dict_index = ISLabelIndex.build(graph, engine="dict")
    fast_index = ISLabelIndex.build(graph, engine="fast")
    pairs = _query_pairs(graph, queries, seed=7)

    # Steady-state warm-up: freezes the fast engine's arrays, fills the
    # G_k distance-table rows the workload touches, and cross-checks the
    # engines against each other on every pair.
    expected = dict_index.distances(pairs)
    got = fast_index.distances(pairs)
    if expected != got:
        raise AssertionError(f"{name}: engines disagree")

    single_dict = _time_single(dict_index, pairs)
    single_fast = _time_single(fast_index, pairs)
    batch_dict = _time_batch(dict_index, pairs)
    batch_fast = _time_batch(fast_index, pairs)

    stats = fast_index.stats
    result = {
        "dataset": name,
        "num_vertices": stats.num_vertices,
        "num_edges": stats.num_edges,
        "k": stats.k,
        "gk_vertices": stats.gk_vertices,
        "label_entries": stats.label_entries,
        "queries": len(pairs),
        "search_mode": fast_index.search_mode,
        "build_seconds": {"dict": build_dict, "fast": build_fast},
        "build_ratio_fast_over_dict": build_fast / build_dict,
        "single_query_qps": {
            "dict": len(pairs) / single_dict,
            "fast": len(pairs) / single_fast,
        },
        "batch_qps": {
            "dict": len(pairs) / batch_dict,
            "fast": len(pairs) / batch_fast,
        },
        "single_query_speedup": single_dict / single_fast,
        "batch_speedup": batch_dict / batch_fast,
    }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny graphs / few queries (CI smoke)"
    )
    parser.add_argument("--queries", type=int, default=None, help="pairs per dataset")
    parser.add_argument("--repeats", type=int, default=3, help="build repetitions")
    parser.add_argument(
        "-o",
        "--output",
        default=str(REPO_ROOT / "BENCH_fastpath.json"),
        help="output JSON path (default: repo root BENCH_fastpath.json)",
    )
    args = parser.parse_args(argv)

    datasets = QUICK_DATASETS if args.quick else FULL_DATASETS
    queries = args.queries or (100 if args.quick else 1500)

    results = []
    for name, builder in datasets:
        graph = builder()
        row = bench_dataset(name, graph, queries, args.repeats)
        results.append(row)
        print(
            f"{name:10s} |V|={row['num_vertices']:>6} k={row['k']:>2} "
            f"gk={row['gk_vertices']:>5} mode={row['search_mode']:4s} | "
            f"build dict {row['build_seconds']['dict']:.3f}s "
            f"fast {row['build_seconds']['fast']:.3f}s "
            f"({row['build_ratio_fast_over_dict']:.2f}x) | "
            f"single {row['single_query_speedup']:.2f}x "
            f"batch {row['batch_speedup']:.2f}x"
        )

    largest = results[-1]
    report = {
        "benchmark": "fastpath",
        "mode": "quick" if args.quick else "full",
        "queries_per_dataset": queries,
        "datasets": results,
        "largest_dataset": largest["dataset"],
        "gates": {
            "query_speedup_at_least_2x": largest["batch_speedup"] >= 2.0,
            "build_regression_within_10pct": largest["build_ratio_fast_over_dict"]
            <= 1.10,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    ok = all(report["gates"].values())
    print("gates:", report["gates"], "->", "PASS" if ok else "FAIL")
    if args.quick:
        # Smoke mode exists to keep the script from rotting (and to verify
        # engine agreement); timing gates are meaningless on tiny graphs.
        return 0
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
