"""Load generation: replayable traffic scenarios for every perf claim.

``repro.loadgen`` turns "a list of query pairs" into *traffic*: seeded
Zipf/uniform pair skew, open-loop Poisson/burst arrival schedules,
read/write mixes replaying §8.3 update waves, and multi-tenant fleets —
declared as a :class:`~repro.loadgen.scenario.Scenario`, executed by the
drivers, summarized by one shared percentile implementation.  The CLI
(``repro loadgen``) and the serving benchmarks are both thin layers over
this package, so every published number comes from the same code path.
"""

from repro.loadgen.drivers import run_closed_loop, run_open_loop, run_scenario
from repro.loadgen.generators import (
    READ,
    WRITE,
    burst_arrivals,
    derive_seed,
    operation_mix,
    poisson_arrivals,
    uniform_pairs,
    zipf_pairs,
    zipf_weights,
)
from repro.loadgen.scenario import SCENARIOS, Scenario, get_scenario, scenario_names
from repro.loadgen.summary import LatencySummary, percentile

__all__ = [
    "READ",
    "WRITE",
    "SCENARIOS",
    "LatencySummary",
    "Scenario",
    "burst_arrivals",
    "derive_seed",
    "get_scenario",
    "operation_mix",
    "percentile",
    "poisson_arrivals",
    "run_closed_loop",
    "run_open_loop",
    "run_scenario",
    "scenario_names",
    "uniform_pairs",
    "zipf_pairs",
    "zipf_weights",
]
