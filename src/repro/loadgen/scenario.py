"""Declarative, seeded, fully replayable load scenarios.

A :class:`Scenario` is a frozen value object describing *traffic*, not a
query list: which dataset, which engine, how endpoint popularity is
skewed (Zipf(θ) vs uniform), how requests arrive (closed-loop, open-loop
Poisson, open-loop bursts), how reads interleave with §8.3 update waves
(``write_fraction``), and how many tenants share the fleet.  Everything
random derives from the single ``seed`` through
:func:`repro.loadgen.generators.derive_seed`, so two runs of the same
spec — on different hosts, weeks apart — draw byte-identical query
pairs, arrival offsets and read/write interleavings.  The spec
round-trips through a plain dict (:meth:`to_dict` /
:meth:`from_dict`), which is what the JSON artifact embeds so a
published number can always be traced back to its exact traffic.

Named entry points live in :data:`SCENARIOS`; ``repro loadgen <name>``
runs one, and benchmarks build theirs programmatically with
``dataclasses.replace``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.loadgen import generators as gen
from repro.workloads.datasets import DATASET_NAMES, load_dataset

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "scenario_names"]

_SKEWS = ("uniform", "zipf")
_ARRIVALS = ("closed", "poisson", "burst")


@dataclass(frozen=True)
class Scenario:
    """One replayable traffic spec.  See the module docstring.

    ``dataset`` is either a named stand-in from
    :data:`repro.workloads.datasets.DATASET_NAMES` (scaled by ``scale``)
    or ``"grid:RxC"`` for a seeded road-network-like grid.
    ``duration_s = 0`` runs the seeded operation list exactly once (the
    fully replayable fixed-count mode); ``duration_s > 0`` cycles the
    same seeded stream until the wall clock expires, for soak runs.
    """

    name: str
    description: str = ""
    dataset: str = "google"
    scale: float = 0.15
    engine: str = "fast"
    skew: str = "uniform"
    theta: float = 1.0
    num_queries: int = 200
    arrival: str = "closed"
    rate_qps: float = 500.0
    burst_size: int = 8
    write_fraction: float = 0.0
    duration_s: float = 0.0
    seed: int = 0
    workers: int = 2
    shards: int = 4
    replication: int = 1
    tenants: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("scenario needs a non-empty name")
        if self.skew not in _SKEWS:
            raise QueryError(
                f"unknown skew {self.skew!r}; expected one of {_SKEWS}"
            )
        if self.arrival not in _ARRIVALS:
            raise QueryError(
                f"unknown arrival {self.arrival!r}; expected one of {_ARRIVALS}"
            )
        if self.num_queries < 1:
            raise QueryError(f"num_queries must be >= 1, got {self.num_queries}")
        if self.duration_s < 0:
            raise QueryError(f"duration_s must be >= 0, got {self.duration_s}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise QueryError(
                f"write_fraction must be in [0, 1], got {self.write_fraction}"
            )
        if self.theta <= 0:
            raise QueryError(f"theta must be positive, got {self.theta}")
        if self.rate_qps <= 0:
            raise QueryError(f"rate_qps must be positive, got {self.rate_qps}")
        if self.burst_size < 1:
            raise QueryError(f"burst_size must be >= 1, got {self.burst_size}")
        if min(self.workers, self.shards, self.replication, self.tenants) < 1:
            raise QueryError(
                "workers, shards, replication and tenants must all be >= 1"
            )
        if self.scale <= 0:
            raise QueryError(f"scale must be positive, got {self.scale}")
        # Validate the dataset spec eagerly so a typo fails at parse time,
        # not minutes later when the driver finally builds the graph.
        self._parse_dataset()

    # -- dataset ---------------------------------------------------------
    def _parse_dataset(self) -> Tuple[str, Tuple[int, int]]:
        spec = self.dataset
        if spec.startswith("grid:"):
            dims = spec[len("grid:") :].lower().split("x")
            try:
                rows, cols = (int(d) for d in dims)
            except ValueError:
                rows = cols = 0
            if rows < 2 or cols < 2:
                raise QueryError(
                    f"bad grid spec {spec!r}; expected 'grid:RxC' with R,C >= 2"
                )
            return "grid", (rows, cols)
        if spec not in DATASET_NAMES:
            raise QueryError(
                f"unknown dataset {spec!r}; expected 'grid:RxC' or one of "
                f"{', '.join(DATASET_NAMES)}"
            )
        return "named", (0, 0)

    def build_graph(self) -> Graph:
        """Materialize the scenario's graph (deterministic per spec)."""
        kind, dims = self._parse_dataset()
        if kind == "grid":
            rows, cols = dims
            return grid_graph(
                rows, cols, seed=gen.derive_seed(self.seed, "grid"), max_weight=4
            )
        return load_dataset(self.dataset, self.scale)

    # -- traffic streams -------------------------------------------------
    def query_pairs(self, graph: Graph, tenant: int = 0) -> List[Tuple[int, int]]:
        """The tenant's seeded ``(s, t)`` stream (length ``num_queries``)."""
        vertices = sorted(graph.vertices())
        pair_seed = gen.derive_seed(self.seed, "pairs", tenant)
        if self.skew == "zipf":
            return gen.zipf_pairs(
                vertices, self.num_queries, pair_seed, theta=self.theta
            )
        return gen.uniform_pairs(vertices, self.num_queries, pair_seed)

    def arrival_offsets(self, count: int) -> Optional[List[float]]:
        """Open-loop arrival offsets, or ``None`` for closed-loop runs."""
        if self.arrival == "closed":
            return None
        arrival_seed = gen.derive_seed(self.seed, "arrivals")
        if self.arrival == "burst":
            return gen.burst_arrivals(
                self.rate_qps, count, arrival_seed, self.burst_size
            )
        return gen.poisson_arrivals(self.rate_qps, count, arrival_seed)

    def operations(self, count: int, tenant: int = 0) -> List[str]:
        """Seeded read/write tags for ``count`` operation slots."""
        return gen.operation_mix(
            count,
            self.write_fraction,
            gen.derive_seed(self.seed, "mix", tenant),
        )

    # -- dict round-trip -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, spec: Dict[str, object]) -> "Scenario":
        """Build from a plain dict, rejecting unknown keys loudly."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise QueryError(
                f"unknown scenario field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**spec)  # type: ignore[arg-type]

    def replace(self, **changes: object) -> "Scenario":
        """A copy with fields overridden (re-validated)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


#: Named scenarios — the vocabulary ``repro loadgen`` and the benchmarks
#: share.  ``smoke`` must stay tiny: CI runs it against both a local
#: engine and a live two-worker fleet under a timeout.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="smoke",
            description="tiny grid, uniform closed-loop reads (CI smoke)",
            dataset="grid:8x8",
            num_queries=40,
            workers=2,
            shards=4,
        ),
        Scenario(
            name="uniform-base",
            description="uniform closed-loop reads; baseline for zipf-hot",
            dataset="google",
            scale=0.15,
            skew="uniform",
            num_queries=400,
        ),
        Scenario(
            name="zipf-hot",
            description="Zipf(1.1)-skewed closed-loop reads (hot-pair regime)",
            dataset="google",
            scale=0.15,
            skew="zipf",
            theta=1.1,
            num_queries=400,
        ),
        Scenario(
            name="zipf-hot-cached",
            description=(
                "zipf-hot replayed through the cached:fast read-through "
                "tier with a 20% §8.3 update mix (invalidation soak)"
            ),
            dataset="google",
            scale=0.15,
            engine="cached:fast",
            skew="zipf",
            theta=1.1,
            num_queries=400,
            write_fraction=0.2,
        ),
        Scenario(
            name="open-burst",
            description="open-loop bursty arrivals at 500 qps, bursts of 16",
            dataset="google",
            scale=0.15,
            skew="zipf",
            theta=1.1,
            num_queries=400,
            arrival="burst",
            rate_qps=500.0,
            burst_size=16,
        ),
        Scenario(
            name="mixed-updates",
            description="80/20 read/write replaying §8.3 pendant update waves",
            dataset="google",
            scale=0.15,
            skew="uniform",
            num_queries=300,
            write_fraction=0.2,
        ),
        Scenario(
            name="multi-tenant",
            description="two tenants with independent indexes on one fleet",
            dataset="grid:12x12",
            skew="zipf",
            theta=1.0,
            num_queries=200,
            tenants=2,
            workers=2,
            shards=4,
        ),
    )
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise QueryError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None
