"""Closed- and open-loop runners that execute a :class:`Scenario`.

One driver pair serves every perf claim in the repo:

* :func:`run_closed_loop` — issue operations back-to-back, one
  outstanding at a time; per-operation latency is service time.
* :func:`run_open_loop` — arrivals are pre-scheduled on the wall clock
  (Poisson or bursts) and never wait for completions; latency is
  measured from the *scheduled* arrival, so a backlog shows up as
  queueing delay in the tail percentiles.

:func:`run_scenario` is the entry point the CLI and the benchmarks use:
it materializes the scenario's graph, builds a ``"fast"`` oracle for
expected answers, stands up the target — any registered local engine, or
a live ``"remote"`` fleet spawned through
:class:`repro.serving.chaos.FaultInjector` (one fleet, one snapshot per
tenant) — runs the seeded operation stream, checks every read answer
bit-exactly against the oracle, and returns (optionally writes) a JSON
artifact embedding the spec, the summaries and the scheduler's batching
stats.

Writes replay §8.3 as **pendant update waves**: each write inserts a
fresh degree-1 vertex anchored at a ``G_k`` vertex (or deletes one it
inserted earlier).  Such updates patch no existing label and can never
shorten a base-pair distance, so read answers stay bit-exact *while the
index is being mutated* — which is what lets a mixed read/write run keep
the oracle check. Writes are applied to a local ingest twin
(:class:`repro.core.updates.DynamicISLabelIndex`); against a remote
fleet this models the snapshot-publish architecture, where the fleet
serves the last published snapshot while the writer ingests the next
wave.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.index import ISLabelIndex
from repro.core.serialization import load_index, save_snapshot
from repro.core.updates import DynamicISLabelIndex
from repro.errors import QueryError
from repro.loadgen.generators import READ
from repro.loadgen.scenario import Scenario
from repro.loadgen.summary import LatencySummary
from repro.serving.chaos import FaultInjector
from repro.serving.remote import RemoteEngine
from repro.serving.scheduler import SchedulerPolicy, assign_shards

__all__ = [
    "Operation",
    "run_closed_loop",
    "run_open_loop",
    "run_scenario",
]

#: Admission knobs for fleet workers spawned by :func:`run_scenario` —
#: matches the serving benchmarks (2 executor slots, bounded queue).
FLEET_SERVE_ARGS = ("--max-concurrency", "2", "--max-queue", "256")

#: Thread pool width for open-loop firing (bounds client-side overlap,
#: not the offered rate — arrivals are wall-clock scheduled).
OPEN_LOOP_WORKERS = 32


class Operation(NamedTuple):
    """One slot of the seeded stream: a read of ``pair`` or a write."""

    tenant: int
    kind: str  # READ or WRITE
    slot: int  # index into the tenant's pair/expected lists
    pair: Tuple[int, int]


class _PendantWriter:
    """Applies §8.3 pendant waves to one tenant's ingest twin.

    Alternates inserting a fresh degree-1 vertex (anchored at a rotating
    ``G_k`` vertex, weight 1) with deleting the most recent live pendant.
    Deterministic given the operation stream, bounded in graph growth,
    and — because a ``G_k``-anchored pendant touches no other vertex's
    label — provably answer-preserving for every base-graph pair.
    """

    def __init__(self, twin: DynamicISLabelIndex) -> None:
        self.twin = twin
        anchors = sorted(twin.index.hierarchy.gk.vertices())
        if not anchors:
            anchors = sorted(twin.graph.vertices())
        self.anchors = anchors
        self.next_id = max(twin.graph.vertices()) + 1
        self.live: List[int] = []
        self.applied = 0
        self.lock = threading.Lock()

    def apply(self) -> None:
        with self.lock:
            if self.live and self.applied % 2 == 1:
                self.twin.delete_vertex(self.live.pop())
            else:
                anchor = self.anchors[self.applied % len(self.anchors)]
                self.twin.insert_vertex(self.next_id, {anchor: 1})
                self.live.append(self.next_id)
                self.next_id += 1
            self.applied += 1


class _RunState:
    """Shared bookkeeping for one driver pass (thread-safe)."""

    def __init__(self) -> None:
        self.read_latencies: List[float] = []
        self.write_latencies: List[float] = []
        self.mismatches: List[str] = []
        self.errors: List[BaseException] = []
        self.lock = threading.Lock()

    def record(self, kind: str, latency_s: float) -> None:
        with self.lock:
            if kind == READ:
                self.read_latencies.append(latency_s)
            else:
                self.write_latencies.append(latency_s)


def _execute(
    op: Operation,
    readers: Sequence[Callable[[int, int], float]],
    writers: Sequence[Optional[_PendantWriter]],
    expected: Sequence[Sequence[float]],
    state: _RunState,
    started: float,
) -> None:
    """Run one operation, record latency from ``started``, verify reads."""
    try:
        if op.kind == READ:
            got = readers[op.tenant](*op.pair)
            latency = time.perf_counter() - started
            want = expected[op.tenant][op.slot]
            if got != want:
                with state.lock:
                    state.mismatches.append(
                        f"tenant {op.tenant} pair {op.pair}: got {got}, "
                        f"expected {want}"
                    )
        else:
            writer = writers[op.tenant]
            assert writer is not None, "write op without a writer"
            writer.apply()
            latency = time.perf_counter() - started
        state.record(op.kind, latency)
    except BaseException as exc:  # noqa: BLE001 - re-raised after the run
        with state.lock:
            state.errors.append(exc)


def _finish(state: _RunState, wall: float) -> Dict[str, object]:
    if state.errors:
        raise state.errors[0]
    return {
        "reads": LatencySummary.from_latencies(
            state.read_latencies, wall
        ).to_dict(),
        "writes": (
            LatencySummary.from_latencies(state.write_latencies, wall).to_dict()
            if state.write_latencies
            else None
        ),
        "operations": len(state.read_latencies) + len(state.write_latencies),
        "wall_seconds": wall,
        "bit_identical": not state.mismatches,
        "mismatches": state.mismatches[:10],
    }


def run_closed_loop(
    ops: Sequence[Operation],
    readers: Sequence[Callable[[int, int], float]],
    writers: Sequence[Optional[_PendantWriter]],
    expected: Sequence[Sequence[float]],
    duration_s: float = 0.0,
) -> Dict[str, object]:
    """One outstanding operation at a time; latency is service time.

    ``duration_s = 0`` runs the stream exactly once; ``> 0`` cycles the
    same seeded stream until the wall clock expires (soak mode).
    """
    state = _RunState()
    base = time.perf_counter()
    while True:
        for op in ops:
            started = time.perf_counter()
            _execute(op, readers, writers, expected, state, started)
            if duration_s and time.perf_counter() - base >= duration_s:
                return _finish(state, time.perf_counter() - base)
        if not duration_s or time.perf_counter() - base >= duration_s:
            break
    return _finish(state, time.perf_counter() - base)


def run_open_loop(
    ops: Sequence[Operation],
    offsets: Sequence[float],
    readers: Sequence[Callable[[int, int], float]],
    writers: Sequence[Optional[_PendantWriter]],
    expected: Sequence[Sequence[float]],
    duration_s: float = 0.0,
) -> Dict[str, object]:
    """Wall-clock-scheduled arrivals that never wait for completions.

    Latency is measured from each operation's *scheduled* arrival, so a
    late start (client or server backlog) counts against the server —
    the honest open-loop convention.  With ``duration_s > 0`` the seeded
    (op, offset) schedule repeats, shifted by the previous cycle's span.
    """
    if len(offsets) != len(ops):
        raise QueryError(
            f"need one arrival offset per operation "
            f"(got {len(offsets)} offsets for {len(ops)} ops)"
        )
    state = _RunState()
    base = time.perf_counter()
    cycle_span = offsets[-1] if offsets else 0.0
    with ThreadPoolExecutor(max_workers=OPEN_LOOP_WORKERS) as pool:
        cycle = 0
        fired = False
        while not fired or (
            duration_s and time.perf_counter() - base < duration_s
        ):
            shift = cycle * cycle_span
            for op, offset in zip(ops, offsets):
                scheduled = base + shift + offset
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                pool.submit(
                    _execute, op, readers, writers, expected, state, scheduled
                )
                if duration_s and time.perf_counter() - base >= duration_s:
                    break
            fired = True
            cycle += 1
            if not duration_s:
                break
    return _finish(state, time.perf_counter() - base)


def build_operations(scenario: Scenario, graph) -> Tuple[
    List[Operation], List[List[Tuple[int, int]]]
]:
    """The scenario's full seeded stream, tenants interleaved round-robin.

    Returns ``(ops, pairs_per_tenant)`` — pairs are returned too so the
    caller can compute expected answers without re-drawing.
    """
    pairs = [
        scenario.query_pairs(graph, tenant)
        for tenant in range(scenario.tenants)
    ]
    mixes = [
        scenario.operations(scenario.num_queries, tenant)
        for tenant in range(scenario.tenants)
    ]
    ops: List[Operation] = []
    for slot in range(scenario.num_queries):
        for tenant in range(scenario.tenants):
            ops.append(
                Operation(tenant, mixes[tenant][slot], slot, pairs[tenant][slot])
            )
    return ops, pairs


def _base_engine(engine: str) -> str:
    """The engine name behind an optional ``cached:`` decorator."""
    return engine.split(":", 1)[1] if engine.startswith("cached:") else engine


def _local_reader(
    scenario: Scenario,
    graph,
    oracle: ISLabelIndex,
    tmp: str,
    tenant: int,
    writer: Optional[_PendantWriter],
) -> Tuple[Callable[[int, int], float], Optional[object]]:
    """``(distance(s, t) callable, cache-or-None)`` for one local tenant."""
    engine = scenario.engine
    base = _base_engine(engine)
    if base in ("mmap", "sharded"):
        # Snapshot-served engines: publish the oracle's frozen state and
        # serve it zero-copy (mmap wants one file, sharded a directory).
        # A cached: prefix survives — load_index wraps the snapshot
        # engine in the read-through tier.
        snap = os.path.join(tmp, f"tenant{tenant}.snap")
        shards = 1 if base == "mmap" else scenario.shards
        save_snapshot(oracle, snap, shards=shards)
        served = load_index(snap, engine=engine)
        return served.distance, getattr(served._fast, "cache", None)
    if writer is not None and engine.startswith("cached:"):
        # Mixed read/write on a cached engine: read from the *ingest
        # twin's* index so the §8.3 pendant waves drive real dirty-label
        # invalidations through the cache mid-run (the whole point of
        # the zipf-hot-cached scenario).  Pendant waves are
        # answer-preserving, so the oracle check stays bit-exact.
        index = writer.twin.index
        index.attach_fast_engine(engine)
        return index.distance, index._fast.cache
    served = (
        oracle
        if engine == oracle.engine and tenant == 0
        else ISLabelIndex.build(graph, engine=engine)
    )
    return served.distance, getattr(served._fast, "cache", None)


def run_scenario(
    scenario: Scenario,
    artifact_path: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Execute ``scenario`` end to end and return the artifact dict.

    Reads are verified bit-exactly against a ``"fast"`` oracle built on
    the scenario's base graph; a mismatch fails the run's
    ``bit_identical`` field (the first few mismatches are listed).  With
    ``engine="remote"`` a fleet is spawned (one snapshot per tenant, all
    workers under one :class:`FaultInjector`) and torn down with the
    reap assertion; ``workers_reaped`` lands in the artifact.
    """
    note = progress or (lambda _msg: None)
    note(f"scenario {scenario.name!r}: building graph ({scenario.dataset})")
    graph = scenario.build_graph()
    oracle = ISLabelIndex.build(graph, engine="fast")
    ops, pairs = build_operations(scenario, graph)
    expected = [oracle.distances(tenant_pairs) for tenant_pairs in pairs]

    writers: List[Optional[_PendantWriter]] = [None] * scenario.tenants
    if scenario.write_fraction > 0:
        # One ingest twin per tenant, adopting the oracle's index: pendant
        # waves are answer-preserving, so the oracle check stays valid.
        writers = [
            _PendantWriter(
                DynamicISLabelIndex.from_parts(
                    graph.copy(),
                    oracle
                    if tenant == 0
                    else ISLabelIndex.build(graph, engine="fast"),
                )
            )
            for tenant in range(scenario.tenants)
        ]

    offsets = scenario.arrival_offsets(len(ops))
    base_engine = _base_engine(scenario.engine)
    is_cached = scenario.engine.startswith("cached:")
    result: Dict[str, object] = {
        "scenario": scenario.to_dict(),
        "target": "remote" if base_engine == "remote" else "local",
    }

    injector: Optional[FaultInjector] = None
    engines: List[RemoteEngine] = []
    caches: List[Optional[object]] = []
    try:
        with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
            if base_engine == "remote":
                note(
                    f"spawning fleet: {scenario.tenants} tenant(s) x "
                    f"{scenario.workers} worker(s), {scenario.shards} shards"
                )
                injector = FaultInjector()
                ownership = assign_shards(
                    scenario.shards, scenario.workers, scenario.replication
                )
                readers = []
                for tenant in range(scenario.tenants):
                    snap = os.path.join(tmp, f"tenant{tenant}.snap")
                    save_snapshot(oracle, snap, shards=scenario.shards)
                    before = len(injector.workers)
                    injector.spawn_fleet(
                        snap, ownership, serve_args=list(FLEET_SERVE_ARGS)
                    )
                    addresses = injector.addresses[before:]
                    engine = RemoteEngine(
                        addresses=addresses,
                        policy=SchedulerPolicy(max_batch=256),
                    )
                    engines.append(engine)
                    if is_cached:
                        # Client-side hot-pair tier: hits never touch
                        # the wire; the raw engine stays on the close/
                        # stats path below.
                        from repro.caching.engine import CachedEngine

                        wrapped = CachedEngine(engine)
                        caches.append(wrapped.cache)
                        readers.append(wrapped.distance)
                    else:
                        caches.append(None)
                        readers.append(engine.distance)
            else:
                readers = []
                for tenant in range(scenario.tenants):
                    reader, cache = _local_reader(
                        scenario, graph, oracle, tmp, tenant, writers[tenant]
                    )
                    readers.append(reader)
                    caches.append(cache)

            note(
                f"running {scenario.arrival} loop: {len(ops)} ops"
                + (f" for {scenario.duration_s:.0f}s" if scenario.duration_s else "")
            )
            if offsets is None:
                run = run_closed_loop(
                    ops, readers, writers, expected, scenario.duration_s
                )
            else:
                run = run_open_loop(
                    ops, offsets, readers, writers, expected, scenario.duration_s
                )
            result.update(run)

            if engines:
                result["scheduler"] = [
                    engine.scheduler.stats() if engine.scheduler else None
                    for engine in engines
                ]
                result["failovers"] = sum(
                    len(engine.failovers) for engine in engines
                )
            if any(cache is not None for cache in caches):
                result["cache"] = [
                    cache.stats() if cache is not None else None
                    for cache in caches
                ]
    finally:
        for engine in engines:
            engine.close()
        if injector is not None:
            result["workers_reaped"] = injector.teardown()

    if writers[0] is not None:
        result["updates_applied"] = [
            {"inserts": w.twin.inserts_applied, "deletes": w.twin.deletes_applied}
            for w in writers
            if w is not None
        ]

    if artifact_path:
        with open(artifact_path, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        note(f"artifact written to {artifact_path}")
    return result
