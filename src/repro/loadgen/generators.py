"""Seeded traffic generators: pair skew, arrival schedules, op mixes.

Real serving load is not a uniform list of ``(s, t)`` pairs handed over
all at once.  Endpoint popularity is Zipf-skewed (a tiny set of hot
vertices dominates — the same skew that motivates the caching tier),
requests arrive on their own clock (open-loop Poisson, often in bursts),
and a live deployment interleaves reads with §8.3 update waves.  The
generators here produce each of those dimensions **deterministically
under a seed**, so a scenario is fully replayable: same seed, same
pairs, same arrival offsets, same read/write interleaving, on any host.

Derived seeds (:func:`derive_seed`) keep the dimensions independent —
changing the query count does not reshuffle the arrival schedule, and
two scenarios differing only in name draw different streams.
"""

from __future__ import annotations

import math
import random
import zlib
from bisect import bisect_left
from typing import List, Sequence, Tuple

from repro.errors import QueryError

__all__ = [
    "derive_seed",
    "zipf_weights",
    "uniform_pairs",
    "zipf_pairs",
    "poisson_arrivals",
    "burst_arrivals",
    "operation_mix",
    "READ",
    "WRITE",
]

QueryPair = Tuple[int, int]

#: Operation tags in a mixed stream (strings so the artifact JSON stays
#: self-describing).
READ = "read"
WRITE = "write"


def derive_seed(seed: int, *scope: object) -> int:
    """A stable sub-seed for one generator dimension of a scenario.

    CRC32 over the scope path gives a cheap, platform-stable mix; Python
    ``hash`` is salted per process and would break replayability.
    """
    text = ":".join(str(part) for part in (seed, *scope))
    return zlib.crc32(text.encode("utf-8"))


def zipf_weights(n: int, theta: float) -> List[float]:
    """Normalized Zipf(θ) probabilities for ranks ``1..n``.

    ``P(rank r) ∝ 1 / r^θ``; θ must be positive (θ → 0 approaches
    uniform, θ ≈ 1 is the classic web-traffic skew).
    """
    if n < 1:
        raise QueryError(f"zipf_weights needs n >= 1, got {n}")
    if theta <= 0:
        raise QueryError(f"Zipf exponent must be positive, got {theta}")
    weights = [1.0 / (r ** theta) for r in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def uniform_pairs(
    vertices: Sequence[int], count: int, seed: int
) -> List[QueryPair]:
    """``count`` uniform ``(s, t)`` pairs over ``vertices`` (sorted first,
    so the draw order is independent of the caller's container)."""
    ordered = sorted(vertices)
    if len(ordered) < 2:
        raise QueryError("need at least two vertices to build query pairs")
    rng = random.Random(seed)
    return [
        (rng.choice(ordered), rng.choice(ordered)) for _ in range(count)
    ]


def zipf_pairs(
    vertices: Sequence[int],
    count: int,
    seed: int,
    theta: float = 1.0,
) -> List[QueryPair]:
    """``count`` pairs with Zipf(θ)-skewed endpoint popularity.

    Vertex *rank* is its position in the sorted vertex order — the
    ranking is arbitrary but deterministic, which is what a replayable
    scenario needs (popularity skew is about the *shape* of the traffic,
    not which specific vertex happens to be hot).  Both endpoints draw
    from the same distribution, so hot *pairs* emerge quadratically —
    the regime that makes caching and bucket coalescing pay.
    """
    ordered = sorted(vertices)
    if len(ordered) < 2:
        raise QueryError("need at least two vertices to build query pairs")
    weights = zipf_weights(len(ordered), theta)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    cumulative[-1] = 1.0  # guard float drift at the tail
    rng = random.Random(seed)

    def draw() -> int:
        return ordered[bisect_left(cumulative, rng.random())]

    return [(draw(), draw()) for _ in range(count)]


def poisson_arrivals(rate_qps: float, count: int, seed: int) -> List[float]:
    """Open-loop Poisson arrival offsets (seconds from run start).

    Exponential inter-arrival gaps at ``rate_qps``; monotonically
    non-decreasing, deterministic under the seed.  Arrival times never
    depend on completions — that is the defining property of open-loop
    load (a saturated server shows up as queueing latency, not as a
    conveniently slowed-down client).
    """
    if rate_qps <= 0:
        raise QueryError(f"open-loop rate must be positive, got {rate_qps}")
    if count < 0:
        raise QueryError(f"arrival count must be >= 0, got {count}")
    rng = random.Random(seed)
    offsets: List[float] = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(rate_qps)
        offsets.append(t)
    return offsets


def burst_arrivals(
    rate_qps: float, count: int, seed: int, burst_size: int
) -> List[float]:
    """Bursty open-loop arrivals: Poisson burst *starts*, coincident members.

    Bursts of ``burst_size`` requests arrive at the same instant; burst
    starts are Poisson at ``rate_qps / burst_size``, so the *average*
    offered rate equals ``rate_qps`` while the instantaneous rate spikes
    — the traffic shape that stresses admission queues and tail latency
    in a way a smooth Poisson stream never does.  ``burst_size=1``
    degenerates to :func:`poisson_arrivals` exactly (same seed, same
    offsets).
    """
    if burst_size < 1:
        raise QueryError(f"burst size must be >= 1, got {burst_size}")
    if burst_size == 1:
        return poisson_arrivals(rate_qps, count, seed)
    bursts = math.ceil(count / burst_size)
    starts = poisson_arrivals(rate_qps / burst_size, bursts, seed)
    offsets: List[float] = []
    for start in starts:
        for _ in range(burst_size):
            if len(offsets) == count:
                return offsets
            offsets.append(start)
    return offsets


def operation_mix(count: int, write_fraction: float, seed: int) -> List[str]:
    """A deterministic :data:`READ`/:data:`WRITE` tag per operation slot.

    Each slot is independently a write with probability
    ``write_fraction`` — the §8.3 replay regime where update waves
    interleave with serving traffic rather than arriving in one block.
    ``0.0`` is a pure read stream (no RNG consumed: an all-read scenario
    is byte-identical whether or not the mix dimension exists).
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise QueryError(
            f"write fraction must be in [0, 1], got {write_fraction}"
        )
    if count < 0:
        raise QueryError(f"operation count must be >= 0, got {count}")
    if write_fraction == 0.0:
        return [READ] * count
    rng = random.Random(seed)
    return [
        WRITE if rng.random() < write_fraction else READ for _ in range(count)
    ]
