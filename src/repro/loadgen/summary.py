"""Latency/throughput summary math shared by every perf claim.

Each benchmark used to hand-roll its own ``_percentile`` and QPS
arithmetic, which made the numbers incomparable across scripts (and the
edge cases — empty runs, single samples — untested).  This module is the
one implementation: drivers record per-operation latencies, hand them to
:meth:`LatencySummary.from_latencies`, and every artifact reports the
same p50/p90/p99/throughput fields computed the same way.

Percentiles use the nearest-rank convention on the sorted sample
(``index = min(int(q * n), n - 1)``): no interpolation, so a reported
percentile is always a latency that actually occurred — the honest
choice for small samples, and bit-reproducible across runs.
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Sequence

__all__ = ["percentile", "LatencySummary"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample.

    ``q`` is a fraction in [0, 1].  Empty input returns ``nan`` (there is
    no latency to report, and ``nan`` poisons downstream arithmetic
    loudly instead of pretending a zero); a single sample is every
    percentile of itself.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {q}")
    if not sorted_values:
        return math.nan
    idx = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[idx]


class LatencySummary(NamedTuple):
    """Aggregate of one run phase: counts, wall time, latency percentiles.

    Latencies are reported in milliseconds (the scale every serving
    number in this repo is discussed at); ``seconds`` is the phase's wall
    time and ``throughput_qps`` is ``count / seconds`` — which differs
    from ``1 / mean latency`` whenever operations overlap (open-loop and
    pipelined runs), so both are recorded.
    """

    count: int
    seconds: float
    throughput_qps: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    mean_ms: float
    min_ms: float
    max_ms: float

    @classmethod
    def from_latencies(
        cls, latencies_s: Sequence[float], wall_seconds: float
    ) -> "LatencySummary":
        """Summarize per-operation latencies (seconds) over a wall clock.

        An empty run yields ``count=0`` with ``nan`` latency fields and
        zero throughput — callers can emit the row without special-casing,
        and any gate comparing against ``nan`` fails loudly.
        """
        ordered: List[float] = sorted(latencies_s)
        n = len(ordered)
        if n == 0:
            return cls(
                count=0,
                seconds=float(wall_seconds),
                throughput_qps=0.0,
                p50_ms=math.nan,
                p90_ms=math.nan,
                p99_ms=math.nan,
                mean_ms=math.nan,
                min_ms=math.nan,
                max_ms=math.nan,
            )
        return cls(
            count=n,
            seconds=float(wall_seconds),
            throughput_qps=(n / wall_seconds) if wall_seconds > 0 else math.inf,
            p50_ms=percentile(ordered, 0.50) * 1000.0,
            p90_ms=percentile(ordered, 0.90) * 1000.0,
            p99_ms=percentile(ordered, 0.99) * 1000.0,
            mean_ms=sum(ordered) / n * 1000.0,
            min_ms=ordered[0] * 1000.0,
            max_ms=ordered[-1] * 1000.0,
        )

    def to_dict(self) -> Dict[str, float]:
        """JSON-artifact form (plain dict, field names preserved)."""
        return dict(self._asdict())
