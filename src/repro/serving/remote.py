"""The ``"remote"`` query engine: distance queries over a worker fleet.

Registered for both orientations behind the standard
:func:`repro.core.engines.register_engine` seam, this engine implements
the :class:`~repro.core.engines.QueryEngine` protocol without holding a
single label: ``freeze`` dials the configured workers
(:class:`~repro.serving.server.ShardServer` processes), learns the shard
layout and each worker's owned slice from the ``hello`` handshake, and
builds a :class:`~repro.serving.scheduler.ShardScheduler` whose dispatch
sends each shard-pair bucket as **one** ``distances`` frame to a worker
owning the bucket's source shard.  A fleet of workers each mapping only
its owned shard files can therefore serve an index larger than any
single worker's RAM, while the client amortizes framing and the server
amortizes its vectorized batch stages per bucket.

Worker addresses come from the ``addresses`` constructor argument or the
``REPRO_REMOTE_ADDRS`` environment variable (comma-separated
``host:port``), which is what lets the ordinary facade plumbing work
unchanged::

    os.environ["REPRO_REMOTE_ADDRS"] = "10.0.0.5:7071,10.0.0.6:7071"
    index = load_index("web.shards", engine="remote")   # no local labels
    index.distances(pairs)                              # scheduled over the fleet

Failure behavior: a worker that reports ``{"error": ...}`` raises
:class:`~repro.errors.QueryError` (bad query) or
:class:`~repro.errors.StorageError` (server-side fault); a dead
connection raises :class:`~repro.serving.wire.WireError` — the engine
performs no silent retries, answers are exact or the call fails loudly.
``invalidate``/``close`` drop the connections; the next query redials.
"""

from __future__ import annotations

import os
import socket
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engines import (
    CAP_REMOTE,
    CAP_SHARDED,
    DIRECTED,
    UNDIRECTED,
    register_engine,
)
from repro.errors import IndexBuildError, QueryError, StorageError
from repro.serving import wire
from repro.serving.scheduler import SchedulerPolicy, ShardScheduler

__all__ = [
    "REMOTE_ADDRS_ENV",
    "parse_addresses",
    "RemoteEngine",
    "DirectedRemoteEngine",
]

#: Environment fallback for the worker fleet: comma-separated
#: ``host:port`` entries, consulted when no ``addresses`` argument is
#: given (the registry factory path — ``load_index(..., engine="remote")``).
REMOTE_ADDRS_ENV = "REPRO_REMOTE_ADDRS"

Address = Union[str, Tuple[str, int]]


def parse_addresses(spec: Union[str, Sequence[Address], None]) -> List[Tuple[str, int]]:
    """Normalize an address spec into ``[(host, port), ...]``.

    Accepts a comma-separated ``host:port`` string, a sequence of such
    strings, or a sequence of ``(host, port)`` tuples.
    """
    if spec is None:
        return []
    if isinstance(spec, str):
        items: Sequence[Address] = [s for s in spec.split(",") if s.strip()]
    else:
        items = spec
    out: List[Tuple[str, int]] = []
    for item in items:
        if isinstance(item, str):
            host, sep, port = item.strip().rpartition(":")
            if not sep or not host:
                raise IndexBuildError(
                    f"remote address {item!r} is not host:port"
                )
            try:
                out.append((host, int(port)))
            except ValueError:
                raise IndexBuildError(
                    f"remote address {item!r} has a non-numeric port"
                ) from None
        else:
            host, port = item
            out.append((str(host), int(port)))
    return out


class _Worker:
    """One connected fleet member: socket + handshake facts."""

    __slots__ = ("address", "sock", "owned", "shard_starts", "kind")

    def __init__(self, address: Tuple[str, int], timeout: float) -> None:
        self.address = address
        try:
            self.sock = socket.create_connection(address, timeout=timeout)
        except OSError as exc:
            raise StorageError(
                f"cannot connect to shard worker {address[0]}:{address[1]} "
                f"({exc})"
            ) from None
        try:
            hello = wire.request(self.sock, {"op": "hello"})
        except BaseException:
            self.close()  # don't leak the connected socket mid-handshake
            raise
        if "error" in hello:
            self.close()
            raise StorageError(
                f"worker {address[0]}:{address[1]} rejected the handshake: "
                f"{hello['error']}"
            )
        self.kind: str = hello.get("kind", "undirected")
        self.owned: List[int] = [int(i) for i in hello.get("owned", [])]
        self.shard_starts: List[int] = [
            int(s) for s in hello.get("shard_starts", [])
        ]

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class RemoteEngineBase:
    """Shared client machinery of the two remote engine orientations."""

    name = "remote"
    kind = UNDIRECTED

    def __init__(
        self,
        addresses: Union[str, Sequence[Address], None],
        policy: Optional[SchedulerPolicy],
        timeout: float,
    ) -> None:
        if addresses is None:
            addresses = os.environ.get(REMOTE_ADDRS_ENV)
        self.addresses = parse_addresses(addresses)
        if not self.addresses:
            raise IndexBuildError(
                "the remote engine needs worker addresses: pass "
                f"addresses=[...] or set {REMOTE_ADDRS_ENV} "
                "(comma-separated host:port)"
            )
        self.policy = policy
        self.timeout = timeout
        self.frozen = False
        self.scheduler: Optional[ShardScheduler] = None
        self._workers: List[_Worker] = []
        self._owners: Dict[int, List[_Worker]] = {}
        self._rotation: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # QueryEngine protocol
    # ------------------------------------------------------------------
    def freeze(self) -> "RemoteEngineBase":
        """Dial the fleet, handshake, and build the routing scheduler."""
        if self.frozen:
            return self
        workers: List[_Worker] = []
        try:
            for address in self.addresses:
                workers.append(_Worker(address, self.timeout))
        except BaseException:
            for worker in workers:
                worker.close()
            raise
        starts: List[int] = []
        for worker in workers:
            if worker.kind != self.kind:
                kinds = f"{worker.kind!r} vs client {self.kind!r}"
                for w in workers:
                    w.close()
                raise StorageError(
                    f"worker {worker.address[0]}:{worker.address[1]} serves "
                    f"a different orientation ({kinds})"
                )
            if worker.shard_starts:
                if starts and worker.shard_starts != starts:
                    for w in workers:
                        w.close()
                    raise StorageError(
                        "workers disagree on the shard layout; are they "
                        "serving the same snapshot?"
                    )
                starts = worker.shard_starts
        self._workers = workers
        self._owners = {}
        for worker in workers:
            for shard in worker.owned:
                self._owners.setdefault(shard, []).append(worker)
        self._rotation = {}
        self.scheduler = ShardScheduler(starts, self._dispatch, self.policy)
        self.frozen = True
        return self

    def distance(self, source: int, target: int) -> float:
        return self.distances([(source, target)])[0]

    def distances(self, pairs) -> List[float]:
        if not self.frozen:
            self.freeze()
        return self.scheduler.schedule(pairs)

    def invalidate(self, dirty=None) -> None:
        """Drop the fleet connections; the next query redials.

        ``dirty`` is accepted for protocol compatibility but ignored —
        label state lives on the workers, so any invalidation means "ask
        the fleet again".
        """
        self.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, bucket: Tuple[int, int]) -> _Worker:
        """Worker for a bucket: an owner of the source shard, else of the
        target shard, else any worker (round-robin)."""
        for shard in bucket:
            owners = self._owners.get(shard)
            if owners:
                slot = self._rotation.get(shard, 0)
                self._rotation[shard] = (slot + 1) % len(owners)
                return owners[slot % len(owners)]
        slot = self._rotation.get(-1, 0)
        self._rotation[-1] = (slot + 1) % len(self._workers)
        return self._workers[slot % len(self._workers)]

    def _dispatch(self, chunk, bucket) -> List[float]:
        worker = self._route(bucket)
        response = wire.request(
            worker.sock,
            {"op": "distances", "pairs": [[s, t] for s, t in chunk]},
        )
        if "error" in response:
            message = response["error"]
            if response.get("error_kind") == "query":
                raise QueryError(message)
            raise StorageError(
                f"worker {worker.address[0]}:{worker.address[1]} failed: "
                f"{message}"
            )
        answers = response.get("distances")
        if not isinstance(answers, list):
            raise StorageError(
                f"worker {worker.address[0]}:{worker.address[1]} returned "
                "no distances"
            )
        return [float(d) if not isinstance(d, int) else d for d in answers]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        for worker in self._workers:
            worker.close()
        self._workers = []
        self._owners = {}
        self._rotation = {}
        self.scheduler = None
        self.frozen = False

    def __enter__(self):
        return self.freeze()

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


class RemoteEngine(RemoteEngineBase):
    """Undirected ``"remote"`` engine.

    The registry factory signature matches the other undirected engines
    (``gk, entry_lists, arrays`` — all ignored: the labels live on the
    workers); ``addresses``/``policy`` configure the fleet.
    """

    kind = UNDIRECTED

    def __init__(
        self,
        gk=None,
        entry_lists=None,
        arrays=None,
        apsp_budget_bytes=None,
        *,
        addresses: Union[str, Sequence[Address], None] = None,
        policy: Optional[SchedulerPolicy] = None,
        timeout: float = 30.0,
    ) -> None:
        super().__init__(addresses, policy, timeout)


class DirectedRemoteEngine(RemoteEngineBase):
    """Directed ``"remote"`` engine (registry twin of :class:`RemoteEngine`)."""

    kind = DIRECTED

    def __init__(
        self,
        gk=None,
        out_lists=None,
        in_lists=None,
        apsp_budget_bytes=None,
        *,
        addresses: Union[str, Sequence[Address], None] = None,
        policy: Optional[SchedulerPolicy] = None,
        timeout: float = 30.0,
    ) -> None:
        super().__init__(addresses, policy, timeout)


register_engine(UNDIRECTED, RemoteEngine.name, RemoteEngine, {CAP_REMOTE, CAP_SHARDED})
register_engine(
    DIRECTED, DirectedRemoteEngine.name, DirectedRemoteEngine, {CAP_REMOTE, CAP_SHARDED}
)
