"""The ``"remote"`` query engine: distance queries over a worker fleet.

Registered for both orientations behind the standard
:func:`repro.core.engines.register_engine` seam, this engine implements
the :class:`~repro.core.engines.QueryEngine` protocol without holding a
single label: ``freeze`` dials the configured workers
(:class:`~repro.serving.server.ShardServer` processes), learns the shard
layout, each worker's owned slice and the membership **epoch** from the
``hello`` handshake, and builds a
:class:`~repro.serving.scheduler.ShardScheduler` whose dispatch sends
each shard-pair bucket as **one** ``distances`` frame to a worker owning
the bucket's source shard.  A fleet of workers each mapping only its
owned shard files can therefore serve an index larger than any single
worker's RAM, while the client amortizes framing and the server
amortizes its vectorized batch stages per bucket.

Worker addresses come from the ``addresses`` constructor argument or the
``REPRO_REMOTE_ADDRS`` environment variable (comma-separated
``host:port``), which is what lets the ordinary facade plumbing work
unchanged::

    os.environ["REPRO_REMOTE_ADDRS"] = "10.0.0.5:7071,10.0.0.6:7071"
    index = load_index("web.shards", engine="remote")   # no local labels
    index.distances(pairs)                              # scheduled over the fleet

**Failure behavior** (the fault-tolerance contract): dispatch is
*replica-aware*.  A connect failure, wire error or timeout marks the
worker dead and retries the bucket against the next live owner — failed
owners excluded, exponential backoff with jitter between attempts
(:class:`~repro.serving.membership.RetryPolicy`).  A strict server's
``not_owner`` answer is treated as a membership-staleness signal: the
engine refreshes its :class:`~repro.serving.membership.MembershipMap`
from the fleet (dialing any workers it learns about for the first time)
and reroutes.  When every candidate is exhausted the engine attempts to
*revive* dead workers (reconnect + re-handshake) before failing the
bucket loudly with :class:`~repro.errors.StorageError` — answers are
exact or the call errors, never silently wrong.  Each survived failover
is recorded in :attr:`RemoteEngineBase.failovers` (bucket, retries,
recovery seconds) for the benchmark harness.

An optional background **heartbeat** thread (``heartbeat_s`` argument or
``REPRO_REMOTE_HEARTBEAT_S``; default off) rides the ``ping`` op to mark
workers suspect/dead between dispatches and to revive dead workers the
moment they answer again.

Per-query errors (``error_kind: "query"``) raise
:class:`~repro.errors.QueryError` immediately — a bad query is the
caller's bug and no amount of retrying fixes it.
``invalidate``/``close`` drop the connections; the next query redials.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.engines import (
    CAP_FAULT_TOLERANT,
    CAP_REMOTE,
    CAP_SHARDED,
    DIRECTED,
    UNDIRECTED,
    register_engine,
)
from repro.analysis.lockcheck import create_lock
from repro.envvars import read_env_float, read_env_int, read_env_str
from repro.errors import IndexBuildError, QueryError, StorageError
from repro.serving import wire
from repro.serving.membership import (
    DEAD,
    LIVE,
    MembershipMap,
    RetryPolicy,
    WorkerHealth,
)
from repro.serving.scheduler import SchedulerPolicy, ShardScheduler

__all__ = [
    "REMOTE_ADDRS_ENV",
    "REMOTE_HEARTBEAT_ENV",
    "REMOTE_MAX_IN_FLIGHT_ENV",
    "parse_addresses",
    "RemoteEngine",
    "DirectedRemoteEngine",
]

#: Environment fallback for the worker fleet: comma-separated
#: ``host:port`` entries, consulted when no ``addresses`` argument is
#: given (the registry factory path — ``load_index(..., engine="remote")``).
REMOTE_ADDRS_ENV = "REPRO_REMOTE_ADDRS"

#: Environment fallback for the heartbeat interval (seconds; unset/0 = off).
REMOTE_HEARTBEAT_ENV = "REPRO_REMOTE_HEARTBEAT_S"

#: Default pipelined in-flight window per worker channel when neither the
#: constructor argument nor the environment sets one.
REMOTE_MAX_IN_FLIGHT_ENV = "REPRO_REMOTE_MAX_IN_FLIGHT"
DEFAULT_MAX_IN_FLIGHT = 32

Address = Union[str, Tuple[str, int]]


def parse_addresses(spec: Union[str, Sequence[Address], None]) -> List[Tuple[str, int]]:
    """Normalize an address spec into ``[(host, port), ...]``.

    Accepts a comma-separated ``host:port`` string, a sequence of such
    strings, or a sequence of ``(host, port)`` tuples.
    """
    if spec is None:
        return []
    if isinstance(spec, str):
        items: Sequence[Address] = [s for s in spec.split(",") if s.strip()]
    else:
        items = spec
    out: List[Tuple[str, int]] = []
    for item in items:
        if isinstance(item, str):
            host, sep, port = item.strip().rpartition(":")
            if not sep or not host:
                raise IndexBuildError(
                    f"remote address {item!r} is not host:port"
                )
            try:
                out.append((host, int(port)))
            except ValueError:
                raise IndexBuildError(
                    f"remote address {item!r} has a non-numeric port"
                ) from None
        else:
            host, port = item
            out.append((str(host), int(port)))
    return out


class _Worker:
    """One fleet member: address, (re)connectable channel, handshake facts.

    The connection is a :class:`~repro.serving.wire.PipelinedConnection`:
    one writer and one reader thread per worker over a bounded send
    queue, so every dispatch thread (and the heartbeat) can have
    requests in flight on the same socket concurrently — the channel
    matches responses to futures by request id.  ``lock`` only guards
    (re)connection now, not round trips.  Against a v1 peer (no
    ``version`` in ``hello``) the channel caps itself to one in-flight
    request so FIFO matching stays sound.
    """

    __slots__ = (
        "address",
        "timeout",
        "pipelined",
        "max_in_flight",
        "chan",
        "kind",
        "owned",
        "shard_starts",
        "epoch",
        "draining",
        "health",
        "lock",
    )

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float,
        *,
        pipelined: bool = True,
        max_in_flight: Optional[int] = None,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.timeout = timeout
        self.pipelined = bool(pipelined)
        self.max_in_flight = (
            DEFAULT_MAX_IN_FLIGHT if max_in_flight is None else int(max_in_flight)
        )
        self.chan: Optional[wire.PipelinedConnection] = None
        self.kind: str = "undirected"
        self.owned: List[int] = []
        self.shard_starts: List[int] = []
        self.epoch = 0
        self.draining = False
        self.health = WorkerHealth()
        self.lock = create_lock("remote.worker-dial")

    @property
    def id(self) -> str:
        """The fleet identity (``host:port``) — also how the server names itself."""
        return f"{self.address[0]}:{self.address[1]}"

    @property
    def connected(self) -> bool:
        """True while the channel exists and has not been poisoned."""
        return self.chan is not None and not self.chan.closed

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """(Re)dial and handshake; raises :class:`StorageError` on failure."""
        self.close()
        try:
            sock = socket.create_connection(self.address, timeout=self.timeout)
        except OSError as exc:
            raise StorageError(
                f"cannot connect to shard worker {self.id} ({exc})"
            ) from None
        try:
            # A configured wire timeout overrides the dial timeout that
            # create_connection left armed on the socket.
            wire.apply_timeout(sock)
        except ValueError:
            pass
        try:
            # The handshake runs plain request/response — nothing else is
            # in flight yet, and we need the peer's protocol version to
            # know whether pipelining is safe before the channel exists.
            hello = wire.request(sock, {"op": "hello"})
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        if "error" in hello:
            sock.close()
            raise StorageError(
                f"worker {self.id} rejected the handshake: {hello['error']}"
            )
        version = int(hello.get("version", 1))
        self.chan = wire.PipelinedConnection(
            sock,
            max_in_flight=self.max_in_flight,
            pipelined=self.pipelined and version >= wire.PROTOCOL_VERSION,
        )
        self.apply_hello(hello)

    def refresh(self) -> None:
        """Re-run ``hello`` on the live channel (membership staleness path)."""
        self.apply_hello(self.request({"op": "hello"}))

    def apply_hello(self, hello: dict) -> None:
        self.kind = hello.get("kind", "undirected")
        self.owned = [int(i) for i in hello.get("owned", [])]
        self.shard_starts = [int(s) for s in hello.get("shard_starts", [])]
        self.epoch = int(hello.get("epoch", 0))
        self.draining = bool(hello.get("draining", False))

    def _channel(self) -> wire.PipelinedConnection:
        """The live channel, dialing lazily; connection is the only
        serialized step — round trips themselves pipeline freely."""
        with self.lock:
            if not self.connected:
                # Deliberate: dialing is the one serialized step per
                # worker; the dial lock exists to bound it to one thread.
                self.connect()  # repro-lint: disable=lock-discipline
            return self.chan

    def request(self, payload: dict) -> dict:
        """One round trip over the pipelined channel (may complete out of
        order with other in-flight requests); connects lazily."""
        return self._channel().request(payload)

    def close(self) -> None:
        chan, self.chan = self.chan, None
        if chan is not None:
            chan.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Worker({self.id}, {self.health.state}, owned={self.owned})"


def _in_flight_window(value: Optional[int]) -> int:
    """Resolve the pipelined window (argument wins over env; min 1)."""
    if value is not None:
        if value < 1:
            raise IndexBuildError(f"max_in_flight must be >= 1, got {value}")
        return int(value)
    try:
        parsed = read_env_int(
            REMOTE_MAX_IN_FLIGHT_ENV,
            what="pipelined in-flight window",
            minimum=1,
        )
    except ValueError as exc:
        # Same convention as the heartbeat knob: construction surfaces
        # IndexBuildError, keeping the variable-naming message.
        raise IndexBuildError(str(exc)) from None
    return parsed if parsed is not None else DEFAULT_MAX_IN_FLIGHT


def _heartbeat_interval(value: Optional[float]) -> float:
    """Resolve the heartbeat interval (argument wins over env; 0 = off)."""
    if value is not None:
        return max(float(value), 0.0)
    try:
        parsed = read_env_float(
            REMOTE_HEARTBEAT_ENV, what="heartbeat interval in seconds"
        )
    except ValueError as exc:
        # Engine construction surfaces IndexBuildError; the message (with
        # the variable name in it) is the helper's.
        raise IndexBuildError(str(exc)) from None
    return parsed or 0.0


class RemoteEngineBase:
    """Shared client machinery of the two remote engine orientations."""

    name = "remote"
    kind = UNDIRECTED

    def __init__(
        self,
        addresses: Union[str, Sequence[Address], None],
        policy: Optional[SchedulerPolicy],
        timeout: float,
        retry: Optional[RetryPolicy] = None,
        heartbeat_s: Optional[float] = None,
        pipelined: bool = True,
        max_in_flight: Optional[int] = None,
    ) -> None:
        if addresses is None:
            addresses = read_env_str(REMOTE_ADDRS_ENV)
        self.addresses = parse_addresses(addresses)
        if not self.addresses:
            raise IndexBuildError(
                "the remote engine needs worker addresses: pass "
                f"addresses=[...] or set {REMOTE_ADDRS_ENV} "
                "(comma-separated host:port)"
            )
        self.policy = policy
        self.timeout = timeout
        self.retry = (retry or RetryPolicy()).validate()
        self.heartbeat_s = _heartbeat_interval(heartbeat_s)
        #: Pipelined mode (default): per-worker channels allow many
        #: requests in flight and the scheduler dispatches buckets
        #: concurrently over a thread pool.  ``pipelined=False`` is the
        #: strictly serial PR 6 behavior — one bucket at a time, one
        #: request in flight per connection — kept as the benchmark
        #: baseline and as an escape hatch.
        self.pipelined = bool(pipelined)
        self.max_in_flight = _in_flight_window(max_in_flight)
        self.frozen = False
        self.scheduler: Optional[ShardScheduler] = None
        self.membership = MembershipMap()
        #: Survived failovers, for observability and the failover bench:
        #: ``{"bucket": [s_shard, t_shard], "retries": n, "recovery_s": t}``.
        self.failovers: List[dict] = []
        self._workers: List[_Worker] = []
        self._owners: Dict[int, List[_Worker]] = {}
        self._rotation: Dict[int, int] = {}
        self._starts: List[int] = []
        self._route_lock = create_lock("remote.route")
        self._rng = random.Random()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._hb_thread: Optional[threading.Thread] = None
        self._hb_stop = threading.Event()

    # ------------------------------------------------------------------
    # QueryEngine protocol
    # ------------------------------------------------------------------
    def freeze(self) -> "RemoteEngineBase":
        """Dial the fleet, handshake, and build the routing scheduler.

        Tolerates dead workers as long as at least one connects (the dead
        ones stay in the pool for revival); a fleet where *no* worker
        answers fails loudly.
        """
        if self.frozen:
            return self
        workers = [
            _Worker(
                addr,
                self.timeout,
                pipelined=self.pipelined,
                max_in_flight=self.max_in_flight,
            )
            for addr in self.addresses
        ]
        errors: List[str] = []
        for worker in workers:
            try:
                worker.connect()
            except StorageError as exc:
                worker.health.record_failure(fatal=True)
                errors.append(str(exc))
        connected = [w for w in workers if w.connected]
        if not connected:
            for w in workers:
                w.close()
            raise StorageError(
                errors[0]
                if len(errors) == 1
                else "cannot connect to any shard worker: " + "; ".join(errors)
            )
        try:
            for worker in connected:
                self._validate(worker, reference=connected[0])
        except StorageError:
            for w in workers:
                w.close()
            raise
        self._starts = next(
            (w.shard_starts for w in connected if w.shard_starts), []
        )
        self._workers = workers
        self.membership = MembershipMap(
            epoch=max(w.epoch for w in connected)
        )
        for worker in connected:
            self.membership.set(worker.id, worker.owned)
        self._rebuild_routing()
        if self.pipelined:
            # One dispatch thread per potential in-flight bucket: every
            # worker can have a few buckets in flight, and each bucket
            # occupies one pool thread while it waits on its future.
            self._pool = ThreadPoolExecutor(
                max_workers=min(32, max(4, 4 * len(workers))),
                thread_name_prefix="repro-remote-dispatch",
            )
        self.scheduler = ShardScheduler(
            self._starts,
            self._dispatch,
            self.policy,
            dispatch_async=self._dispatch_async if self.pipelined else None,
        )
        self.frozen = True
        self._start_heartbeat()
        return self

    def distance(self, source: int, target: int) -> float:
        return self.distances([(source, target)])[0]

    def distances(self, pairs) -> List[float]:
        if not self.frozen:
            self.freeze()
        return self.scheduler.schedule(pairs)

    def invalidate(self, dirty=None) -> None:
        """Drop the fleet connections; the next query redials.

        ``dirty`` is accepted for protocol compatibility but ignored —
        label state lives on the workers, so any invalidation means "ask
        the fleet again".
        """
        self.close()

    # ------------------------------------------------------------------
    # Validation / routing state
    # ------------------------------------------------------------------
    def _validate(self, worker: _Worker, reference: Optional[_Worker] = None) -> None:
        """Check a (re)connected worker against the fleet's contract."""
        if worker.kind != self.kind:
            raise StorageError(
                f"worker {worker.id} serves a different orientation "
                f"({worker.kind!r} vs client {self.kind!r})"
            )
        expected = self._starts or (
            reference.shard_starts if reference is not None else []
        )
        if worker.shard_starts and expected and worker.shard_starts != expected:
            raise StorageError(
                "workers disagree on the shard layout; are they "
                "serving the same snapshot?"
            )

    def _rebuild_routing(self) -> None:
        """Recompute shard → owners from worker state (callers hold no locks)."""
        owners: Dict[int, List[_Worker]] = {}
        for worker in self._workers:
            if not worker.connected and worker.health.state == DEAD:
                continue
            for shard in worker.owned:
                owners.setdefault(shard, []).append(worker)
        self._owners = owners

    def _usable(self, worker: _Worker, excluded: Set[str]) -> bool:
        return (
            worker.id not in excluded
            and worker.health.state != DEAD
            and not worker.draining
        )

    def _pick(
        self, bucket: Tuple[int, int], excluded: Set[str]
    ) -> Optional[_Worker]:
        """Best worker for a bucket: source-shard owners, then target-shard
        owners, then any usable worker; live preferred over suspect;
        round-robin within the chosen class."""
        with self._route_lock:
            ordered: List[_Worker] = []
            seen: Set[str] = set()
            for shard in bucket:
                for worker in self._owners.get(shard, []):
                    if worker.id not in seen:
                        seen.add(worker.id)
                        ordered.append(worker)
            for worker in self._workers:
                if worker.id not in seen:
                    seen.add(worker.id)
                    ordered.append(worker)
            pool = [w for w in ordered if self._usable(w, excluded)]
            if not pool:
                return None
            live = [w for w in pool if w.health.state == LIVE]
            if live:
                pool = live
            slot = self._rotation.get(bucket[0], 0)
            self._rotation[bucket[0]] = slot + 1
            return pool[slot % len(pool)]

    def _revive(self, excluded: Set[str]) -> bool:
        """Reconnect dead/excluded workers; True if any came back."""
        revived = False
        for worker in self._workers:
            if worker.health.state != DEAD and worker.id not in excluded:
                continue
            try:
                worker.connect()
                self._validate(worker)
            except (StorageError, wire.WireError, OSError):
                worker.close()
                continue
            worker.health.record_success()
            excluded.discard(worker.id)
            with self._route_lock:
                self.membership.set(worker.id, worker.owned)
            revived = True
        if revived:
            with self._route_lock:
                self._rebuild_routing()
        return revived

    def _refresh_membership(self) -> None:
        """Re-learn the fleet after a staleness signal (``not_owner``).

        Re-hellos every reachable worker, adopts the newest membership
        view any of them holds, dials workers the map names that this
        client has never met, and rebuilds routing.
        """
        best: Optional[MembershipMap] = None
        for worker in list(self._workers):
            try:
                worker.refresh()
                payload = worker.request({"op": "membership"})
            except (wire.WireError, OSError, StorageError):
                worker.health.record_failure(fatal=True)
                worker.close()
                continue
            worker.health.record_success()
            if payload.get("ok"):
                try:
                    view = MembershipMap.from_wire(payload)
                except StorageError:
                    continue
                if best is None or view.epoch > best.epoch:
                    best = view
        with self._route_lock:
            if best is not None:
                self.membership.merge(best)
            known = {w.id for w in self._workers}
            discovered = [
                w for w in self.membership.workers() if w not in known
            ]
        for worker_id in discovered:
            host, sep, port = worker_id.rpartition(":")
            if not sep:
                continue
            try:
                worker = _Worker((host, int(port)), self.timeout)
                worker.connect()
                self._validate(worker)
            except (StorageError, ValueError, OSError):
                continue
            with self._route_lock:
                self._workers.append(worker)
        with self._route_lock:
            self._rebuild_routing()

    # ------------------------------------------------------------------
    # Replica-aware dispatch
    # ------------------------------------------------------------------
    def _dispatch_async(self, chunk, bucket) -> "Future[List[float]]":
        """Run one bucket dispatch on the pool: the scheduler fires all
        buckets of a batch through this and gathers, so every worker has
        requests in flight at once.  Each pooled dispatch keeps the full
        replica-aware retry loop of :meth:`_dispatch` — failover is per
        in-flight request, not per batch."""
        if self._pool is None:
            fut: "Future[List[float]]" = Future()
            try:
                fut.set_result(self._dispatch(chunk, bucket))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                fut.set_exception(exc)
            return fut
        return self._pool.submit(self._dispatch, chunk, bucket)

    def _dispatch(self, chunk, bucket) -> List[float]:
        pairs = [[s, t] for s, t in chunk]
        excluded: Set[str] = set()
        attempt = 0
        failed_at: Optional[float] = None
        last_error: Optional[str] = None
        revive_budget = 1  # one full revive sweep per bucket
        while attempt < self.retry.max_attempts:
            worker = self._pick(bucket, excluded)
            if worker is None:
                if revive_budget > 0 and self._revive(excluded):
                    revive_budget -= 1
                    continue
                break
            if attempt > 0:
                time.sleep(self.retry.delay(attempt - 1, self._rng))
            try:
                response = worker.request({"op": "distances", "pairs": pairs})
            except (wire.WireError, OSError, StorageError) as exc:
                worker.health.record_failure(fatal=True)
                worker.close()
                excluded.add(worker.id)
                last_error = f"{worker.id}: {exc}"
                if failed_at is None:
                    failed_at = time.monotonic()
                attempt += 1
                continue
            if "error" in response:
                error_kind = response.get("error_kind")
                if error_kind == "overloaded":
                    # Admission rejection, not a fault: the worker is
                    # healthy but saturated.  Back off (the loop-top
                    # sleep) and retry — same fleet, nobody excluded,
                    # no health penalty, not counted as a failover.
                    last_error = f"{worker.id}: {response['error']}"
                    attempt += 1
                    continue
                if error_kind == "not_owner":
                    # Membership staleness, not a fault: refresh and
                    # reroute with this worker excluded for the bucket.
                    excluded.add(worker.id)
                    last_error = f"{worker.id}: {response['error']}"
                    if failed_at is None:
                        failed_at = time.monotonic()
                    self._refresh_membership()
                    attempt += 1
                    continue
                if error_kind == "query":
                    raise QueryError(response["error"])
                raise StorageError(
                    f"worker {worker.id} failed: {response['error']}"
                )
            worker.health.record_success()
            answers = response.get("distances")
            if not isinstance(answers, list) or len(answers) != len(chunk):
                raise StorageError(
                    f"worker {worker.id} returned "
                    f"{'no' if not isinstance(answers, list) else len(answers)} "
                    f"distances for {len(chunk)} queries"
                )
            if failed_at is not None:
                self.failovers.append(
                    {
                        "bucket": [int(bucket[0]), int(bucket[1])],
                        "retries": attempt,
                        "recovery_s": time.monotonic() - failed_at,
                    }
                )
            return [float(d) if not isinstance(d, int) else d for d in answers]
        raise StorageError(
            f"bucket {bucket} failed after {attempt} attempt(s) across the "
            f"fleet (excluded: {sorted(excluded) or 'none'}; last error: "
            f"{last_error or 'no usable worker'})"
        )

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def _start_heartbeat(self) -> None:
        if self.heartbeat_s <= 0 or self._hb_thread is not None:
            return
        self._hb_stop.clear()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-remote-heartbeat", daemon=True
        )
        self._hb_thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self.heartbeat_s):
            changed = False
            for worker in list(self._workers):
                previous = worker.health.state
                try:
                    if not worker.connected:
                        # Revival probe.  Connection is the one step
                        # still serialized per worker; skip rather than
                        # block if a dispatch is already redialing.
                        if not worker.lock.acquire(blocking=False):
                            continue
                        try:
                            if not worker.connected:
                                # Deliberate: revival dial under the
                                # non-blockingly acquired dial lock.
                                worker.connect()  # repro-lint: disable=lock-discipline
                        finally:
                            worker.lock.release()
                        self._validate(worker)
                    else:
                        # Ping rides the pipelined channel alongside any
                        # in-flight dispatches — no socket stealing.
                        chan = worker.chan
                        if chan is None:  # closed under us: next tick probes
                            raise StorageError("connection lost")
                        if not chan.request({"op": "ping"}).get("ok"):
                            raise StorageError("ping declined")
                except (wire.WireError, OSError, StorageError):
                    worker.health.record_failure()
                    if worker.health.state == DEAD:
                        worker.close()
                else:
                    worker.health.record_success()
                if worker.health.state != previous:
                    changed = True
            if changed:
                with self._route_lock:
                    self._rebuild_routing()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._hb_stop.set()
        thread, self._hb_thread = self._hb_thread, None
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)
        for worker in self._workers:
            worker.close()
        self._workers = []
        self._owners = {}
        self._rotation = {}
        self._starts = []
        self.scheduler = None
        self.frozen = False

    def __enter__(self):
        return self.freeze()

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


class RemoteEngine(RemoteEngineBase):
    """Undirected ``"remote"`` engine.

    The registry factory signature matches the other undirected engines
    (``gk, entry_lists, arrays`` — all ignored: the labels live on the
    workers); ``addresses``/``policy``/``retry``/``heartbeat_s``
    configure the fleet client.
    """

    kind = UNDIRECTED

    def __init__(
        self,
        gk=None,
        entry_lists=None,
        arrays=None,
        apsp_budget_bytes=None,
        *,
        addresses: Union[str, Sequence[Address], None] = None,
        policy: Optional[SchedulerPolicy] = None,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        heartbeat_s: Optional[float] = None,
        pipelined: bool = True,
        max_in_flight: Optional[int] = None,
    ) -> None:
        super().__init__(
            addresses, policy, timeout, retry, heartbeat_s,
            pipelined=pipelined, max_in_flight=max_in_flight,
        )


class DirectedRemoteEngine(RemoteEngineBase):
    """Directed ``"remote"`` engine (registry twin of :class:`RemoteEngine`)."""

    kind = DIRECTED

    def __init__(
        self,
        gk=None,
        out_lists=None,
        in_lists=None,
        apsp_budget_bytes=None,
        *,
        addresses: Union[str, Sequence[Address], None] = None,
        policy: Optional[SchedulerPolicy] = None,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        heartbeat_s: Optional[float] = None,
        pipelined: bool = True,
        max_in_flight: Optional[int] = None,
    ) -> None:
        super().__init__(
            addresses, policy, timeout, retry, heartbeat_s,
            pipelined=pipelined, max_in_flight=max_in_flight,
        )


_REMOTE_CAPS = {CAP_REMOTE, CAP_SHARDED, CAP_FAULT_TOLERANT}
register_engine(UNDIRECTED, RemoteEngine.name, RemoteEngine, _REMOTE_CAPS)
register_engine(
    DIRECTED, DirectedRemoteEngine.name, DirectedRemoteEngine, _REMOTE_CAPS
)
