"""Shard-aware query scheduling: bucket ``(s, t)`` streams by shard pair.

IS-LABEL queries are pairs of independent label lookups (Equation 1 plus
a small shared search stage), which makes a query stream embarrassingly
batchable — *if* the batches are shaped to the storage layout.  The
sharded serving engine (:mod:`repro.core.snapshot`) splits the label
arrays into contiguous vertex-id-range shard files; a batch whose pairs
all land in one ``(source shard, target shard)`` bucket touches exactly
two shard files, reuses the same lazily-mapped pages, fills adjacent
all-pairs table rows, and amortizes the engine's vectorized
``batch_eq1``/``batch_table_stage`` passes over the whole bucket.  A
naive per-query loop pays every one of those costs per call.

:class:`ShardScheduler` is that routing layer.  It consumes ``(s, t)``
pairs — one batch at a time (:meth:`schedule`) or as a stream
(:meth:`submit`/:meth:`drain`) — buckets them by owning shard pair via
the snapshot's ownership map (shard *starts*: vertex ``v`` belongs to
the shard with the rightmost start ``<= v``), and dispatches each bucket
as **one** batched ``distances()`` call.  Dispatch is a callable, so the
same scheduler drives a local sharded engine, an index facade, or the
remote engine's per-worker connections (:mod:`repro.serving.remote` — a
bucket becomes one wire frame to the worker owning the source shard).

:class:`SchedulerPolicy` is the small knob the issue tracker asked for:
``max_batch`` caps how many queries one dispatch may carry (1 degenerates
to per-query dispatch — the property suite's bit-identity baseline), and
``max_delay_s`` bounds how long a streamed query may sit in a bucket
before everything pending is flushed (latency floor under trickle
traffic; ``0`` flushes only on size or an explicit drain).

Scheduling never changes answers: results are scattered back to input
positions, so :meth:`schedule` is bit-identical to calling
``distance(s, t)`` per pair on any engine — which is exactly what the
property tests assert against the dict oracle.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from concurrent.futures import Future
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import QueryError

__all__ = [
    "SchedulerPolicy",
    "ShardScheduler",
    "assign_shards",
    "shard_starts_of",
]


def shard_starts_of(obj) -> List[int]:
    """Shard starts of an engine or index facade ([] when unsharded).

    Accepts either a packed engine or an index facade (whose ``_fast``
    engine is probed).  Freezes the engine if needed — the sharded label
    table (and with it the shard layout) only exists frozen.
    """
    probe = getattr(obj, "_fast", None)
    if probe is None:
        probe = obj
    freeze = getattr(probe, "freeze", None)
    if callable(freeze):
        freeze()
    for attr in ("table", "out_table"):
        table = getattr(probe, attr, None)
        got = getattr(table, "starts", None)
        if got:
            return list(got)
    return []

#: A dispatch target: called with one bucket's pairs (in arrival order)
#: and the bucket key ``(source shard, target shard)``; must return one
#: distance per pair, in order.
Dispatch = Callable[[List[Tuple[int, int]], Tuple[int, int]], Sequence[float]]

#: The pipelined dispatch seam: same arguments, but returns a
#: :class:`concurrent.futures.Future` resolving to the answers, so the
#: scheduler can put *every* bucket of a batch in flight before waiting
#: on any of them.  Provided by the remote engine (a thread-pool submit
#: over its replica-aware dispatch); optional — without it the scheduler
#: awaits each bucket in turn, the strictly serial baseline.
DispatchAsync = Callable[
    [List[Tuple[int, int]], Tuple[int, int]], "Future[Sequence[float]]"
]


class SchedulerPolicy(NamedTuple):
    """Batching knobs of the scheduler.

    ``max_batch``
        Largest number of queries one dispatch call may carry.  Streaming
        buckets flush as soon as they reach it; :meth:`ShardScheduler.schedule`
        chunks oversized buckets by it.  ``1`` disables batching entirely
        (every query dispatched alone — the degenerate baseline).
    ``max_delay_s``
        Streaming only: once the *oldest* pending query has waited this
        long, the next :meth:`~ShardScheduler.submit` flushes everything
        pending.  ``0.0`` means no time-based flush — queries wait for a
        full bucket or an explicit :meth:`~ShardScheduler.drain`.
    ``coalesce_source``
        Batch mode only: merge adjacent buckets that share a *source*
        shard into one dispatch (up to ``max_batch``).  Routing is
        unaffected — a coalesced dispatch still belongs to the owner of
        the one source shard — but small per-pair buckets regain the
        engine's full batch amortization.  Disable to get strictly
        per-shard-pair dispatches.
    """

    max_batch: int = 1024
    max_delay_s: float = 0.0
    coalesce_source: bool = True


class ShardScheduler:
    """Routes and batches point-to-point queries per owning shard pair.

    ``starts`` is the sharded snapshot's ownership map — the sorted first
    vertex id of every shard (:attr:`repro.core.snapshot.Snapshot.shard_starts`).
    An empty list means "one implicit shard" (unsharded engines): the
    scheduler still batches, it just has a single bucket.
    """

    __slots__ = (
        "starts",
        "dispatch",
        "dispatch_async",
        "policy",
        "dispatch_calls",
        "queries_scheduled",
        "buckets_coalesced",
        "_pending",
        "_pending_count",
        "_oldest_pending",
        "_results",
        "_next_ticket",
    )

    def __init__(
        self,
        starts: Sequence[int],
        dispatch: Dispatch,
        policy: Optional[SchedulerPolicy] = None,
        dispatch_async: Optional[DispatchAsync] = None,
    ) -> None:
        self.starts = sorted(int(s) for s in starts)
        self.dispatch = dispatch
        self.dispatch_async = dispatch_async
        self.policy = policy or SchedulerPolicy()
        if self.policy.max_batch < 1:
            raise QueryError(
                f"SchedulerPolicy.max_batch must be >= 1, "
                f"got {self.policy.max_batch}"
            )
        #: How many dispatch calls / queries this scheduler has issued —
        #: the amortization ratio the benchmark reports.
        self.dispatch_calls = 0
        self.queries_scheduled = 0
        self.buckets_coalesced = 0
        # Streaming state: bucket -> [(ticket, s, t), ...].
        self._pending: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        self._pending_count = 0
        self._oldest_pending: Optional[float] = None
        self._results: Dict[int, float] = {}
        self._next_ticket = 0

    @classmethod
    def for_engine(cls, engine, policy: Optional[SchedulerPolicy] = None):
        """Scheduler over a frozen local engine (or index facade).

        Sniffs the shard starts from the engine's label table when it is
        sharded (``table`` undirected / ``out_table`` directed); falls
        back to the single implicit bucket otherwise.  Dispatch goes
        through ``engine.distances``, so facades keep their coverage
        checks and I/O accounting.
        """
        starts = shard_starts_of(engine)
        return cls(starts, lambda pairs, bucket: engine.distances(pairs), policy)

    # ------------------------------------------------------------------
    # Shard mapping
    # ------------------------------------------------------------------
    def shard_of(self, v: int) -> int:
        """Owning shard index of vertex ``v`` (0 when unsharded)."""
        if not self.starts:
            return 0
        return max(bisect_right(self.starts, v) - 1, 0)

    def bucket_of(self, s: int, t: int) -> Tuple[int, int]:
        """The shard-pair bucket a query belongs to."""
        return self.shard_of(s), self.shard_of(t)

    @property
    def num_shards(self) -> int:
        return max(len(self.starts), 1)

    # ------------------------------------------------------------------
    # Batch scheduling
    # ------------------------------------------------------------------
    def schedule(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        """Answer a whole batch, bucketed per shard pair.

        Groups the batch by bucket, dispatches each bucket (chunked at
        ``policy.max_batch``, and — with ``coalesce_source`` — merged
        with same-source neighbours) as one batched call, and scatters
        the answers back to input order.  Buckets dispatch in ascending
        shard-pair order so consecutive calls touch neighbouring shard
        files and all-pairs table rows.
        """
        pairs = [(int(s), int(t)) for s, t in pairs]
        out: List[float] = [0.0] * len(pairs)
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for i, (s, t) in enumerate(pairs):
            buckets.setdefault(self.bucket_of(s, t), []).append(i)
        cap = self.policy.max_batch
        # Dispatch groups: one per bucket, except that adjacent buckets
        # sharing a source shard may coalesce (their owner is the same
        # worker) while they fit the batch cap.
        groups: List[Tuple[Tuple[int, int], List[int]]] = []
        for bucket in sorted(buckets):
            positions = buckets[bucket]
            if (
                self.policy.coalesce_source
                and groups
                and groups[-1][0][0] == bucket[0]
                and len(groups[-1][1]) + len(positions) <= cap
            ):
                groups[-1] = (groups[-1][0], groups[-1][1] + positions)
                self.buckets_coalesced += 1
            else:
                groups.append((bucket, list(positions)))
        jobs: List[Tuple[Tuple[int, int], List[int]]] = []
        for bucket, positions in groups:
            for lo in range(0, len(positions), cap):
                jobs.append((bucket, positions[lo : lo + cap]))
        if self.dispatch_async is not None and len(jobs) > 1:
            # Pipelined batch: every chunk goes in flight before any is
            # awaited, so a fleet dispatch keeps all workers busy at
            # once.  Gathering in job order keeps the accounting and the
            # raise-first-error behavior deterministic.
            futures: List["Future[Sequence[float]]"] = [
                self.dispatch_async([pairs[i] for i in chunk], bucket)
                for bucket, chunk in jobs
            ]
            first_error: Optional[BaseException] = None
            for (bucket, chunk), future in zip(jobs, futures):
                try:
                    answers = self._record(
                        [pairs[i] for i in chunk], bucket, future.result()
                    )
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
                    continue
                for i, d in zip(chunk, answers):
                    out[i] = d
            if first_error is not None:
                raise first_error
            return out
        for bucket, chunk in jobs:
            answers = self._dispatch([pairs[i] for i in chunk], bucket)
            for i, d in zip(chunk, answers):
                out[i] = d
        return out

    def _record(
        self,
        chunk: List[Tuple[int, int]],
        bucket: Tuple[int, int],
        answers: Sequence[float],
    ) -> Sequence[float]:
        """Validate and account one completed dispatch (either seam)."""
        if len(answers) != len(chunk):
            raise QueryError(
                f"scheduler dispatch for bucket {bucket} returned "
                f"{len(answers)} answers for {len(chunk)} queries"
            )
        self.dispatch_calls += 1
        self.queries_scheduled += len(chunk)
        return answers

    def _dispatch(
        self, chunk: List[Tuple[int, int]], bucket: Tuple[int, int]
    ) -> Sequence[float]:
        return self._record(chunk, bucket, self.dispatch(chunk, bucket))

    # ------------------------------------------------------------------
    # Streaming scheduling
    # ------------------------------------------------------------------
    def submit(self, s: int, t: int) -> int:
        """Enqueue one query; returns a ticket to look its answer up by.

        The query's bucket flushes when it reaches ``policy.max_batch``;
        independently, if the oldest pending query has waited longer than
        ``policy.max_delay_s``, everything pending flushes so a trickle
        of traffic cannot strand queries in half-full buckets.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        bucket = self.bucket_of(s, t)
        queue = self._pending.setdefault(bucket, [])
        queue.append((ticket, int(s), int(t)))
        self._pending_count += 1
        if self._oldest_pending is None:
            self._oldest_pending = time.monotonic()
        if len(queue) >= self.policy.max_batch:
            self._flush_bucket(bucket)
        if (
            self.policy.max_delay_s > 0
            and self._oldest_pending is not None
            and time.monotonic() - self._oldest_pending >= self.policy.max_delay_s
        ):
            self.flush()
        return ticket

    @property
    def pending_count(self) -> int:
        """Queries submitted but not yet dispatched."""
        return self._pending_count

    def stats(self) -> Dict[str, float]:
        """Batching-efficiency counters as one snapshot dict.

        ``dispatch_calls`` / ``queries_scheduled`` give the amortization
        ratio (``avg_batch``), ``buckets_coalesced`` counts same-source
        bucket merges, and ``pending`` is the streaming backlog.  This is
        the observability surface the load harness and the ``stats`` wire
        op report — callers should read it instead of monkey-patching
        ``_dispatch``.
        """
        return {
            "dispatch_calls": self.dispatch_calls,
            "queries_scheduled": self.queries_scheduled,
            "buckets_coalesced": self.buckets_coalesced,
            "pending": self._pending_count,
            "avg_batch": (
                self.queries_scheduled / self.dispatch_calls
                if self.dispatch_calls
                else 0.0
            ),
        }

    def pending(self) -> Dict[int, Tuple[int, int]]:
        """Snapshot of submitted-but-undispatched queries: ticket → pair.

        After a flush that raised, this is exactly the set of queries
        whose buckets never dispatched — the caller can inspect, re-flush
        or re-route them instead of blindly re-calling :meth:`flush`.
        """
        return {
            ticket: (s, t)
            for queue in self._pending.values()
            for ticket, s, t in queue
        }

    def _flush_bucket(self, bucket: Tuple[int, int]) -> None:
        queue = self._pending.get(bucket)
        if not queue:
            return
        # Dispatch before dequeuing: a failed dispatch (dead remote
        # worker, engine error) must leave the bucket pending — not
        # silently lose the queries.  One transient failure is retried
        # immediately (a replica-aware dispatch has usually failed over
        # by its second call); a second failure propagates, with the
        # bucket still pending and visible via pending().
        chunk = [(s, t) for _, s, t in queue]
        try:
            answers = self._dispatch(chunk, bucket)
        except QueryError:
            raise  # bad query / miscounted answers: retrying cannot help
        except Exception:
            answers = self._dispatch(chunk, bucket)
        self._complete(bucket, queue, answers)

    def _complete(
        self,
        bucket: Tuple[int, int],
        queue: List[Tuple[int, int, int]],
        answers: Sequence[float],
    ) -> None:
        """Dequeue a successfully dispatched bucket and file its answers."""
        del self._pending[bucket]
        self._pending_count -= len(queue)
        if self._pending_count == 0:
            self._oldest_pending = None
        for (ticket, _, _), d in zip(queue, answers):
            self._results[ticket] = d

    def flush(self) -> None:
        """Dispatch every pending bucket now (ascending shard-pair order).

        With a ``dispatch_async`` seam, all pending buckets go in flight
        *concurrently*; transient failures get one concurrent retry
        round, and only then does the first error propagate — failed
        buckets stay pending (:meth:`pending`), successful ones keep
        their results.  Without the seam (or with one bucket) buckets
        dispatch in turn with the same retry-once semantics
        (:meth:`_flush_bucket`).
        """
        if self.dispatch_async is None or len(self._pending) <= 1:
            for bucket in sorted(self._pending):
                self._flush_bucket(bucket)
            return
        first_error: Optional[BaseException] = None
        round_buckets = sorted(self._pending)
        for retry_round in range(2):
            if not round_buckets:
                break
            chunks = {
                bucket: [(s, t) for _, s, t in self._pending[bucket]]
                for bucket in round_buckets
            }
            futures = {
                bucket: self.dispatch_async(chunks[bucket], bucket)
                for bucket in round_buckets
            }
            failed: List[Tuple[int, int]] = []
            for bucket in round_buckets:
                try:
                    answers = self._record(
                        chunks[bucket], bucket, futures[bucket].result()
                    )
                except QueryError as exc:
                    # Bad query / miscounted answers: retrying cannot
                    # help, but the other buckets still settle first.
                    if first_error is None:
                        first_error = exc
                    continue
                except Exception as exc:  # noqa: BLE001 - retried next round
                    if retry_round == 0:
                        failed.append(bucket)
                    elif first_error is None:
                        first_error = exc
                    continue
                self._complete(bucket, self._pending[bucket], answers)
            round_buckets = failed
        if first_error is not None:
            raise first_error

    def result(self, ticket: int) -> float:
        """Answer for ``ticket``; flushes pending work if still queued."""
        if ticket not in self._results:
            self.flush()
        try:
            return self._results.pop(ticket)
        except KeyError:
            raise QueryError(f"unknown or already-collected ticket {ticket}")

    def drain(self) -> Dict[int, float]:
        """Flush everything and hand back (and clear) collected answers.

        Deliberately does *not* touch the batching counters — they are
        lifetime totals.  A caller that wants per-run numbers (benchmarks
        running several phases in one process) snapshots :meth:`stats`
        deltas or calls :meth:`reset` between phases.
        """
        self.flush()
        results = self._results
        self._results = {}
        return results

    def reset(self) -> None:
        """Zero the batching-efficiency counters (pending work is kept).

        ``drain()`` never resets them, so repeated measurement phases in
        one process would otherwise report cumulative totals; benchmarks
        call this (or diff :meth:`stats` snapshots) between phases.
        """
        self.dispatch_calls = 0
        self.queries_scheduled = 0
        self.buckets_coalesced = 0


def assign_shards(
    num_shards: int, workers: int, replication: int = 1
) -> List[List[int]]:
    """Partition shard indices into ``workers`` contiguous ownership slices.

    The deployment-side half of the ownership map: contiguous ranges keep
    each worker's mapped files adjacent (and its page working set dense).
    Workers beyond the shard count receive empty slices rather than
    erroring, so over-provisioned fleets degrade gracefully.

    ``replication`` > 1 gives every shard that many owners: worker ``w``
    additionally owns the primary slices of the next ``replication - 1``
    workers (ring order).  With ``replication=2`` any *single* worker's
    death leaves every shard with a surviving owner — the fault-tolerance
    floor the chaos suite asserts.
    """
    if workers < 1:
        raise QueryError(f"assign_shards needs >= 1 worker, got {workers}")
    if not 1 <= replication <= workers:
        raise QueryError(
            f"assign_shards replication must be in [1, {workers} workers], "
            f"got {replication}"
        )
    primary: List[List[int]] = [[] for _ in range(workers)]
    base, extra = divmod(num_shards, workers)
    cursor = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        primary[w] = list(range(cursor, cursor + size))
        cursor += size
    if replication == 1:
        return primary
    out: List[List[int]] = []
    for w in range(workers):
        owned = set()
        for r in range(replication):
            owned.update(primary[(w + r) % workers])
        out.append(sorted(owned))
    return out
