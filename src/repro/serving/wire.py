"""Length-prefixed framing for the remote shard-serving protocol.

One frame = a 4-byte big-endian payload length followed by a UTF-8 JSON
object.  JSON keeps the protocol debuggable (``nc`` + eyeballs) and is
lossless for everything the distance API moves: vertex ids and distances
are Python ints, unreachable pairs are ``inf`` (serialized as JSON's
``Infinity`` extension, which the :mod:`json` module emits and parses by
default) — so remote answers stay bit-identical to local engine answers.

Requests are ``{"op": <name>, ...}``; responses either carry the op's
payload or ``{"error": <message>}``, which the client surfaces as
:class:`~repro.errors.StorageError`.  Ops:

``hello``
    Handshake.  The server answers with its orientation (``kind``), the
    shard layout of the snapshot it serves (``shard_starts``) and the
    shard indices it *owns* (its slice of the deployment's ownership
    map) — everything the client-side scheduler needs to route buckets.
``distances``
    ``{"pairs": [[s, t], ...]}`` → ``{"distances": [...]}``, one batched
    engine call per frame.  This is the unit the shard scheduler
    amortizes: one frame per shard-pair bucket.
``stats``
    Lightweight introspection (queries served, engine name, owned shards).
``ping``
    Liveness probe; echoes ``{"ok": true}``.  The remote engine's
    heartbeat thread rides this op to mark workers suspect/dead/recovered.
``membership`` / ``join`` / ``leave``
    Cluster membership (:mod:`repro.serving.membership`): read a worker's
    versioned shard→owners map, announce a worker (re)joining with an
    ownership slice, or remove one (a worker told to leave *itself*
    drains: in-flight buckets complete, new non-owned buckets are
    rejected with the ``not_owner`` error kind).
``shutdown``
    Asks the server to stop accepting connections and exit its accept
    loop (used by tests and the benchmark harness for clean teardown).

Framing failures (oversized frames, EOF mid-frame) raise
:class:`WireError`; a clean EOF between frames returns ``None`` from
:func:`recv_frame` so servers can tell "client hung up" from "stream
corrupted".

**Timeouts**: with ``REPRO_WIRE_TIMEOUT_S`` set (seconds, fractional
allowed; unset/empty = off for compatibility), every send/recv on a
socket that :func:`apply_timeout` has configured raises
:class:`WireTimeout` instead of blocking forever — a hung or paused
worker cannot stall a client thread indefinitely, and the client treats
a timeout like a dead connection (fail over to the next replica).
:class:`WireTimeout.partial` distinguishes "timed out *mid-frame*"
(stream state unknown, drop the connection) from "timed out waiting for
a new frame" (idle; a server keeps the connection).
"""

from __future__ import annotations

import json
import math
import os
import socket
import struct
from typing import Optional

from repro.errors import ReproError

__all__ = [
    "WireError",
    "WireTimeout",
    "WIRE_TIMEOUT_ENV",
    "MAX_FRAME_BYTES",
    "configured_timeout",
    "apply_timeout",
    "send_frame",
    "recv_frame",
    "request",
]

#: Refuse to (de)serialize frames larger than this: a corrupt or hostile
#: length prefix must not make a worker allocate gigabytes.  64 MiB is
#: roomy — about two million query pairs per frame.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct("!I")


#: Environment knob for per-connection send/recv timeouts (seconds).
#: Unset or empty = no timeout (the pre-timeout blocking behavior).
WIRE_TIMEOUT_ENV = "REPRO_WIRE_TIMEOUT_S"


class WireError(ReproError):
    """The length-prefixed stream was violated (truncation, oversize)."""


class WireTimeout(WireError):
    """A send/recv exceeded the configured wire timeout.

    ``partial`` is True when the timeout hit *mid-frame* (or mid-send) —
    the stream state is unknown and the connection must be dropped; False
    means the peer simply had nothing to say yet (idle between frames).
    """

    def __init__(self, message: str, partial: bool = True) -> None:
        super().__init__(message)
        self.partial = partial


def configured_timeout() -> Optional[float]:
    """The :data:`WIRE_TIMEOUT_ENV` timeout, validated; None when off.

    Raises ``ValueError`` naming the variable on non-numeric, negative or
    non-finite values instead of silently disabling the timeout; ``0``
    explicitly disables it.
    """
    raw = os.environ.get(WIRE_TIMEOUT_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{WIRE_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    if not math.isfinite(value) or value < 0:
        raise ValueError(
            f"{WIRE_TIMEOUT_ENV} must be a finite non-negative number of "
            f"seconds, got {raw!r}"
        )
    return value if value > 0 else None


def apply_timeout(
    sock: socket.socket, timeout: Optional[float] = None
) -> Optional[float]:
    """Arm ``sock`` with the explicit or env-configured wire timeout.

    Returns the applied timeout (None = left blocking).  Call once per
    connection; every subsequent :func:`send_frame`/:func:`recv_frame`
    on the socket then raises :class:`WireTimeout` instead of hanging.
    """
    if timeout is None:
        timeout = configured_timeout()
    if timeout is not None:
        sock.settimeout(timeout)
    return timeout


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialize ``payload`` and send it as one length-prefixed frame."""
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise WireError(
            f"refusing to send a {len(blob)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    try:
        sock.sendall(_LEN.pack(len(blob)) + blob)
    except socket.timeout:
        raise WireTimeout(
            f"send of a {len(blob)}-byte frame timed out", partial=True
        ) from None
    except OSError as exc:
        raise WireError(f"send failed: {exc}") from None


def _recv_exact(
    sock: socket.socket, size: int, mid_frame: bool = False
) -> Optional[bytes]:
    """``size`` bytes from ``sock``; None on clean EOF at a frame edge."""
    chunks = []
    got = 0
    while got < size:
        try:
            chunk = sock.recv(min(size - got, 1 << 20))
        except socket.timeout:
            raise WireTimeout(
                f"receive timed out ({got} of {size} bytes)",
                partial=mid_frame or got > 0,
            ) from None
        except OSError as exc:
            raise WireError(f"receive failed: {exc}") from None
        if not chunk:
            if got == 0:
                return None
            raise WireError(
                f"connection closed mid-frame ({got} of {size} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; returns its payload, or None on clean EOF."""
    prefix = _recv_exact(sock, _LEN.size)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    blob = _recv_exact(sock, length, mid_frame=True)
    if blob is None:
        raise WireError("connection closed before the announced frame")
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame payload ({exc})") from None
    if not isinstance(payload, dict):
        raise WireError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def request(sock: socket.socket, payload: dict) -> dict:
    """One round trip: send ``payload``, receive and return the response.

    Raises :class:`WireError` if the server hangs up instead of
    answering; server-reported ``{"error": ...}`` responses are returned
    as-is for the caller to interpret (the client engine raises them as
    :class:`~repro.errors.StorageError`).
    """
    send_frame(sock, payload)
    response = recv_frame(sock)
    if response is None:
        raise WireError(
            f"server closed the connection answering {payload.get('op')!r}"
        )
    return response
