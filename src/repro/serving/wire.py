"""Length-prefixed framing for the remote shard-serving protocol.

One frame = a 4-byte big-endian payload length followed by a UTF-8 JSON
object.  JSON keeps the protocol debuggable (``nc`` + eyeballs) and is
lossless for everything the distance API moves: vertex ids and distances
are Python ints, unreachable pairs are ``inf`` (serialized as JSON's
``Infinity`` extension, which the :mod:`json` module emits and parses by
default) — so remote answers stay bit-identical to local engine answers.

Requests are ``{"op": <name>, ...}``; responses either carry the op's
payload or ``{"error": <message>}``, which the client surfaces as
:class:`~repro.errors.StorageError`.  Ops:

``hello``
    Handshake.  The server answers with its orientation (``kind``), the
    shard layout of the snapshot it serves (``shard_starts``) and the
    shard indices it *owns* (its slice of the deployment's ownership
    map) — everything the client-side scheduler needs to route buckets.
``distances``
    ``{"pairs": [[s, t], ...]}`` → ``{"distances": [...]}``, one batched
    engine call per frame.  This is the unit the shard scheduler
    amortizes: one frame per shard-pair bucket.
``stats``
    Lightweight introspection (queries served, engine name, owned shards).
``ping``
    Liveness probe; echoes ``{"ok": true}``.
``shutdown``
    Asks the server to stop accepting connections and exit its accept
    loop (used by tests and the benchmark harness for clean teardown).

Framing failures (oversized frames, EOF mid-frame) raise
:class:`WireError`; a clean EOF between frames returns ``None`` from
:func:`recv_frame` so servers can tell "client hung up" from "stream
corrupted".
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.errors import ReproError

__all__ = [
    "WireError",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "request",
]

#: Refuse to (de)serialize frames larger than this: a corrupt or hostile
#: length prefix must not make a worker allocate gigabytes.  64 MiB is
#: roomy — about two million query pairs per frame.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct("!I")


class WireError(ReproError):
    """The length-prefixed stream was violated (truncation, oversize)."""


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialize ``payload`` and send it as one length-prefixed frame."""
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise WireError(
            f"refusing to send a {len(blob)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    try:
        sock.sendall(_LEN.pack(len(blob)) + blob)
    except OSError as exc:
        raise WireError(f"send failed: {exc}") from None


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """``size`` bytes from ``sock``; None on clean EOF at a frame edge."""
    chunks = []
    got = 0
    while got < size:
        try:
            chunk = sock.recv(min(size - got, 1 << 20))
        except OSError as exc:
            raise WireError(f"receive failed: {exc}") from None
        if not chunk:
            if got == 0:
                return None
            raise WireError(
                f"connection closed mid-frame ({got} of {size} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; returns its payload, or None on clean EOF."""
    prefix = _recv_exact(sock, _LEN.size)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    blob = _recv_exact(sock, length)
    if blob is None:
        raise WireError("connection closed before the announced frame")
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame payload ({exc})") from None
    if not isinstance(payload, dict):
        raise WireError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def request(sock: socket.socket, payload: dict) -> dict:
    """One round trip: send ``payload``, receive and return the response.

    Raises :class:`WireError` if the server hangs up instead of
    answering; server-reported ``{"error": ...}`` responses are returned
    as-is for the caller to interpret (the client engine raises them as
    :class:`~repro.errors.StorageError`).
    """
    send_frame(sock, payload)
    response = recv_frame(sock)
    if response is None:
        raise WireError(
            f"server closed the connection answering {payload.get('op')!r}"
        )
    return response
