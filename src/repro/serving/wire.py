"""Length-prefixed framing for the remote shard-serving protocol.

One frame = a 4-byte big-endian payload length followed by a UTF-8 JSON
object.  JSON keeps the protocol debuggable (``nc`` + eyeballs) and is
lossless for everything the distance API moves: vertex ids and distances
are Python ints, unreachable pairs are ``inf`` (serialized as JSON's
``Infinity`` extension, which the :mod:`json` module emits and parses by
default) — so remote answers stay bit-identical to local engine answers.

Requests are ``{"op": <name>, ...}``; responses either carry the op's
payload or ``{"error": <message>}``, which the client surfaces as
:class:`~repro.errors.StorageError`.  Since protocol version 2
(:data:`PROTOCOL_VERSION`) a request may carry an ``"id"`` that its
response echoes, which is what lets :class:`PipelinedConnection` keep
many requests in flight on one connection and complete them out of
order; id-less requests keep the v1 strict request/response behavior,
so old and new peers interoperate in both directions.  Ops:

``hello``
    Handshake.  The server answers with its orientation (``kind``), the
    shard layout of the snapshot it serves (``shard_starts``) and the
    shard indices it *owns* (its slice of the deployment's ownership
    map) — everything the client-side scheduler needs to route buckets —
    plus the protocol ``version`` it speaks, which gates client-side
    pipelining.
``distances``
    ``{"pairs": [[s, t], ...]}`` → ``{"distances": [...]}``, one batched
    engine call per frame.  This is the unit the shard scheduler
    amortizes: one frame per shard-pair bucket.
``stats``
    Lightweight introspection (queries served, engine name, owned shards).
``ping``
    Liveness probe; echoes ``{"ok": true}``.  The remote engine's
    heartbeat thread rides this op to mark workers suspect/dead/recovered.
``membership`` / ``join`` / ``leave``
    Cluster membership (:mod:`repro.serving.membership`): read a worker's
    versioned shard→owners map, announce a worker (re)joining with an
    ownership slice, or remove one (a worker told to leave *itself*
    drains: in-flight buckets complete, new non-owned buckets are
    rejected with the ``not_owner`` error kind).
``shutdown``
    Asks the server to stop accepting connections and exit its accept
    loop (used by tests and the benchmark harness for clean teardown).

Framing failures (oversized frames, EOF mid-frame) raise
:class:`WireError`; a clean EOF between frames returns ``None`` from
:func:`recv_frame` so servers can tell "client hung up" from "stream
corrupted".

**Timeouts**: with ``REPRO_WIRE_TIMEOUT_S`` set (seconds, fractional
allowed; unset/empty = off for compatibility), every send/recv on a
socket that :func:`apply_timeout` has configured raises
:class:`WireTimeout` instead of blocking forever — a hung or paused
worker cannot stall a client thread indefinitely, and the client treats
a timeout like a dead connection (fail over to the next replica).
:class:`WireTimeout.partial` distinguishes "timed out *mid-frame*"
(stream state unknown, drop the connection) from "timed out waiting for
a new frame" (idle; a server keeps the connection).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from queue import Queue
from typing import Deque, Dict, Optional

from repro.analysis.lockcheck import create_lock

from repro.envvars import read_env_float
from repro.errors import ReproError

__all__ = [
    "WireError",
    "WireTimeout",
    "WIRE_TIMEOUT_ENV",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "configured_timeout",
    "apply_timeout",
    "send_frame",
    "recv_frame",
    "request",
    "PipelinedConnection",
]

#: Refuse to (de)serialize frames larger than this: a corrupt or hostile
#: length prefix must not make a worker allocate gigabytes.  64 MiB is
#: roomy — about two million query pairs per frame.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Protocol generation, announced in the ``hello`` exchange (both ways).
#: Version 1 (PR 5-6) is strictly request/response: one frame in flight
#: per connection, responses in request order, no ``id`` field.  Version
#: 2 adds **request ids**: any request may carry ``"id": <int>`` and its
#: response echoes the same ``id``, so multiple requests can be in
#: flight on one connection and complete out of order.  Compatibility is
#: two-way: a v2 server answers id-less requests exactly as before (no
#: ``id`` echoed, strict request order per request), and a v2 client
#: talking to a peer that did not announce ``version >= 2`` caps itself
#: at one frame in flight and matches responses FIFO.
PROTOCOL_VERSION = 2

_LEN = struct.Struct("!I")


#: Environment knob for per-connection send/recv timeouts (seconds).
#: Unset or empty = no timeout (the pre-timeout blocking behavior).
WIRE_TIMEOUT_ENV = "REPRO_WIRE_TIMEOUT_S"


class WireError(ReproError):
    """The length-prefixed stream was violated (truncation, oversize)."""


class WireTimeout(WireError):
    """A send/recv exceeded the configured wire timeout.

    ``partial`` is True when the timeout hit *mid-frame* (or mid-send) —
    the stream state is unknown and the connection must be dropped; False
    means the peer simply had nothing to say yet (idle between frames).
    """

    def __init__(self, message: str, partial: bool = True) -> None:
        super().__init__(message)
        self.partial = partial


def configured_timeout() -> Optional[float]:
    """The :data:`WIRE_TIMEOUT_ENV` timeout, validated; None when off.

    Raises ``ValueError`` naming the variable on non-numeric, negative or
    non-finite values instead of silently disabling the timeout; ``0``
    explicitly disables it.
    """
    value = read_env_float(WIRE_TIMEOUT_ENV, what="wire timeout in seconds")
    return value if value else None


def apply_timeout(
    sock: socket.socket, timeout: Optional[float] = None
) -> Optional[float]:
    """Arm ``sock`` with the explicit or env-configured wire timeout.

    Returns the applied timeout (None = left blocking).  Call once per
    connection; every subsequent :func:`send_frame`/:func:`recv_frame`
    on the socket then raises :class:`WireTimeout` instead of hanging.
    """
    if timeout is None:
        timeout = configured_timeout()
    if timeout is not None:
        sock.settimeout(timeout)
    return timeout


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialize ``payload`` and send it as one length-prefixed frame."""
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise WireError(
            f"refusing to send a {len(blob)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    try:
        sock.sendall(_LEN.pack(len(blob)) + blob)
    except socket.timeout:
        raise WireTimeout(
            f"send of a {len(blob)}-byte frame timed out", partial=True
        ) from None
    except OSError as exc:
        raise WireError(f"send failed: {exc}") from None


def _recv_exact(
    sock: socket.socket, size: int, mid_frame: bool = False
) -> Optional[bytes]:
    """``size`` bytes from ``sock``; None on clean EOF at a frame edge."""
    chunks = []
    got = 0
    while got < size:
        try:
            chunk = sock.recv(min(size - got, 1 << 20))
        except socket.timeout:
            raise WireTimeout(
                f"receive timed out ({got} of {size} bytes)",
                partial=mid_frame or got > 0,
            ) from None
        except OSError as exc:
            raise WireError(f"receive failed: {exc}") from None
        if not chunk:
            if got == 0:
                return None
            raise WireError(
                f"connection closed mid-frame ({got} of {size} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; returns its payload, or None on clean EOF."""
    prefix = _recv_exact(sock, _LEN.size)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    blob = _recv_exact(sock, length, mid_frame=True)
    if blob is None:
        raise WireError("connection closed before the announced frame")
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame payload ({exc})") from None
    if not isinstance(payload, dict):
        raise WireError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def request(sock: socket.socket, payload: dict) -> dict:
    """One round trip: send ``payload``, receive and return the response.

    Raises :class:`WireError` if the server hangs up instead of
    answering; server-reported ``{"error": ...}`` responses are returned
    as-is for the caller to interpret (the client engine raises them as
    :class:`~repro.errors.StorageError`).
    """
    send_frame(sock, payload)
    response = recv_frame(sock)
    if response is None:
        raise WireError(
            f"server closed the connection answering {payload.get('op')!r}"
        )
    return response


class PipelinedConnection:
    """Many requests in flight on one socket, completing out of order.

    The protocol-v2 client transport: a dedicated **writer** thread
    drains a send queue and a dedicated **reader** thread matches
    response frames back to their
    :class:`~concurrent.futures.Future` by the echoed request ``id``
    (FIFO when a v1 peer echoes no id).  :meth:`submit` is the async
    seam — it enqueues and returns immediately — and :meth:`request` is
    the blocking convenience over it, so many caller threads can share
    one connection without ever holding a lock across a round trip.

    **Backpressure** is a bounded in-flight window (``max_in_flight``):
    :meth:`submit` blocks while the window is full, so a slow or
    overloaded server propagates pressure to the callers instead of
    growing an unbounded client-side queue.  ``pipelined=False`` (a v1
    peer) shrinks the window to one frame, which degenerates to the old
    strict request/response behavior.

    **Failure** is fail-fast and total: any wire error, EOF, or an idle
    timeout *while requests are pending* poisons the connection — every
    in-flight and still-queued future fails with the same
    :class:`WireError`, and subsequent submits raise immediately.  (An
    idle timeout with *nothing* pending is just a quiet peer; the reader
    keeps waiting.)  The owner reconnects by building a fresh instance.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_in_flight: int = 32,
        pipelined: bool = True,
    ) -> None:
        if max_in_flight < 1:
            raise WireError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self._sock = sock
        self.pipelined = bool(pipelined)
        self.max_in_flight = max_in_flight if self.pipelined else 1
        self._window = threading.Semaphore(self.max_in_flight)
        self._send_q: "Queue[Optional[dict]]" = Queue()
        self._pending: Dict[int, Future] = {}
        self._order: Deque[int] = deque()  # FIFO fallback for id-less peers
        self._next_id = 0
        self._lock = create_lock("wire.pipeline")
        self._closed = threading.Event()
        self._writer = threading.Thread(
            target=self._write_loop, name="repro-wire-writer", daemon=True
        )
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-wire-reader", daemon=True
        )
        self._writer.start()
        self._reader.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet completed."""
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> Future:
        """Enqueue one request; the returned future completes with the
        response payload (the echoed ``id`` stripped) or a
        :class:`WireError`.  Blocks while the in-flight window is full.
        """
        while not self._window.acquire(timeout=0.1):
            if self._closed.is_set():
                raise WireError("connection is closed")
        future: Future = Future()
        with self._lock:
            # The closed check shares the lock with _fail_all's pending
            # sweep, so a submission either lands before the sweep (and
            # is failed by it) or observes closed here — never neither.
            if self._closed.is_set():
                self._window.release()
                raise WireError("connection is closed")
            rid = self._next_id
            self._next_id += 1
            self._pending[rid] = future
            self._order.append(rid)
        self._send_q.put(dict(payload, id=rid))
        return future

    def request(self, payload: dict, timeout: Optional[float] = None) -> dict:
        """Blocking round trip through the pipeline.

        A ``timeout`` (seconds) bounds the wait; expiring poisons the
        connection (the response stream can no longer be trusted to
        line up) and raises :class:`WireTimeout`.
        """
        future = self.submit(payload)
        try:
            return future.result(timeout=timeout)
        except FutureTimeout:
            self._fail_all(
                WireTimeout(
                    f"request {payload.get('op')!r} timed out", partial=True
                )
            )
            raise WireTimeout(
                f"request {payload.get('op')!r} timed out", partial=True
            ) from None

    # ------------------------------------------------------------------
    # Pump loops
    # ------------------------------------------------------------------
    def _write_loop(self) -> None:
        while True:
            payload = self._send_q.get()
            if payload is None or self._closed.is_set():
                return
            try:
                send_frame(self._sock, payload)
            except (WireError, OSError) as exc:
                self._fail_all(
                    exc if isinstance(exc, WireError) else WireError(str(exc))
                )
                return

    def _read_loop(self) -> None:
        try:
            while not self._closed.is_set():
                # Sampled before blocking in recv: an idle timeout is only
                # fatal when a response was already owed when the wait
                # started (a request registered *during* the wait has not
                # yet been owed a full timeout window).
                owed = bool(self._pending)
                try:
                    frame = recv_frame(self._sock)
                except WireTimeout as exc:
                    if not exc.partial and not owed:
                        continue  # idle with nothing owed: keep waiting
                    self._fail_all(exc)
                    return
                except (WireError, OSError) as exc:
                    self._fail_all(
                        exc
                        if isinstance(exc, WireError)
                        else WireError(str(exc))
                    )
                    return
                if frame is None:
                    self._fail_all(
                        WireError("peer closed the pipelined connection")
                    )
                    return
                rid = frame.pop("id", None)
                with self._lock:
                    if rid is None:
                        key = self._order[0] if self._order else None
                    else:
                        key = rid
                    future = self._pending.pop(key, None)
                    if future is not None:
                        try:
                            self._order.remove(key)
                        except ValueError:
                            pass
                if future is None:
                    self._fail_all(
                        WireError(
                            f"peer answered unknown request id {rid!r}"
                        )
                    )
                    return
                self._window.release()
                future.set_result(frame)
        finally:
            if not self._closed.is_set():
                self._fail_all(WireError("pipelined reader exited"))

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _fail_all(self, exc: WireError) -> None:
        """Poison the connection: fail every outstanding future with ``exc``."""
        if self._closed.is_set():
            return
        self._closed.set()
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._order.clear()
        for future in pending:
            if not future.done():
                future.set_exception(exc)
            self._window.release()
        self._send_q.put(None)  # unblock the writer
        try:
            self._sock.close()  # unblock the reader
        except OSError:
            pass

    def close(self) -> None:
        """Fail outstanding requests and release the socket and threads."""
        self._fail_all(WireError("connection closed locally"))
        me = threading.current_thread()
        for thread in (self._writer, self._reader):
            if thread is not me and thread.is_alive():
                thread.join(timeout=5.0)
