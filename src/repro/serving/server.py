"""Localhost/network shard server: one worker of a remote serving fleet.

A :class:`ShardServer` wraps a loaded index (any engine; the sharded
snapshot engine is the point of the exercise) behind the length-prefixed
protocol of :mod:`repro.serving.wire`.  A fleet deployment runs one
server per worker over the *same* sharded snapshot directory, each
claiming a slice of the shard ownership map (``owned``): the sharded
engine maps shard files lazily, so a worker that is only routed its own
buckets faults in only its own shards — the fleet's combined page
working set covers an index no single worker could hold, while the small
replicated ``shared.snap`` (``G_k`` + all-pairs table) stays in the
shared page cache.

**Pipelining + admission control** (protocol v2): each connection's
reader thread answers control ops (``hello``, ``ping``, ``stats``,
membership) inline, but hands ``distances`` searches to a bounded
**admission executor** shared by every connection — ``max_concurrency``
worker threads over a queue capped at ``max_queue``.  Requests carry
ids, so one connection can have many searches in flight and receive the
answers out of order while control traffic stays responsive.  When the
queue is full the request is rejected immediately with the structured
``overloaded`` error kind — a client backs off and retries instead of
timing out blind.  A client that disconnects mid-request has its queued
searches cancelled and its in-flight answers discarded; nothing leaks.

Engine access stays serialized (the packed engines' search-buffer pool
is single-search-at-a-time), so ``max_concurrency > 1`` overlaps the
request decode / response encode / socket I/O of one search with the
engine stage of another rather than racing the engine itself.  Fleet
parallelism comes from running more workers.

Ownership is by default a *routing contract*, not a hard wall: a
mis-routed pair is still answered correctly (the engine maps the foreign
shard on demand), it just costs locality.  ``strict=True`` turns the
contract into a wall — a bucket whose pairs touch none of this worker's
owned shards is rejected with the structured ``not_owner`` error kind,
which clients treat as a membership-staleness signal (refresh the
ownership map, reroute).  The ``hello`` handshake reports the shard
starts, owned indices and vertex-id ranges, the membership **epoch**,
and the protocol ``version`` so the client-side scheduler can honour
(and version) the contract and pipeline safely.

Membership is runtime state (:mod:`repro.serving.membership`): the
``join``/``leave`` ops update this worker's view of the fleet and bump
the epoch.  A worker told to *leave itself* **drains** — in-flight
requests complete, its ownership empties, and every new non-owned bucket
is answered ``not_owner`` (even outside strict mode) so clients move to
the new owner.  ``repro rebalance`` drives exactly that sequence.

Failure behavior: per-request errors (uncovered vertices, malformed
frames' payloads) are answered as ``{"error": ...}`` and the connection
survives; protocol violations (garbage framing) drop the connection;
an idle wire timeout (``REPRO_WIRE_TIMEOUT_S``) keeps the connection;
``shutdown`` stops the accept loop, closes the listening socket and
reaps the handler threads and the executor, so a supervisor sees a
clean exit.
"""

from __future__ import annotations

import socket
import threading
from bisect import bisect_right
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from repro.analysis.lockcheck import create_lock
from repro.errors import QueryError, ReproError, StorageError
from repro.serving import wire
from repro.serving.membership import MembershipMap

__all__ = ["ShardServer", "load_serving_index"]


def load_serving_index(path: str, engine: str = "sharded"):
    """Load a stream index or snapshot with the right loader for its kind."""
    from repro.core.serialization import (
        is_directed_artifact,
        load_directed_index,
        load_index,
    )

    if is_directed_artifact(path):
        return load_directed_index(path, engine=engine)
    return load_index(path, engine=engine)


class _Conn:
    """Per-connection serving state: the socket, its send lock, depth."""

    __slots__ = ("sock", "send_lock", "closed", "in_flight", "peer")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.send_lock = create_lock("shard-server.conn-send")
        self.closed = False
        #: Admitted-but-unanswered ``distances`` requests (serving depth).
        self.in_flight = 0
        try:
            host, port = sock.getpeername()[:2]
            self.peer = f"{host}:{port}"
        except OSError:  # pragma: no cover - peer gone before we looked
            self.peer = "?"


class _AdmissionExecutor:
    """The admission-control stage: a bounded queue in front of searches.

    ``workers`` threads drain a deque capped at ``max_queue`` waiting
    entries.  :meth:`submit` never blocks — a full queue is an immediate
    ``False`` (the server answers ``overloaded``), which is the whole
    point: under overload clients get a structured signal *now* instead
    of a timeout later, and the queue depth bounds worst-case latency.
    :meth:`cancel` drops queued work for a connection that went away.
    """

    def __init__(self, workers: int, max_queue: int) -> None:
        if workers < 1:
            raise StorageError(
                f"admission executor needs >= 1 worker thread, got {workers}"
            )
        if max_queue < 1:
            raise StorageError(
                f"admission queue capacity must be >= 1, got {max_queue}"
            )
        self.workers = workers
        self.max_queue = max_queue
        self._tasks: Deque[Tuple[_Conn, Callable[[], None]]] = deque()
        self._cv = threading.Condition()
        self._threads: List[threading.Thread] = []
        self._stop = False
        self.in_flight = 0
        self.rejected = 0
        self.cancelled = 0
        self.executed = 0

    def start(self) -> None:
        if self._threads:
            return
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._run, name=f"repro-search-{i}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def submit(self, state: _Conn, task: Callable[[], None]) -> bool:
        """Queue one search; False = at capacity (answer ``overloaded``)."""
        with self._cv:
            if self._stop:
                return False
            if len(self._tasks) >= self.max_queue:
                self.rejected += 1
                return False
            self._tasks.append((state, task))
            self._cv.notify()
            return True

    def cancel(self, state: _Conn) -> int:
        """Drop queued (not yet running) work for a dead connection."""
        with self._cv:
            kept = [(s, t) for s, t in self._tasks if s is not state]
            dropped = len(self._tasks) - len(kept)
            if dropped:
                self._tasks = deque(kept)
                self.cancelled += dropped
            return dropped

    def depth(self) -> dict:
        """The serving-depth counters the ``stats`` op publishes."""
        with self._cv:
            return {
                "in_flight": self.in_flight,
                "queued": len(self._tasks),
                "rejected": self.rejected,
                "cancelled": self.cancelled,
                "executed": self.executed,
                "max_concurrency": self.workers,
                "max_queue": self.max_queue,
            }

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._tasks and not self._stop:
                    self._cv.wait()
                if self._stop:
                    return
                _state, task = self._tasks.popleft()
                self.in_flight += 1
            try:
                task()
            finally:
                with self._cv:
                    self.in_flight -= 1
                    self.executed += 1
                    self._cv.notify()

    def shutdown(self) -> None:
        """Stop the worker threads; queued-but-unstarted work is dropped."""
        with self._cv:
            self._stop = True
            self.cancelled += len(self._tasks)
            self._tasks.clear()
            self._cv.notify_all()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)
        self._threads = []


class ShardServer:
    """Serves one index over the wire protocol, owning a shard slice.

    ``owned`` lists the shard indices this worker claims (``None`` =
    every shard — the single-worker deployment).  ``port=0`` lets the OS
    pick a free port; read :attr:`address` after :meth:`start`.
    ``strict`` enforces ownership (reject non-owned buckets with the
    ``not_owner`` error kind); ``epoch`` seeds the membership epoch a
    supervisor may have assigned this worker.  ``max_concurrency`` and
    ``max_queue`` shape the admission executor (see the module
    docstring): how many searches may run at once, and how many may wait
    before new ones are rejected ``overloaded``.

    Usable as a context manager; :meth:`start` spawns a daemon accept
    thread (tests, in-process fleets), :meth:`serve_forever` runs the
    accept loop in the calling thread (the ``repro serve`` CLI).
    """

    def __init__(
        self,
        index,
        host: str = "127.0.0.1",
        port: int = 0,
        owned: Optional[Sequence[int]] = None,
        strict: bool = False,
        epoch: int = 0,
        max_concurrency: int = 1,
        max_queue: int = 128,
        cache_entries: Optional[int] = None,
        cache_ttl_s: Optional[float] = None,
    ) -> None:
        from repro.core.directed import DirectedISLabelIndex
        from repro.serving.scheduler import shard_starts_of

        self.index = index
        self.kind = (
            "directed" if isinstance(index, DirectedISLabelIndex) else "undirected"
        )
        # Optional server-side hot-pair tier: a read-through
        # DistanceCache in front of the engine stage, so repeated pairs
        # skip both the query lock contention and the label merge.  The
        # snapshot an index serves is read-only, so staleness is purely
        # TTL-governed (cache_ttl_s); counters surface via the ``stats``
        # wire op.
        self.cache = None
        if cache_entries is not None or cache_ttl_s is not None:
            from repro.caching.cache import DistanceCache

            self.cache = DistanceCache(
                max_entries=cache_entries or 65536,
                ttl_s=cache_ttl_s,
                directed=(self.kind == "directed"),
            )
        self.shard_starts: List[int] = list(shard_starts_of(index))
        num_shards = max(len(self.shard_starts), 1)
        if owned is None:
            self.owned = list(range(num_shards))
        else:
            self.owned = sorted({int(i) for i in owned})
            bad = [i for i in self.owned if not 0 <= i < num_shards]
            if bad:
                raise StorageError(
                    f"owned shard indices {bad} out of range for "
                    f"{num_shards} shards"
                )
        self.strict = bool(strict)
        self.epoch = int(epoch)
        self.draining = False
        #: This worker's fleet identity and membership view; both exist
        #: once the listening address is known (after :meth:`bind`).
        self.worker_id: Optional[str] = None
        self.membership: Optional[MembershipMap] = None
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._states: List[_Conn] = []
        self._lock = create_lock("shard-server.state")
        # The engine stage stays one-search-at-a-time: the packed
        # engines' search buffer pool is documented single-search, and
        # the lazily materialized label caches are plain dicts.  The
        # executor pipelines everything *around* the engine (decode,
        # encode, socket I/O); fleet parallelism comes from more workers.
        self._query_lock = create_lock("shard-server.query")
        self._executor = _AdmissionExecutor(max_concurrency, max_queue)
        self.max_concurrency = self._executor.workers
        self.max_queue = self._executor.max_queue
        self.queries_served = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self._sock is None:
            raise StorageError("server is not started")
        return self._sock.getsockname()[:2]

    def bind(self) -> None:
        """Bind the listening socket without serving (address becomes readable)."""
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(64)
        sock.settimeout(0.2)  # lets the accept loop notice a shutdown
        self._sock = sock
        host, port = sock.getsockname()[:2]
        self.worker_id = f"{host}:{port}"
        self.membership = MembershipMap(epoch=self.epoch)
        self.membership.set(self.worker_id, self.owned)
        self._executor.start()

    def start(self) -> Tuple[str, int]:
        """Bind and serve from a background daemon thread; returns address."""
        self.bind()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-shard-server", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Bind (if needed) and run the accept loop in this thread."""
        self.bind()
        self._accept_loop()

    def shutdown(self) -> None:
        """Stop accepting, close every socket, join handlers and executor.

        Live client connections are closed too — an idle client blocked
        in a handler's ``recv`` would otherwise pin its thread (and the
        socket) until the process exits.
        """
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        if self._accept_thread is not None and self._accept_thread.is_alive():
            self._accept_thread.join(timeout=5.0)
        self._accept_thread = None
        with self._lock:
            conns = list(self._conns)
            handlers = list(self._handlers)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in handlers:
            thread.join(timeout=5.0)
        self._executor.shutdown()

    def __enter__(self) -> "ShardServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Accept / request loops
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            sock = self._sock
            if sock is None:
                break
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # socket closed under us by shutdown()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._lock:
                self._handlers.append(thread)
                self._conns.append(conn)
            thread.start()

    def _send_response(
        self, state: _Conn, response: dict, rid: Optional[int]
    ) -> bool:
        """Send one response frame, echoing the request id when present.

        Sends are serialized per connection (executor threads and the
        reader thread interleave their frames, never their bytes).  A
        failed send marks the connection closed; pending work for it is
        discarded rather than retried — the client is gone.
        """
        if rid is not None:
            response = dict(response, id=rid)
        with state.send_lock:
            if state.closed:
                return False
            try:
                # Deliberate: the send lock serializes exactly one frame
                # per holder so concurrent responses don't interleave.
                wire.send_frame(state.sock, response)  # repro-lint: disable=lock-discipline
                return True
            except (wire.WireError, OSError):
                state.closed = True
                return False

    def _serve_connection(self, conn: socket.socket) -> None:
        state = _Conn(conn)
        with self._lock:
            self._states.append(state)
        try:
            wire.apply_timeout(conn)
        except ValueError:
            pass  # a malformed env knob must not kill the handler
        try:
            while not self._stop.is_set():
                try:
                    payload = wire.recv_frame(conn)
                except wire.WireTimeout as exc:
                    if exc.partial:
                        break  # mid-frame: stream state unknown, drop
                    continue  # idle client; keep the connection
                except wire.WireError:
                    break  # corrupted stream: drop the connection
                if payload is None:
                    break  # client hung up cleanly
                rid = payload.get("id")
                if payload.get("op") == "distances":
                    response = self._admit_distances(state, rid, payload)
                    if response is None:
                        continue  # admitted; the executor answers it
                    stop = False
                else:
                    response, stop = self._handle(payload)
                if not self._send_response(state, response, rid):
                    break
                if stop:
                    self._stop.set()
                    # Unblock the accept loop promptly (it would otherwise
                    # only notice at the next accept timeout tick).
                    sock = self._sock
                    if sock is not None:
                        try:
                            sock.close()
                        except OSError:
                            pass
                        self._sock = None
                    break
        finally:
            # Disconnect cleanup: nothing this connection queued may
            # outlive it.  Queued searches are cancelled; an in-flight
            # search discards its answer at the closed-send check.
            state.closed = True
            self._executor.cancel(state)
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                me = threading.current_thread()
                if me in self._handlers:
                    self._handlers.remove(me)
                if conn in self._conns:
                    self._conns.remove(conn)
                if state in self._states:
                    self._states.remove(state)

    # ------------------------------------------------------------------
    # Ownership helpers
    # ------------------------------------------------------------------
    def _shard_of(self, v: int) -> int:
        if not self.shard_starts:
            return 0
        return max(bisect_right(self.shard_starts, v) - 1, 0)

    def owned_ranges(self, owned: Optional[Sequence[int]] = None) -> List[List]:
        """``[[lo, hi], ...]`` vertex-id ranges of the owned shards.

        ``hi`` is exclusive; the last shard's ``hi`` is ``None`` (open
        ended).  What ``hello`` publishes so a client can route without
        re-deriving the layout.
        """
        if not self.shard_starts:
            return []
        if owned is None:
            owned = self.owned
        starts = self.shard_starts
        out: List[List] = []
        for i in sorted(owned):
            hi = starts[i + 1] if i + 1 < len(starts) else None
            out.append([starts[i], hi])
        return out

    def update_owned(self, owned: Sequence[int], epoch: Optional[int] = None) -> None:
        """Replace this worker's owned slice (rebalancing); bumps the epoch."""
        with self._lock:
            self.owned = sorted({int(i) for i in owned})
            self.draining = False
            if self.membership is not None and self.worker_id is not None:
                self.epoch = self.membership.join(self.worker_id, self.owned, epoch)
            elif epoch is not None:
                self.epoch = max(self.epoch + 1, int(epoch))

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _reject_not_owner(self, pairs) -> Optional[dict]:
        """The ``not_owner`` rejection for a misrouted bucket, or None.

        A bucket is *owned* when any pair's source or target shard is in
        this worker's owned set (source- and target-side owners are both
        legitimate routing choices).  Applies in strict mode and while
        draining; unsharded snapshots have one implicit shard everyone
        owns.
        """
        with self._lock:
            strict = self.strict or self.draining
            owned = set(self.owned)
            epoch = self.epoch
        if not strict or not self.shard_starts or not pairs:
            return None
        if any(
            self._shard_of(s) in owned or self._shard_of(t) in owned
            for s, t in pairs
        ):
            return None
        buckets = sorted({(self._shard_of(s), self._shard_of(t)) for s, t in pairs})
        return {
            "error": (
                f"worker {self.worker_id} does not own bucket(s) "
                f"{buckets} (owned: {sorted(owned)}, epoch {epoch})"
            ),
            "error_kind": "not_owner",
            "epoch": epoch,
            "owned": sorted(owned),
            "draining": self.draining,
        }

    def _admit_distances(
        self, state: _Conn, rid: Optional[int], payload: dict
    ) -> Optional[dict]:
        """Validate, ownership-check and admit one ``distances`` request.

        Returns a response to send inline (malformed / ``not_owner`` /
        ``overloaded``), or ``None`` when the search was admitted — the
        executor sends its answer whenever it completes, possibly after
        later requests on the same connection (that is the pipelining).
        """
        with self._lock:
            self.requests_served += 1
        try:
            pairs = [(int(s), int(t)) for s, t in payload.get("pairs", [])]
        except (TypeError, ValueError) as exc:
            return {"error": f"malformed request: {exc}", "error_kind": "query"}
        rejection = self._reject_not_owner(pairs)
        if rejection is not None:
            return rejection
        with self._lock:
            state.in_flight += 1
        if not self._executor.submit(
            state, lambda: self._search_task(state, rid, pairs)
        ):
            with self._lock:
                state.in_flight -= 1
            depth = self._executor.depth()
            return {
                "error": (
                    f"worker {self.worker_id} is overloaded: "
                    f"{depth['queued']} queued (cap {depth['max_queue']}), "
                    f"{depth['in_flight']} in flight — back off and retry"
                ),
                "error_kind": "overloaded",
                "queued": depth["queued"],
                "max_queue": depth["max_queue"],
            }
        return None

    def _search_task(self, state: _Conn, rid: Optional[int], pairs) -> None:
        """One admitted search: engine stage, then the (possibly late) send."""
        try:
            if state.closed:
                return  # client left while we were queued: nothing to answer
            try:
                if self.cache is not None:
                    # Hot-pair tier: only the misses take the query lock
                    # and reach the engine; hits are answered lock-free.
                    def engine_stage(misses):
                        with self._query_lock:
                            return self.index.distances(misses)

                    answers = self.cache.read_through(
                        [(int(s), int(t)) for s, t in pairs], engine_stage
                    )
                else:
                    with self._query_lock:
                        answers = self.index.distances(pairs)
            except ReproError as exc:
                kind = "query" if isinstance(exc, QueryError) else "storage"
                response = {"error": str(exc), "error_kind": kind}
            except (TypeError, ValueError) as exc:
                response = {
                    "error": f"malformed request: {exc}",
                    "error_kind": "query",
                }
            else:
                response = {"ok": True, "distances": list(answers)}
                with self._lock:
                    self.queries_served += len(pairs)
            self._send_response(state, response, rid)
        finally:
            with self._lock:
                state.in_flight -= 1

    def _handle(self, payload: dict) -> Tuple[dict, bool]:
        op = payload.get("op")
        with self._lock:  # handler threads are concurrent; += is not atomic
            self.requests_served += 1
        try:
            if op == "hello":
                with self._lock:
                    owned = list(self.owned)
                    epoch = self.epoch
                    draining = self.draining
                return (
                    {
                        "ok": True,
                        "version": wire.PROTOCOL_VERSION,
                        "kind": self.kind,
                        "engine": self.index.engine,
                        "shard_starts": self.shard_starts,
                        "owned": owned,
                        "owned_ranges": self.owned_ranges(owned),
                        "num_shards": max(len(self.shard_starts), 1),
                        "epoch": epoch,
                        "draining": draining,
                        "worker": self.worker_id,
                    },
                    False,
                )
            if op == "membership":
                with self._lock:
                    if self.membership is None:
                        return (
                            {"error": "server is not bound", "error_kind": "storage"},
                            False,
                        )
                    body = self.membership.to_wire()
                return {"ok": True, **body}, False
            if op == "join":
                worker = str(payload.get("worker") or "")
                if not worker:
                    return (
                        {"error": "join needs a worker id", "error_kind": "query"},
                        False,
                    )
                owned = [int(i) for i in payload.get("owned", [])]
                wire_epoch = payload.get("epoch")
                with self._lock:
                    self.epoch = self.membership.join(worker, owned, wire_epoch)
                    if worker == self.worker_id:
                        self.owned = sorted(set(owned))
                        self.draining = False
                    epoch = self.epoch
                return {"ok": True, "epoch": epoch}, False
            if op == "leave":
                worker = str(payload.get("worker") or "")
                if not worker:
                    return (
                        {"error": "leave needs a worker id", "error_kind": "query"},
                        False,
                    )
                with self._lock:
                    self.epoch = self.membership.leave(
                        worker, payload.get("epoch")
                    )
                    draining_self = worker == self.worker_id
                    if draining_self:
                        # Drain: in-flight requests complete (handlers are
                        # already past the ownership check), new non-owned
                        # buckets get the not_owner staleness signal.
                        self.owned = []
                        self.draining = True
                    epoch = self.epoch
                return {"ok": True, "epoch": epoch, "draining": draining_self}, False
            if op == "stats":
                with self._lock:
                    per_conn = [
                        {"peer": s.peer, "in_flight": s.in_flight}
                        for s in self._states
                    ]
                return (
                    {
                        "ok": True,
                        "engine": self.index.engine,
                        "owned": self.owned,
                        "epoch": self.epoch,
                        "draining": self.draining,
                        "queries_served": self.queries_served,
                        "requests_served": self.requests_served,
                        "depth": self._executor.depth(),
                        "connections": per_conn,
                        "cache": (
                            self.cache.stats() if self.cache is not None else None
                        ),
                    },
                    False,
                )
            if op == "ping":
                return {"ok": True}, False
            if op == "shutdown":
                return {"ok": True, "bye": True}, True
            return {"error": f"unknown op {op!r}", "error_kind": "query"}, False
        except ReproError as exc:
            # error_kind lets the client re-raise the right exception
            # class without parsing the human-readable message.
            kind = "query" if isinstance(exc, QueryError) else "storage"
            return {"error": str(exc), "error_kind": kind}, False
        except (TypeError, ValueError) as exc:
            return {"error": f"malformed request: {exc}", "error_kind": "query"}, False
