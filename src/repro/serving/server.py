"""Localhost/network shard server: one worker of a remote serving fleet.

A :class:`ShardServer` wraps a loaded index (any engine; the sharded
snapshot engine is the point of the exercise) behind the length-prefixed
protocol of :mod:`repro.serving.wire`.  A fleet deployment runs one
server per worker over the *same* sharded snapshot directory, each
claiming a slice of the shard ownership map (``owned``): the sharded
engine maps shard files lazily, so a worker that is only routed its own
buckets faults in only its own shards — the fleet's combined page
working set covers an index no single worker could hold, while the small
replicated ``shared.snap`` (``G_k`` + all-pairs table) stays in the
shared page cache.

Ownership is by default a *routing contract*, not a hard wall: a
mis-routed pair is still answered correctly (the engine maps the foreign
shard on demand), it just costs locality.  ``strict=True`` turns the
contract into a wall — a bucket whose pairs touch none of this worker's
owned shards is rejected with the structured ``not_owner`` error kind,
which clients treat as a membership-staleness signal (refresh the
ownership map, reroute).  The ``hello`` handshake reports the shard
starts, owned indices and vertex-id ranges, and the membership **epoch**
so the client-side scheduler can honour (and version) the contract.

Membership is runtime state (:mod:`repro.serving.membership`): the
``join``/``leave`` ops update this worker's view of the fleet and bump
the epoch.  A worker told to *leave itself* **drains** — in-flight
requests complete, its ownership empties, and every new non-owned bucket
is answered ``not_owner`` (even outside strict mode) so clients move to
the new owner.  ``repro rebalance`` drives exactly that sequence.

Failure behavior: per-request errors (uncovered vertices, malformed
frames' payloads) are answered as ``{"error": ...}`` and the connection
survives; protocol violations (garbage framing) drop the connection;
an idle wire timeout (``REPRO_WIRE_TIMEOUT_S``) keeps the connection;
``shutdown`` stops the accept loop, closes the listening socket and
reaps the handler threads, so a supervisor sees a clean exit.
"""

from __future__ import annotations

import socket
import threading
from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.errors import QueryError, ReproError, StorageError
from repro.serving import wire
from repro.serving.membership import MembershipMap

__all__ = ["ShardServer", "load_serving_index"]


def load_serving_index(path: str, engine: str = "sharded"):
    """Load a stream index or snapshot with the right loader for its kind."""
    from repro.core.serialization import (
        is_directed_artifact,
        load_directed_index,
        load_index,
    )

    if is_directed_artifact(path):
        return load_directed_index(path, engine=engine)
    return load_index(path, engine=engine)


class ShardServer:
    """Serves one index over the wire protocol, owning a shard slice.

    ``owned`` lists the shard indices this worker claims (``None`` =
    every shard — the single-worker deployment).  ``port=0`` lets the OS
    pick a free port; read :attr:`address` after :meth:`start`.
    ``strict`` enforces ownership (reject non-owned buckets with the
    ``not_owner`` error kind); ``epoch`` seeds the membership epoch a
    supervisor may have assigned this worker.

    Usable as a context manager; :meth:`start` spawns a daemon accept
    thread (tests, in-process fleets), :meth:`serve_forever` runs the
    accept loop in the calling thread (the ``repro serve`` CLI).
    """

    def __init__(
        self,
        index,
        host: str = "127.0.0.1",
        port: int = 0,
        owned: Optional[Sequence[int]] = None,
        strict: bool = False,
        epoch: int = 0,
    ) -> None:
        from repro.core.directed import DirectedISLabelIndex
        from repro.serving.scheduler import shard_starts_of

        self.index = index
        self.kind = (
            "directed" if isinstance(index, DirectedISLabelIndex) else "undirected"
        )
        self.shard_starts: List[int] = list(shard_starts_of(index))
        num_shards = max(len(self.shard_starts), 1)
        if owned is None:
            self.owned = list(range(num_shards))
        else:
            self.owned = sorted({int(i) for i in owned})
            bad = [i for i in self.owned if not 0 <= i < num_shards]
            if bad:
                raise StorageError(
                    f"owned shard indices {bad} out of range for "
                    f"{num_shards} shards"
                )
        self.strict = bool(strict)
        self.epoch = int(epoch)
        self.draining = False
        #: This worker's fleet identity and membership view; both exist
        #: once the listening address is known (after :meth:`bind`).
        self.worker_id: Optional[str] = None
        self.membership: Optional[MembershipMap] = None
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()
        # One query at a time per worker: the packed engines' search
        # buffer pool is documented single-search-at-a-time, and the
        # lazily materialized label caches are plain dicts.  Fleet
        # parallelism comes from running more workers, not from racing
        # handler threads through one engine.
        self._query_lock = threading.Lock()
        self.queries_served = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self._sock is None:
            raise StorageError("server is not started")
        return self._sock.getsockname()[:2]

    def bind(self) -> None:
        """Bind the listening socket without serving (address becomes readable)."""
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(64)
        sock.settimeout(0.2)  # lets the accept loop notice a shutdown
        self._sock = sock
        host, port = sock.getsockname()[:2]
        self.worker_id = f"{host}:{port}"
        self.membership = MembershipMap(epoch=self.epoch)
        self.membership.set(self.worker_id, self.owned)

    def start(self) -> Tuple[str, int]:
        """Bind and serve from a background daemon thread; returns address."""
        self.bind()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-shard-server", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Bind (if needed) and run the accept loop in this thread."""
        self.bind()
        self._accept_loop()

    def shutdown(self) -> None:
        """Stop accepting, close every socket, join the handler threads.

        Live client connections are closed too — an idle client blocked
        in a handler's ``recv`` would otherwise pin its thread (and the
        socket) until the process exits.
        """
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        if self._accept_thread is not None and self._accept_thread.is_alive():
            self._accept_thread.join(timeout=5.0)
        self._accept_thread = None
        with self._lock:
            conns = list(self._conns)
            handlers = list(self._handlers)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in handlers:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ShardServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Accept / request loops
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            sock = self._sock
            if sock is None:
                break
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # socket closed under us by shutdown()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._lock:
                self._handlers.append(thread)
                self._conns.append(conn)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            wire.apply_timeout(conn)
        except ValueError:
            pass  # a malformed env knob must not kill the handler
        try:
            while not self._stop.is_set():
                try:
                    payload = wire.recv_frame(conn)
                except wire.WireTimeout as exc:
                    if exc.partial:
                        break  # mid-frame: stream state unknown, drop
                    continue  # idle client; keep the connection
                except wire.WireError:
                    break  # corrupted stream: drop the connection
                if payload is None:
                    break  # client hung up cleanly
                response, stop = self._handle(payload)
                try:
                    wire.send_frame(conn, response)
                except OSError:
                    break
                if stop:
                    self._stop.set()
                    # Unblock the accept loop promptly (it would otherwise
                    # only notice at the next accept timeout tick).
                    sock = self._sock
                    if sock is not None:
                        try:
                            sock.close()
                        except OSError:
                            pass
                        self._sock = None
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                me = threading.current_thread()
                if me in self._handlers:
                    self._handlers.remove(me)
                if conn in self._conns:
                    self._conns.remove(conn)

    # ------------------------------------------------------------------
    # Ownership helpers
    # ------------------------------------------------------------------
    def _shard_of(self, v: int) -> int:
        if not self.shard_starts:
            return 0
        return max(bisect_right(self.shard_starts, v) - 1, 0)

    def owned_ranges(self, owned: Optional[Sequence[int]] = None) -> List[List]:
        """``[[lo, hi], ...]`` vertex-id ranges of the owned shards.

        ``hi`` is exclusive; the last shard's ``hi`` is ``None`` (open
        ended).  What ``hello`` publishes so a client can route without
        re-deriving the layout.
        """
        if not self.shard_starts:
            return []
        if owned is None:
            owned = self.owned
        starts = self.shard_starts
        out: List[List] = []
        for i in sorted(owned):
            hi = starts[i + 1] if i + 1 < len(starts) else None
            out.append([starts[i], hi])
        return out

    def update_owned(self, owned: Sequence[int], epoch: Optional[int] = None) -> None:
        """Replace this worker's owned slice (rebalancing); bumps the epoch."""
        with self._lock:
            self.owned = sorted({int(i) for i in owned})
            self.draining = False
            if self.membership is not None and self.worker_id is not None:
                self.epoch = self.membership.join(self.worker_id, self.owned, epoch)
            elif epoch is not None:
                self.epoch = max(self.epoch + 1, int(epoch))

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _reject_not_owner(self, pairs) -> Optional[dict]:
        """The ``not_owner`` rejection for a misrouted bucket, or None.

        A bucket is *owned* when any pair's source or target shard is in
        this worker's owned set (source- and target-side owners are both
        legitimate routing choices).  Applies in strict mode and while
        draining; unsharded snapshots have one implicit shard everyone
        owns.
        """
        with self._lock:
            strict = self.strict or self.draining
            owned = set(self.owned)
            epoch = self.epoch
        if not strict or not self.shard_starts or not pairs:
            return None
        if any(
            self._shard_of(s) in owned or self._shard_of(t) in owned
            for s, t in pairs
        ):
            return None
        buckets = sorted({(self._shard_of(s), self._shard_of(t)) for s, t in pairs})
        return {
            "error": (
                f"worker {self.worker_id} does not own bucket(s) "
                f"{buckets} (owned: {sorted(owned)}, epoch {epoch})"
            ),
            "error_kind": "not_owner",
            "epoch": epoch,
            "owned": sorted(owned),
            "draining": self.draining,
        }

    def _handle(self, payload: dict) -> Tuple[dict, bool]:
        op = payload.get("op")
        with self._lock:  # handler threads are concurrent; += is not atomic
            self.requests_served += 1
        try:
            if op == "hello":
                with self._lock:
                    owned = list(self.owned)
                    epoch = self.epoch
                    draining = self.draining
                return (
                    {
                        "ok": True,
                        "kind": self.kind,
                        "engine": self.index.engine,
                        "shard_starts": self.shard_starts,
                        "owned": owned,
                        "owned_ranges": self.owned_ranges(owned),
                        "num_shards": max(len(self.shard_starts), 1),
                        "epoch": epoch,
                        "draining": draining,
                        "worker": self.worker_id,
                    },
                    False,
                )
            if op == "distances":
                pairs = [(int(s), int(t)) for s, t in payload.get("pairs", [])]
                rejection = self._reject_not_owner(pairs)
                if rejection is not None:
                    return rejection, False
                with self._query_lock:
                    answers = self.index.distances(pairs)
                with self._lock:
                    self.queries_served += len(pairs)
                return {"ok": True, "distances": list(answers)}, False
            if op == "membership":
                with self._lock:
                    if self.membership is None:
                        return (
                            {"error": "server is not bound", "error_kind": "storage"},
                            False,
                        )
                    body = self.membership.to_wire()
                return {"ok": True, **body}, False
            if op == "join":
                worker = str(payload.get("worker") or "")
                if not worker:
                    return (
                        {"error": "join needs a worker id", "error_kind": "query"},
                        False,
                    )
                owned = [int(i) for i in payload.get("owned", [])]
                wire_epoch = payload.get("epoch")
                with self._lock:
                    self.epoch = self.membership.join(worker, owned, wire_epoch)
                    if worker == self.worker_id:
                        self.owned = sorted(set(owned))
                        self.draining = False
                    epoch = self.epoch
                return {"ok": True, "epoch": epoch}, False
            if op == "leave":
                worker = str(payload.get("worker") or "")
                if not worker:
                    return (
                        {"error": "leave needs a worker id", "error_kind": "query"},
                        False,
                    )
                with self._lock:
                    self.epoch = self.membership.leave(
                        worker, payload.get("epoch")
                    )
                    draining_self = worker == self.worker_id
                    if draining_self:
                        # Drain: in-flight requests complete (handlers are
                        # already past the ownership check), new non-owned
                        # buckets get the not_owner staleness signal.
                        self.owned = []
                        self.draining = True
                    epoch = self.epoch
                return {"ok": True, "epoch": epoch, "draining": draining_self}, False
            if op == "stats":
                return (
                    {
                        "ok": True,
                        "engine": self.index.engine,
                        "owned": self.owned,
                        "epoch": self.epoch,
                        "draining": self.draining,
                        "queries_served": self.queries_served,
                        "requests_served": self.requests_served,
                    },
                    False,
                )
            if op == "ping":
                return {"ok": True}, False
            if op == "shutdown":
                return {"ok": True, "bye": True}, True
            return {"error": f"unknown op {op!r}", "error_kind": "query"}, False
        except ReproError as exc:
            # error_kind lets the client re-raise the right exception
            # class without parsing the human-readable message.
            kind = "query" if isinstance(exc, QueryError) else "storage"
            return {"error": str(exc), "error_kind": kind}, False
        except (TypeError, ValueError) as exc:
            return {"error": f"malformed request: {exc}", "error_kind": "query"}, False
