"""Shard-aware query scheduling and remote (network) shard serving.

The serving subsystem turns the on-disk sharding of
:mod:`repro.core.snapshot` into a multi-process architecture:

* :mod:`repro.serving.scheduler` — :class:`ShardScheduler` buckets a
  query stream by owning shard pair and dispatches each bucket as one
  batched ``distances()`` call (policy knobs: max bucket size, max
  latency);
* :mod:`repro.serving.wire` — the length-prefixed JSON frame protocol;
* :mod:`repro.serving.server` — :class:`ShardServer`, one fleet worker
  serving its owned shard slice over the wire (``repro serve``);
* :mod:`repro.serving.remote` — the ``"remote"`` query engine (both
  orientations, registered through the ordinary engine registry), which
  routes scheduled buckets to the workers owning them.

Importing this package registers the remote engine.
:mod:`repro.serving.server` is intentionally *not* imported here — it
pulls in the serialization layer, which itself imports this package to
perform the registration.
"""

from repro.serving.scheduler import (
    SchedulerPolicy,
    ShardScheduler,
    assign_shards,
    shard_starts_of,
)
from repro.serving.remote import (
    REMOTE_ADDRS_ENV,
    DirectedRemoteEngine,
    RemoteEngine,
    parse_addresses,
)
from repro.serving.wire import WireError, recv_frame, request, send_frame

__all__ = [
    "SchedulerPolicy",
    "ShardScheduler",
    "assign_shards",
    "shard_starts_of",
    "RemoteEngine",
    "DirectedRemoteEngine",
    "REMOTE_ADDRS_ENV",
    "parse_addresses",
    "WireError",
    "send_frame",
    "recv_frame",
    "request",
]
