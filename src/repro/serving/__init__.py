"""Shard-aware query scheduling and remote (network) shard serving.

The serving subsystem turns the on-disk sharding of
:mod:`repro.core.snapshot` into a multi-process architecture:

* :mod:`repro.serving.scheduler` — :class:`ShardScheduler` buckets a
  query stream by owning shard pair and dispatches each bucket as one
  batched ``distances()`` call (policy knobs: max bucket size, max
  latency);
* :mod:`repro.serving.wire` — the length-prefixed JSON frame protocol
  (optional per-connection timeouts via ``REPRO_WIRE_TIMEOUT_S``), plus
  :class:`PipelinedConnection`, the request-id channel that keeps many
  requests in flight per socket (protocol v2);
* :mod:`repro.serving.membership` — versioned cluster membership
  (epoch-stamped shard→owners map), worker health states and the
  retry/backoff policy of replica-aware dispatch;
* :mod:`repro.serving.server` — :class:`ShardServer`, one fleet worker
  serving its owned shard slice over the wire (``repro serve``);
* :mod:`repro.serving.remote` — the ``"remote"`` query engine (both
  orientations, registered through the ordinary engine registry), which
  routes scheduled buckets to the workers owning them and fails over to
  surviving replicas on worker death;
* :mod:`repro.serving.chaos` — the failure-injection harness (fleet
  subprocess control + a frame-corrupting TCP proxy) behind the chaos
  property suite and the failover benchmark.

Importing this package registers the remote engine.
:mod:`repro.serving.server` is intentionally *not* imported here — it
pulls in the serialization layer, which itself imports this package to
perform the registration.
"""

from repro.serving.scheduler import (
    SchedulerPolicy,
    ShardScheduler,
    assign_shards,
    shard_starts_of,
)
from repro.serving.membership import (
    DEAD,
    LIVE,
    SUSPECT,
    MembershipMap,
    RetryPolicy,
    WorkerHealth,
)
from repro.serving.remote import (
    REMOTE_ADDRS_ENV,
    REMOTE_HEARTBEAT_ENV,
    DirectedRemoteEngine,
    RemoteEngine,
    parse_addresses,
)
from repro.serving.wire import (
    PROTOCOL_VERSION,
    WIRE_TIMEOUT_ENV,
    PipelinedConnection,
    WireError,
    WireTimeout,
    recv_frame,
    request,
    send_frame,
)

__all__ = [
    "SchedulerPolicy",
    "ShardScheduler",
    "assign_shards",
    "shard_starts_of",
    "MembershipMap",
    "WorkerHealth",
    "RetryPolicy",
    "LIVE",
    "SUSPECT",
    "DEAD",
    "RemoteEngine",
    "DirectedRemoteEngine",
    "REMOTE_ADDRS_ENV",
    "REMOTE_HEARTBEAT_ENV",
    "parse_addresses",
    "WireError",
    "WireTimeout",
    "WIRE_TIMEOUT_ENV",
    "PROTOCOL_VERSION",
    "PipelinedConnection",
    "send_frame",
    "recv_frame",
    "request",
]
