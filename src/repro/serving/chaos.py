"""Failure injection for shard fleets: process faults and wire faults.

The chaos property suite (``tests/serving/test_chaos.py``) and the
failover benchmark (``benchmarks/bench_failover.py``) both need the same
two instruments, so they live here as a reusable subsystem:

* :class:`FleetWorker` / :class:`FaultInjector` — real ``repro serve``
  subprocesses under a supervisor that can SIGKILL, SIGSTOP/SIGCONT and
  restart them (a restart rebinds the *same* port, so a client holding
  the old address can reconnect), plus teardown with reap assertions so
  no test run leaves orphaned serving processes behind.
* :class:`ChaosProxy` — a wire-level TCP proxy in front of one worker
  that can drop connections mid-frame, delay traffic, or truncate frames
  — the failure modes a real network injects below the protocol layer.

Everything here is transport-level: no test hooks inside the server or
the engine.  The system under chaos is exactly the production code path.
"""

from __future__ import annotations

import os
import queue
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.lockcheck import create_lock
from repro.errors import StorageError
from repro.serving import wire

__all__ = ["FleetWorker", "FaultInjector", "ChaosProxy"]

#: How long a worker may take to announce ``SERVING host:port``.
STARTUP_TIMEOUT_S = 60.0
#: How long teardown waits for a politely shut-down worker to exit.
REAP_TIMEOUT_S = 10.0


def _repo_pythonpath() -> str:
    """PYTHONPATH entry that makes ``python -m repro`` importable."""
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


class FleetWorker:
    """One ``repro serve`` subprocess under fault-injection control.

    The first :meth:`spawn` records the OS-assigned port; :meth:`restart`
    reuses it, so the worker's fleet identity (``host:port``) is stable
    across a kill/restart cycle — which is what lets a client treat
    "recovered" as the same membership entry coming back.
    """

    def __init__(
        self,
        snapshot: str,
        owned: Sequence[int],
        engine: str = "sharded",
        host: str = "127.0.0.1",
        strict: bool = False,
        extra_env: Optional[Dict[str, str]] = None,
        serve_args: Optional[Sequence[str]] = None,
    ) -> None:
        self.snapshot = os.fspath(snapshot)
        self.owned = sorted(int(i) for i in owned)
        self.engine = engine
        self.host = host
        self.strict = strict
        self.extra_env = dict(extra_env or {})
        #: Extra ``repro serve`` CLI flags, verbatim (admission knobs:
        #: ``--max-concurrency``, ``--max-queue``).
        self.serve_args = list(serve_args or [])
        self.port = 0  # pinned by the first spawn
        self.proc: Optional[subprocess.Popen] = None
        self.paused = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if not self.port:
            raise StorageError("worker was never spawned")
        return (self.host, self.port)

    @property
    def worker_id(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def spawn(self, epoch: int = 0) -> "FleetWorker":
        """Start (or restart) the serve subprocess and await its announce."""
        if self.alive:
            raise StorageError(f"worker {self.worker_id} is already running")
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            self.snapshot,
            "--engine",
            self.engine,
            "--host",
            self.host,
            "--port",
            str(self.port),
            "--owned",
            ",".join(map(str, self.owned)),
            "--epoch",
            str(epoch),
        ]
        if self.strict:
            cmd.append("--strict")
        cmd.extend(self.serve_args)
        # Deliberate whole-environment copy: worker subprocesses inherit
        # the test run's REPRO_* knobs (REPRO_LOCKCHECK included).
        env = dict(os.environ, PYTHONPATH=_repo_pythonpath())  # repro-lint: disable=env-discipline
        env.update(self.extra_env)
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, text=True, env=env
        )
        self.paused = False
        line = self._await_serving_line()
        host, _, port = line.split()[1].rpartition(":")
        self.host = host
        self.port = int(port)
        return self

    def _await_serving_line(self) -> str:
        """The ``SERVING host:port ...`` announce, under a real deadline.

        ``readline()`` has no timeout of its own; reading from a joined
        side thread keeps a wedged worker from hanging the harness.
        """
        proc = self.proc
        box: List[str] = []

        def read() -> None:
            for raw in proc.stdout:
                raw = raw.strip()
                if raw.startswith("SERVING "):
                    box.append(raw)
                    return

        thread = threading.Thread(target=read, daemon=True)
        thread.start()
        thread.join(timeout=STARTUP_TIMEOUT_S)
        if not box:
            if proc.poll() is not None:
                raise StorageError(
                    f"worker exited with {proc.returncode} before serving"
                )
            raise StorageError("worker did not announce its address in time")
        return box[0]

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """SIGKILL — death with no goodbye (connections break mid-frame)."""
        if self.proc is not None and self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGKILL)
            self.proc.wait()
        self.paused = False

    def pause(self) -> None:
        """SIGSTOP — the worker hangs: connections stay open, nothing answers."""
        if self.proc is not None and self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGSTOP)
            self.paused = True

    def resume(self) -> None:
        """SIGCONT a paused worker."""
        if self.paused and self.proc is not None and self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGCONT)
        self.paused = False

    def restart(self, epoch: int = 0) -> "FleetWorker":
        """Kill (if needed) and respawn on the recorded port."""
        self.kill()
        return self.spawn(epoch=epoch)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def reap(self) -> bool:
        """Stop the worker; True iff it exited within the polite window.

        Polite wire shutdown first, then a bounded wait, then
        terminate/kill escalation.  A paused worker is resumed first —
        SIGSTOP would otherwise defeat every politeness below.
        """
        proc = self.proc
        if proc is None:
            return True
        self.resume()
        polite = True
        if proc.poll() is None:
            try:
                sock = socket.create_connection(self.address, timeout=5.0)
                try:
                    wire.request(sock, {"op": "shutdown"})
                finally:
                    sock.close()
            except OSError:
                pass  # already dead or unreachable; the wait decides
            try:
                proc.wait(timeout=REAP_TIMEOUT_S)
            except subprocess.TimeoutExpired:
                polite = False
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        if proc.stdout is not None:
            proc.stdout.close()
        return polite


class FaultInjector:
    """A fleet of :class:`FleetWorker` processes plus the fault verbs.

    Construct, :meth:`spawn_fleet`, point a remote engine at
    :attr:`addresses`, then kill/pause/restart workers mid-stream.
    Always :meth:`teardown` (it asserts every child is reaped).
    """

    def __init__(self) -> None:
        self.workers: List[FleetWorker] = []

    def spawn_fleet(
        self,
        snapshot: str,
        ownership: Sequence[Sequence[int]],
        engine: str = "sharded",
        strict: bool = False,
        extra_env: Optional[Dict[str, str]] = None,
        serve_args: Optional[Sequence[str]] = None,
    ) -> List[FleetWorker]:
        """One worker per non-empty ownership slice; spawns them all."""
        try:
            for owned in ownership:
                if not owned:
                    continue
                worker = FleetWorker(
                    snapshot,
                    owned,
                    engine=engine,
                    strict=strict,
                    extra_env=extra_env,
                    serve_args=serve_args,
                )
                self.workers.append(worker)
                worker.spawn()
        except BaseException:
            self.teardown()
            raise
        return list(self.workers)

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [w.address for w in self.workers]

    def teardown(self) -> bool:
        """Reap every worker; True iff all exited politely.

        Asserts (hard) that no child survives — an orphaned serving
        process would outlive the test run and squat on its port.
        """
        polite = all([w.reap() for w in self.workers])
        for worker in self.workers:
            assert (
                worker.proc is None or worker.proc.poll() is not None
            ), f"unreaped chaos worker {worker.worker_id}"
        return polite

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc) -> None:
        self.teardown()


class _LatencySender:
    """Forwards chunks to ``dst`` a fixed delay after they arrived.

    A plain ``sleep`` in the pump stacks delays chunk-on-chunk, turning
    propagation delay into congestion; queueing ``(due, chunk)`` pairs
    and sending from a side thread lets in-flight chunks overlap the
    way a long real link does.  FIFO order is due order because the
    delay is constant per sender.
    """

    def __init__(self, dst: socket.socket, latency_s: float) -> None:
        self.dst = dst
        self.latency_s = latency_s
        self._queue: "queue.Queue[Optional[Tuple[float, bytes]]]" = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def send(self, chunk: bytes) -> None:
        self._queue.put((time.monotonic() + self.latency_s, chunk))

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            due, chunk = item
            wait = due - time.monotonic()
            if wait > 0:
                time.sleep(wait)
            try:
                self.dst.sendall(chunk)
            except OSError:
                return  # the link died; queued bytes die with it

    def close(self) -> None:
        """Flush everything already queued, then stop the thread."""
        self._queue.put(None)
        self._thread.join(timeout=5.0)


class ChaosProxy:
    """A byte-level TCP proxy injecting wire faults in front of a worker.

    Clients dial :attr:`address`; traffic is pumped to ``upstream``.
    :attr:`mode` selects the fault, applied to *upstream→client* bytes
    (the response path — where a client's framing layer must cope):

    ``None``
        Transparent pass-through.
    ``"drop"``
        Close both sides after :attr:`fault_after_bytes` response bytes —
        a connection cut mid-frame.
    ``"delay"``
        Sleep :attr:`delay_s` before forwarding each response chunk — a
        congested or wedged path (drives the wire-timeout machinery).
        The pump blocks, so delays stack chunk-on-chunk.
    ``"latency"``
        Forward each response chunk :attr:`latency_s` after it arrived
        *without* holding up later chunks — a long but uncongested link
        (propagation delay).  In-flight responses overlap the way they
        do over a real network, which is exactly the cost pipelining is
        designed to hide; ``bench_async_serving.py`` gates its speedup
        over this mode.  Don't toggle it off mid-connection: once a
        connection has queued delayed chunks, later chunks keep routing
        through the queue to preserve byte order.
    ``"truncate"``
        Forward only :attr:`fault_after_bytes` bytes of the next response
        chunk, then close — a torn frame with a valid length prefix.

    ``mode`` is mutable at runtime; each accepted connection reads it
    live, so one proxy can serve healthy and faulty phases of a test.
    """

    def __init__(self, upstream: Tuple[str, int], host: str = "127.0.0.1") -> None:
        self.upstream = (str(upstream[0]), int(upstream[1]))
        self.mode: Optional[str] = None
        self.delay_s = 0.05
        self.latency_s = 0.002
        self.fault_after_bytes = 6  # mid-frame: past the 4-byte prefix
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(16)
        self._sock.settimeout(0.2)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._lock = create_lock("chaos.proxy")
        self._accept = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept.start()

    @property
    def address(self) -> Tuple[str, int]:
        return self._sock.getsockname()[:2]

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                server = socket.create_connection(self.upstream, timeout=10.0)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._conns.extend((client, server))
            for src, dst, faulty in ((client, server, False), (server, client, True)):
                thread = threading.Thread(
                    target=self._pump, args=(src, dst, faulty), daemon=True
                )
                thread.start()
                with self._lock:
                    self._threads.append(thread)

    def _pump(self, src: socket.socket, dst: socket.socket, faulty: bool) -> None:
        forwarded = 0
        sender: Optional[_LatencySender] = None
        try:
            while not self._stop.is_set():
                try:
                    chunk = src.recv(1 << 16)
                except OSError:
                    break
                if not chunk:
                    break
                mode = self.mode if faulty else None
                if mode == "latency" or sender is not None:
                    if sender is None:
                        sender = _LatencySender(dst, self.latency_s)
                    sender.send(chunk)
                    forwarded += len(chunk)
                    continue
                if mode == "delay":
                    time.sleep(self.delay_s)
                elif mode == "drop":
                    if forwarded + len(chunk) > self.fault_after_bytes:
                        keep = max(self.fault_after_bytes - forwarded, 0)
                        if keep:
                            dst.sendall(chunk[:keep])
                        break  # cut the connection mid-frame
                elif mode == "truncate":
                    dst.sendall(chunk[: self.fault_after_bytes])
                    break
                try:
                    dst.sendall(chunk)
                except OSError:
                    break
                forwarded += len(chunk)
        finally:
            if sender is not None:
                sender.close()  # flushes queued chunks before the sockets go
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept.is_alive():
            self._accept.join(timeout=5.0)
        with self._lock:
            conns = list(self._conns)
            threads = list(self._threads)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
