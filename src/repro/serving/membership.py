"""Cluster membership for shard fleets: who owns what, and since when.

A serving deployment is a set of workers (:class:`~repro.serving.server.
ShardServer` processes) each claiming a slice of a sharded snapshot's
ownership map.  PR 5 fixed that assignment at spawn time; this module
makes it a first-class, *versioned* piece of cluster state so the fleet
can survive worker death, joins/leaves and rebalancing:

* :class:`MembershipMap` — the shard→owners assignment, stamped with a
  monotonically increasing **epoch**.  Every mutation (a worker joining,
  leaving, or being handed shards) bumps the epoch; a client holding an
  older epoch is *stale* and refreshes when a strict server tells it so
  (the ``not_owner`` wire error).  Workers are identified by their
  ``host:port`` serving address, which is also how a client dials them —
  the map is self-contained routing state.
* :class:`WorkerHealth` — the per-worker failure-detector state machine
  (``live`` → ``suspect`` → ``dead`` → recovered ``live``) driven by
  dispatch failures and ``ping`` heartbeats.
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  jitter for replica-aware dispatch: when an owner dies mid-bucket, the
  client retries the bucket against the next live owner with the failed
  one excluded.

The robustness lens is Korman & Kutten's (*Labeling Schemes with
Queries*): what can still be answered when some label holders are
unavailable?  With replicated shard ownership (``assign_shards(...,
replication=2)``) the answer is *everything, exactly* — any single
worker's labels are also held by a surviving replica, and the shared
``G_k``/all-pairs tier is replicated to every worker by construction.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.errors import QueryError, StorageError

__all__ = [
    "LIVE",
    "SUSPECT",
    "DEAD",
    "MembershipMap",
    "WorkerHealth",
    "RetryPolicy",
]

#: Health states of one fleet worker, as seen by a client or supervisor.
LIVE = "live"
SUSPECT = "suspect"
DEAD = "dead"


class MembershipMap:
    """Versioned worker → owned-shards assignment of one fleet.

    The epoch is the staleness token: every mutating operation
    (:meth:`join`, :meth:`leave`) bumps it, and wire payloads carry it so
    two views of the fleet can be ordered (:meth:`merge` adopts the newer
    one).  Workers are keyed by their ``host:port`` serving address.
    """

    __slots__ = ("epoch", "_members")

    def __init__(
        self,
        epoch: int = 0,
        members: Optional[Dict[str, Iterable[int]]] = None,
    ) -> None:
        self.epoch = int(epoch)
        self._members: Dict[str, List[int]] = {}
        for worker, shards in (members or {}).items():
            self.set(worker, shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def members(self) -> Dict[str, List[int]]:
        """``{worker: sorted owned shard indices}`` (a copy)."""
        return {w: list(s) for w, s in self._members.items()}

    def workers(self) -> List[str]:
        return sorted(self._members)

    def owned_by(self, worker: str) -> List[int]:
        """Shards owned by ``worker`` ([] when unknown)."""
        return list(self._members.get(worker, []))

    def owners_of(self, shard: int) -> List[str]:
        """Workers owning ``shard``, sorted (the replica set to dial)."""
        return sorted(
            w for w, shards in self._members.items() if shard in shards
        )

    def __contains__(self, worker: str) -> bool:
        return worker in self._members

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Mutation (every change bumps the epoch)
    # ------------------------------------------------------------------
    def set(self, worker: str, shards: Iterable[int]) -> None:
        """Seed/overwrite one assignment *without* bumping the epoch.

        For constructing an initial map (a server registering itself at
        bind time); runtime changes go through :meth:`join`/:meth:`leave`.
        """
        if not worker:
            raise StorageError("membership worker id must be non-empty")
        self._members[str(worker)] = sorted({int(s) for s in shards})

    def _bump(self, epoch: Optional[int]) -> int:
        self.epoch = max(self.epoch + 1, int(epoch) if epoch is not None else 0)
        return self.epoch

    def join(
        self, worker: str, shards: Iterable[int], epoch: Optional[int] = None
    ) -> int:
        """Record ``worker`` (re)joining with ``shards``; returns the new epoch.

        ``epoch`` (from the wire) lets a supervisor impose an ordering —
        the map adopts ``max(self.epoch + 1, epoch)`` so replayed or
        crossed messages cannot move the fleet backwards.
        """
        self.set(worker, shards)
        return self._bump(epoch)

    def leave(self, worker: str, epoch: Optional[int] = None) -> int:
        """Remove ``worker`` from the map; returns the new epoch.

        Unknown workers still bump the epoch: the *intent* ("this worker
        is gone") is cluster state even if this view never saw it join.
        """
        self._members.pop(str(worker), None)
        return self._bump(epoch)

    def merge(self, other: "MembershipMap") -> bool:
        """Adopt ``other``'s assignment iff its epoch is newer; True if adopted."""
        if other.epoch <= self.epoch:
            return False
        self.epoch = other.epoch
        self._members = {w: list(s) for w, s in other._members.items()}
        return True

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, object]:
        """JSON-safe payload of the ``membership`` op."""
        return {"epoch": self.epoch, "members": self.members()}

    @classmethod
    def from_wire(cls, payload: Dict) -> "MembershipMap":
        members = payload.get("members")
        if not isinstance(members, dict):
            raise StorageError(
                "malformed membership payload (no 'members' object)"
            )
        return cls(epoch=int(payload.get("epoch", 0)), members=members)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MembershipMap(epoch={self.epoch}, members={self._members})"


class WorkerHealth:
    """Failure-detector state of one worker: live → suspect → dead.

    Driven from two places: dispatch failures (a broken connection is
    *fatal* — the worker is dead until a reconnect succeeds) and the
    heartbeat thread's ``ping`` probes (a missed ping makes the worker
    *suspect*; ``dead_after`` consecutive misses make it dead).  Any
    success resets to live — that transition is "recovered".
    """

    __slots__ = ("state", "failures", "dead_after")

    def __init__(self, dead_after: int = 2) -> None:
        if dead_after < 1:
            raise QueryError(f"dead_after must be >= 1, got {dead_after}")
        self.state = LIVE
        self.failures = 0
        self.dead_after = dead_after

    def record_failure(self, fatal: bool = False) -> str:
        """One failed probe/dispatch; returns the new state."""
        self.failures += 1
        if fatal or self.failures >= self.dead_after:
            self.state = DEAD
        elif self.state != DEAD:
            self.state = SUSPECT
        return self.state

    def record_success(self) -> str:
        """One successful probe/dispatch; returns the new state (live)."""
        self.failures = 0
        self.state = LIVE
        return self.state

    @property
    def usable(self) -> bool:
        """Whether dispatch should still route to this worker."""
        return self.state != DEAD


class RetryPolicy(NamedTuple):
    """Replica-aware retry knobs of the remote engine.

    ``max_attempts``
        Total dispatch attempts per bucket (first try included).  Each
        failed attempt excludes the failed owner and moves to the next
        live replica.
    ``base_delay_s`` / ``max_delay_s``
        Exponential backoff between attempts: attempt ``i`` sleeps
        ``min(base * 2**i, max)`` seconds (before jitter).  The first
        attempt never sleeps.
    ``jitter``
        Fraction of each delay randomized away (``0`` = deterministic,
        ``0.5`` = delays land in ``[0.5 d, d]``) so a fleet of clients
        does not thunder back onto a recovering worker in lockstep.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def validate(self) -> "RetryPolicy":
        if self.max_attempts < 1:
            raise QueryError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise QueryError("RetryPolicy delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise QueryError(
                f"RetryPolicy.jitter must be in [0, 1], got {self.jitter}"
            )
        return self

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based, jittered)."""
        if self.base_delay_s <= 0:
            return 0.0
        capped = min(self.base_delay_s * (2.0 ** max(attempt, 0)), self.max_delay_s)
        if self.jitter <= 0:
            return capped
        roll = (rng or random).random()
        return capped * (1.0 - self.jitter * roll)
