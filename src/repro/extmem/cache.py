"""An LRU block cache for the simulated disk.

The paper's measured Time (a) values (e.g. btc's 11.47 ms per query, i.e.
~1.15 I/Os for two label fetches) are only explainable with OS page caching
absorbing part of the label traffic.  :class:`LRUBlockCache` models that:
label fetches first consult the cache and only charge disk I/Os on misses,
so experiments can quantify how much of the paper's query time survives a
warm cache (see ``bench_ablation_cache``).

The cache counts in *blocks*; a label of ``n`` blocks occupies ``n`` slots.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.errors import StorageError

__all__ = ["LRUBlockCache", "CachedLabelStore"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LRUBlockCache:
    """A fixed-capacity least-recently-used cache keyed by arbitrary ids."""

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise StorageError("cache needs at least one block of capacity")
        self.capacity_blocks = capacity_blocks
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, int]" = OrderedDict()  # key -> blocks
        self._used = 0

    def lookup(self, key: Hashable) -> bool:
        """True on hit (and refreshes recency); False on miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def admit(self, key: Hashable, blocks: int) -> None:
        """Insert an entry of ``blocks`` size, evicting LRU entries as needed.

        Entries larger than the whole cache are not admitted (scanning a
        huge object must not flush the cache — the classic scan-resistance
        rule).
        """
        if blocks > self.capacity_blocks:
            return
        if key in self._entries:
            self._used -= self._entries.pop(key)
        while self._used + blocks > self.capacity_blocks:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
        self._entries[key] = blocks
        self._used += blocks

    def invalidate(self, key: Hashable) -> None:
        """Drop one entry (after its object is rewritten)."""
        if key in self._entries:
            self._used -= self._entries.pop(key)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    @property
    def used_blocks(self) -> int:
        return self._used

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class CachedLabelStore:
    """A :class:`repro.extmem.labelstore.LabelStore` behind an LRU cache.

    Fetches hit the cache first; misses charge the underlying store's
    I/O counters and admit the label.  Writes pass through and invalidate.
    """

    def __init__(self, store, capacity_blocks: int) -> None:
        self.store = store
        self.cache = LRUBlockCache(capacity_blocks)

    def fetch(self, vertex: int):
        if self.cache.lookup(vertex):
            return self._decode(vertex)
        entries = self.store.fetch(vertex)
        self.cache.admit(vertex, self.store.fetch_cost(vertex))
        return entries

    def _decode(self, vertex: int):
        """Decode a cached label without charging disk I/O."""
        from repro.extmem.labelstore import _ENTRY, _ENTRY_HINTED

        blob = self.store._blobs[vertex]
        entry = _ENTRY_HINTED if self.store.with_hints else _ENTRY
        return [
            (e[0], e[1])
            for e in (
                entry.unpack_from(blob, i) for i in range(0, len(blob), entry.size)
            )
        ]

    def put(self, vertex: int, entries) -> None:
        self.store.put(vertex, entries)
        self.cache.invalidate(vertex)

    def fetch_cost(self, vertex: int) -> int:
        return 0 if vertex in self.cache else self.store.fetch_cost(vertex)

    @property
    def stats(self):
        return self.store.stats

    @property
    def with_hints(self):
        return self.store.with_hints

    def fetch_hinted(self, vertex: int):
        # Hinted fetches are construction/path-time only; pass through.
        return self.store.fetch_hinted(vertex)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self.store

    @property
    def total_bytes(self) -> int:
        return self.store.total_bytes
