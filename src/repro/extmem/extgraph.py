"""Disk-resident adjacency-list graphs (§2 storage model, §6 algorithms).

The paper assumes "a graph is stored in its adjacency list representation
(whether in memory or on disk), where ... vertices are ordered in ascending
order of their vertex IDs".  :class:`ExternalGraph` implements exactly that
on top of the simulated :class:`BlockDevice`: one record per vertex holding
its id and neighbour/weight pairs, readable only by sequential scans, so the
external Algorithms 2 and 3 are forced into the access pattern the paper
analyses.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.extmem.blockdev import BlockDevice, BlockFile
from repro.graph.graph import Graph

__all__ = ["ExternalGraph", "pack_row", "unpack_row"]

_ROW_HEADER = struct.Struct("<qI")  # vertex id, degree
_SLOT = struct.Struct("<qq")  # neighbour id, weight

Row = Tuple[int, List[Tuple[int, int]]]


def pack_row(vertex: int, adjacency: List[Tuple[int, int]]) -> bytes:
    """Serialize one adjacency row."""
    parts = [_ROW_HEADER.pack(vertex, len(adjacency))]
    parts += [_SLOT.pack(u, w) for u, w in adjacency]
    return b"".join(parts)


def unpack_row(record: bytes) -> Row:
    """Deserialize one adjacency row."""
    vertex, degree = _ROW_HEADER.unpack_from(record, 0)
    expected = _ROW_HEADER.size + degree * _SLOT.size
    if len(record) != expected:
        raise StorageError(
            f"adjacency row for vertex {vertex}: expected {expected} bytes, "
            f"got {len(record)}"
        )
    adjacency = [
        _SLOT.unpack_from(record, _ROW_HEADER.size + i * _SLOT.size)
        for i in range(degree)
    ]
    return vertex, adjacency


class ExternalGraph:
    """An adjacency-list graph on the simulated disk.

    Rows are stored in ascending vertex-id order.  All access is by
    sequential scan (:meth:`rows`); the in-memory mirror kept by
    :class:`Graph` is deliberately *not* retained.
    """

    def __init__(self, device: BlockDevice, data: BlockFile, num_vertices: int, num_edges: int) -> None:
        self.device = device
        self.data = data
        self.num_vertices = num_vertices
        self.num_edges = num_edges

    @classmethod
    def from_graph(
        cls, device: BlockDevice, graph: Graph, name: Optional[str] = None
    ) -> "ExternalGraph":
        """Write ``graph`` to the device in ascending vertex-id order."""
        data = device.create(name)
        for v in graph.sorted_vertices():
            data.append(pack_row(v, sorted(graph.neighbors(v).items())))
        data.close()
        return cls(device, data, graph.num_vertices, graph.num_edges)

    @classmethod
    def from_rows(
        cls,
        device: BlockDevice,
        rows: Iterator[Row],
        name: Optional[str] = None,
    ) -> "ExternalGraph":
        """Write pre-sorted ``(vertex, adjacency)`` rows to a new file."""
        data = device.create(name)
        num_vertices = 0
        slots = 0
        for vertex, adjacency in rows:
            data.append(pack_row(vertex, adjacency))
            num_vertices += 1
            slots += len(adjacency)
        data.close()
        if slots % 2:
            raise StorageError("undirected adjacency rows must have even slot total")
        return cls(device, data, num_vertices, slots // 2)

    def rows(self) -> Iterator[Row]:
        """Sequentially scan all adjacency rows (counts read I/Os)."""
        for record in self.data.records():
            yield unpack_row(record)

    def to_graph(self) -> Graph:
        """Materialize into an in-memory :class:`Graph`."""
        g = Graph()
        for vertex, adjacency in self.rows():
            g.add_vertex(vertex)
            for u, w in adjacency:
                g.merge_edge(vertex, u, w)
        return g

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` (§2)."""
        return self.num_vertices + self.num_edges

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExternalGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"blocks={self.data.num_blocks})"
        )
