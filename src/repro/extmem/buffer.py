"""A byte-budget tracker standing in for bounded main memory.

The external algorithms of §6 are correct only if they stay within the
memory budget ``M``.  :class:`MemoryBudget` is a strict accountant the
implementations charge for every buffered structure; overdrawing raises,
so tests can *prove* an algorithm respected its budget instead of hoping.
"""

from __future__ import annotations

from repro.errors import StorageError

__all__ = ["MemoryBudget"]


class MemoryBudget:
    """Tracks bytes charged against a fixed budget."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise StorageError("memory budget must be positive")
        self.capacity = capacity
        self.used = 0
        self.high_water = 0

    def fits(self, nbytes: int) -> bool:
        """Would charging ``nbytes`` more stay within budget?"""
        return self.used + nbytes <= self.capacity

    def charge(self, nbytes: int) -> None:
        """Charge ``nbytes``; raises :class:`StorageError` on overdraw."""
        if nbytes < 0:
            raise StorageError("cannot charge a negative size")
        if self.used + nbytes > self.capacity:
            raise StorageError(
                f"memory budget exceeded: {self.used} + {nbytes} > {self.capacity}"
            )
        self.used += nbytes
        self.high_water = max(self.high_water, self.used)

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget."""
        if nbytes < 0 or nbytes > self.used:
            raise StorageError(f"cannot release {nbytes} of {self.used} used bytes")
        self.used -= nbytes

    def drain(self) -> None:
        """Release everything (e.g. after flushing a buffer to disk)."""
        self.used = 0

    @property
    def available(self) -> int:
        return self.capacity - self.used
