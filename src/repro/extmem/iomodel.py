"""The external-memory cost model (§6, after Aggarwal & Vitter [4]).

The paper analyses every construction algorithm in the standard I/O model:
``scan(N) = Θ(N/B)`` and ``sort(N) = Θ((N/B) log_{M/B}(N/B))`` where ``N``
is the data volume, ``M`` the main-memory budget and ``B`` the block size
(``1 ≪ B ≤ M/2``).  This module provides

* :class:`IOStats` — mutable counters every substrate component reports to;
* :class:`CostModel` — the (B, M) parameters plus the analytic `scan`/`sort`
  formulas, and a latency model that converts I/O counts into simulated
  seconds using the paper's measured "10 ms per disk I/O" benchmark (§7.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import StorageError

__all__ = ["IOStats", "CostModel", "DEFAULT_BLOCK_SIZE", "DEFAULT_MEMORY", "PAPER_IO_LATENCY_S"]

DEFAULT_BLOCK_SIZE = 4096
DEFAULT_MEMORY = 64 * DEFAULT_BLOCK_SIZE

#: The paper benchmarks its 7200-RPM SATA disk at ~10 ms per random I/O
#: ("Time (a) is still above 10ms, which is due to the speed of our hard
#: disk, with a benchmark of 10ms per disk I/O", §7.2).
PAPER_IO_LATENCY_S = 0.010


@dataclass
class IOStats:
    """Counters of simulated disk traffic."""

    block_reads: int = 0
    block_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def total_ios(self) -> int:
        return self.block_reads + self.block_writes

    def reset(self) -> None:
        self.block_reads = 0
        self.block_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def snapshot(self) -> "IOStats":
        return IOStats(
            self.block_reads, self.block_writes, self.bytes_read, self.bytes_written
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Traffic accumulated since ``earlier`` (a prior :meth:`snapshot`)."""
        return IOStats(
            self.block_reads - earlier.block_reads,
            self.block_writes - earlier.block_writes,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.block_reads + other.block_reads,
            self.block_writes + other.block_writes,
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
        )


@dataclass(frozen=True)
class CostModel:
    """I/O model parameters and analytic cost formulas.

    ``block_size`` (B) and ``memory`` (M) are in bytes; the model requires
    ``1 < B <= M/2`` exactly as in §6.
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    memory: int = DEFAULT_MEMORY
    io_latency_s: float = PAPER_IO_LATENCY_S

    def __post_init__(self) -> None:
        if self.block_size <= 1:
            raise StorageError("block size must exceed 1 byte")
        if self.block_size > self.memory // 2:
            raise StorageError(
                f"I/O model needs B <= M/2; got B={self.block_size}, M={self.memory}"
            )

    @property
    def blocks_in_memory(self) -> int:
        """m = M/B, the number of blocks that fit in memory."""
        return self.memory // self.block_size

    def blocks_for(self, nbytes: int) -> int:
        """Number of blocks covering ``nbytes`` of sequential data."""
        return max(1, math.ceil(nbytes / self.block_size)) if nbytes > 0 else 0

    def scan_cost(self, nbytes: int) -> int:
        """``scan(N) = Θ(N/B)`` in block transfers."""
        return self.blocks_for(nbytes)

    def sort_cost(self, nbytes: int) -> int:
        """``sort(N) = Θ((N/B) log_{M/B}(N/B))`` in block transfers."""
        n_blocks = self.blocks_for(nbytes)
        if n_blocks <= 1:
            return n_blocks
        fan = max(2, self.blocks_in_memory)
        passes = max(1, math.ceil(math.log(n_blocks, fan)))
        return n_blocks * passes

    def time_for(self, ios: int) -> float:
        """Simulated seconds for ``ios`` block transfers."""
        return ios * self.io_latency_s
