"""External merge sort over block files (the ``sort(N)`` primitive of §6).

Algorithm 2 sorts adjacency lists by degree and Algorithm 3 sorts the
augmenting-edge array by vertex ids; both rely on this routine when the data
exceeds the memory budget.  Classic two-phase multiway merge sort:

1. *Run formation*: fill the memory budget with records, sort in memory,
   emit a sorted run.
2. *Merge*: heap-merge up to ``M/B - 1`` runs at a time until one run
   remains.

I/O accounting happens implicitly through :class:`BlockFile` reads/writes,
so measured counts can be compared against ``CostModel.sort_cost``.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.extmem.blockdev import BlockDevice, BlockFile

__all__ = ["external_sort"]

Key = Callable[[bytes], Tuple]


def external_sort(
    device: BlockDevice,
    source: BlockFile,
    key: Key,
    output_name: Optional[str] = None,
) -> BlockFile:
    """Sort ``source``'s records by ``key`` into a new file.

    ``key`` maps a record's bytes to a comparable tuple.  The memory budget
    and block size come from the device's :class:`CostModel`.
    """
    budget = device.cost_model.memory
    fan_in = max(2, device.cost_model.blocks_in_memory - 1)

    # ------------------------------------------------------------------
    # Phase 1: sorted run formation under the memory budget.
    # ------------------------------------------------------------------
    runs: List[BlockFile] = []
    buf: List[bytes] = []
    used = 0

    def flush_run() -> None:
        nonlocal buf, used
        if not buf:
            return
        buf.sort(key=key)
        run = device.create()
        for record in buf:
            run.append(record)
        run.close()
        runs.append(run)
        buf = []
        used = 0

    for record in source.records():
        buf.append(record)
        used += len(record) + 4
        if used >= budget:
            flush_run()
    flush_run()

    if not runs:
        empty = device.create(output_name)
        empty.close()
        return empty

    # ------------------------------------------------------------------
    # Phase 2: multiway merge passes.
    # ------------------------------------------------------------------
    while len(runs) > 1:
        merged: List[BlockFile] = []
        for i in range(0, len(runs), fan_in):
            group = runs[i : i + fan_in]
            is_final = len(runs) <= fan_in
            out = device.create(output_name if is_final else None)
            _merge_group(group, out, key)
            merged.append(out)
            for run in group:
                device.delete(run.name)
        runs = merged

    result = runs[0]
    if output_name is not None and result.name != output_name:
        # Single-run input: re-register under the requested name (no extra
        # I/O; the blocks are shared).
        device.delete(result.name)
        result.name = output_name
        device._files[output_name] = result
    return result


def _merge_group(group: List[BlockFile], out: BlockFile, key: Key) -> None:
    """Heap-merge sorted runs into ``out`` (stable within a run)."""
    streams = [run.records() for run in group]
    heap: List[Tuple[Tuple, int, bytes]] = []
    for idx, stream in enumerate(streams):
        first = next(stream, None)
        if first is not None:
            heapq.heappush(heap, (key(first), idx, first))
    while heap:
        _, idx, record = heapq.heappop(heap)
        out.append(record)
        nxt = next(streams[idx], None)
        if nxt is not None:
            heapq.heappush(heap, (key(nxt), idx, nxt))
    out.close()
