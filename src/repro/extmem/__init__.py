"""External-memory substrate: simulated disk, I/O model, sort, storage."""

from repro.extmem.blockdev import BlockDevice, BlockFile
from repro.extmem.buffer import MemoryBudget
from repro.extmem.extgraph import ExternalGraph, pack_row, unpack_row
from repro.extmem.extsort import external_sort
from repro.extmem.iomodel import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_MEMORY,
    PAPER_IO_LATENCY_S,
    CostModel,
    IOStats,
)
from repro.extmem.labelstore import NO_HINT, LabelStore

__all__ = [
    "BlockDevice",
    "BlockFile",
    "MemoryBudget",
    "ExternalGraph",
    "pack_row",
    "unpack_row",
    "external_sort",
    "CostModel",
    "IOStats",
    "LabelStore",
    "NO_HINT",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_MEMORY",
    "PAPER_IO_LATENCY_S",
]
