"""Disk-resident vertex labels (§6.2).

"For processing large datasets, the vertex labels may not fit in main
memory and are stored on disk.  The entries in each label(v) are stored
sequentially on disk and are sorted by the vertex ID's of the ancestors."

:class:`LabelStore` models that layout: each vertex's label occupies
``ceil(bytes / B)`` consecutive blocks, and fetching a label costs that many
read I/Os — "from our experiments, the vertex labels are small in size and
retrieving a vertex label from disk takes only one I/O".  The store powers
the Time (a) column of Tables 4, 5 and 8.

Entries are ``(ancestor, distance)`` pairs, optionally extended with the
intermediate-vertex *hint* used for path reconstruction (§8.1); a hint of
``-1`` encodes the paper's ``φ`` (no intermediate vertex).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.extmem.iomodel import CostModel, IOStats

__all__ = ["LabelStore", "NO_HINT"]

NO_HINT = -1

_ENTRY = struct.Struct("<qq")  # ancestor id, distance
_ENTRY_HINTED = struct.Struct("<qqq")  # ancestor id, distance, intermediate


class LabelStore:
    """On-disk vertex labels with per-fetch I/O accounting.

    Parameters
    ----------
    cost_model:
        Block size and latency used to charge fetches.
    with_hints:
        Store the §8.1 intermediate-vertex hint with every entry (24 bytes
        per entry instead of 16).
    stats:
        Optional shared :class:`IOStats`; a private one is created if absent.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        with_hints: bool = False,
        stats: Optional[IOStats] = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.with_hints = with_hints
        self.stats = stats if stats is not None else IOStats()
        self._blobs: Dict[int, bytes] = {}
        self._entry_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Writing (index construction)
    # ------------------------------------------------------------------
    def put(self, vertex: int, entries: Iterable[Tuple[int, ...]]) -> None:
        """Store ``label(vertex)``; entries are sorted by ancestor id.

        Each entry is ``(ancestor, distance)`` or
        ``(ancestor, distance, hint)`` when the store keeps hints.
        """
        fmt = _ENTRY_HINTED if self.with_hints else _ENTRY
        ordered = sorted(entries)
        parts = []
        for entry in ordered:
            if self.with_hints:
                if len(entry) == 2:
                    entry = (entry[0], entry[1], NO_HINT)
                parts.append(fmt.pack(entry[0], entry[1], entry[2]))
            else:
                if len(entry) != 2:
                    raise StorageError(
                        "plain label store takes (ancestor, distance) entries"
                    )
                parts.append(fmt.pack(entry[0], entry[1]))
        blob = b"".join(parts)
        self._blobs[vertex] = blob
        self._entry_counts[vertex] = len(ordered)
        self.stats.block_writes += self.cost_model.blocks_for(len(blob))
        self.stats.bytes_written += len(blob)

    # ------------------------------------------------------------------
    # Reading (query time)
    # ------------------------------------------------------------------
    def fetch(self, vertex: int) -> List[Tuple[int, int]]:
        """Fetch ``(ancestor, distance)`` pairs; charges read I/Os."""
        blob = self._charge_fetch(vertex)
        fmt = _ENTRY_HINTED if self.with_hints else _ENTRY
        return [
            (e[0], e[1]) for e in (fmt.unpack_from(blob, i) for i in range(0, len(blob), fmt.size))
        ]

    def fetch_hinted(self, vertex: int) -> List[Tuple[int, int, int]]:
        """Fetch ``(ancestor, distance, hint)`` triples (§8.1 labels)."""
        if not self.with_hints:
            raise StorageError("label store was built without path hints")
        blob = self._charge_fetch(vertex)
        return [
            _ENTRY_HINTED.unpack_from(blob, i)
            for i in range(0, len(blob), _ENTRY_HINTED.size)
        ]

    def fetch_cost(self, vertex: int) -> int:
        """Read I/Os a fetch of ``label(vertex)`` costs (no side effects)."""
        blob = self._blobs.get(vertex)
        if blob is None:
            return 0
        return self.cost_model.blocks_for(len(blob)) or 1

    def _charge_fetch(self, vertex: int) -> bytes:
        try:
            blob = self._blobs[vertex]
        except KeyError:
            raise StorageError(f"no label stored for vertex {vertex}") from None
        ios = self.cost_model.blocks_for(len(blob)) or 1  # empty label: 1 seek
        self.stats.block_reads += ios
        self.stats.bytes_read += len(blob)
        return blob

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def __contains__(self, vertex: object) -> bool:
        return vertex in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    def vertices(self) -> Iterator[int]:
        return iter(self._blobs)

    @property
    def total_bytes(self) -> int:
        """Total label size — the "Label size" column of Table 3."""
        return sum(len(b) for b in self._blobs.values())

    @property
    def total_entries(self) -> int:
        return sum(self._entry_counts.values())

    def entry_count(self, vertex: int) -> int:
        return self._entry_counts.get(vertex, 0)

    @property
    def average_label_entries(self) -> float:
        return self.total_entries / len(self._blobs) if self._blobs else 0.0
