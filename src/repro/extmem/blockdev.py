"""A simulated block device with I/O accounting.

The paper's construction algorithms are specified as sequences of scans and
sorts over disk-resident files (§6).  We simulate the disk: data lives in
fixed-size blocks held in Python memory, and every block transfer is counted
in :class:`IOStats` so experiments can report I/O counts and convert them to
simulated time with the paper's 10 ms/IO benchmark.

Two layers are provided:

* :class:`BlockDevice` — allocates named files, owns the counters;
* :class:`BlockFile` — an append-only stream of length-prefixed records
  packed into blocks (records may span block boundaries, as adjacency lists
  larger than a block do on a real disk).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional

from repro.errors import StorageError
from repro.extmem.iomodel import CostModel, IOStats

__all__ = ["BlockDevice", "BlockFile"]

_LEN = struct.Struct("<I")


class BlockFile:
    """An append-only record file on a :class:`BlockDevice`.

    Records are arbitrary byte strings, written with a 4-byte length prefix
    and packed contiguously into blocks.  Writing buffers at most one block
    (allowed: ``B <= M/2``); reading streams the blocks sequentially.
    """

    def __init__(self, device: "BlockDevice", name: str) -> None:
        self._device = device
        self.name = name
        self._blocks: List[bytes] = []
        self._write_buf = bytearray()
        self._num_records = 0
        self._closed = False

    # -- writing -------------------------------------------------------
    def append(self, record: bytes) -> None:
        """Append one record; flushes full blocks to the device."""
        if self._closed:
            raise StorageError(f"file {self.name!r} is closed for writing")
        self._write_buf += _LEN.pack(len(record)) + record
        block_size = self._device.cost_model.block_size
        while len(self._write_buf) >= block_size:
            self._device._write(self, bytes(self._write_buf[:block_size]))
            del self._write_buf[:block_size]
        self._num_records += 1

    def close(self) -> None:
        """Flush the trailing partial block; the file becomes read-only."""
        if self._closed:
            return
        if self._write_buf:
            self._device._write(self, bytes(self._write_buf))
            self._write_buf = bytearray()
        self._closed = True

    # -- reading -------------------------------------------------------
    def records(self) -> Iterator[bytes]:
        """Sequentially scan all records (1 read I/O per block touched)."""
        self.close()
        pending = bytearray()
        need: Optional[int] = None
        for block_index in range(len(self._blocks)):
            pending += self._device._read(self, block_index)
            while True:
                if need is None:
                    if len(pending) < _LEN.size:
                        break
                    need = _LEN.unpack(pending[: _LEN.size])[0]
                    del pending[: _LEN.size]
                if len(pending) < need:
                    break
                yield bytes(pending[:need])
                del pending[:need]
                need = None
        if pending or need is not None:
            raise StorageError(f"file {self.name!r} ends with a truncated record")

    # -- metadata ------------------------------------------------------
    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def num_blocks(self) -> int:
        return len(self._blocks) + (1 if self._write_buf else 0)

    @property
    def nbytes(self) -> int:
        return sum(len(b) for b in self._blocks) + len(self._write_buf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockFile({self.name!r}, records={self._num_records}, blocks={self.num_blocks})"


class BlockDevice:
    """A collection of block files sharing one set of I/O counters."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model or CostModel()
        self.stats = IOStats()
        self._files: Dict[str, BlockFile] = {}
        self._anon = 0

    def create(self, name: Optional[str] = None) -> BlockFile:
        """Create (or truncate) a file and return it."""
        if name is None:
            self._anon += 1
            name = f"__anon_{self._anon}"
        handle = BlockFile(self, name)
        self._files[name] = handle
        return handle

    def open(self, name: str) -> BlockFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file {name!r}") from None

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    @property
    def files(self) -> Dict[str, BlockFile]:
        return dict(self._files)

    def total_bytes(self) -> int:
        return sum(f.nbytes for f in self._files.values())

    # -- internal block transfer hooks (called by BlockFile) ------------
    def _write(self, handle: BlockFile, data: bytes) -> None:
        if len(data) > self.cost_model.block_size:
            raise StorageError("block overflow")
        handle._blocks.append(data)
        self.stats.block_writes += 1
        self.stats.bytes_written += len(data)

    def _read(self, handle: BlockFile, index: int) -> bytes:
        try:
            data = handle._blocks[index]
        except IndexError:
            raise StorageError(
                f"file {handle.name!r}: block {index} out of range"
            ) from None
        self.stats.block_reads += 1
        self.stats.bytes_read += len(data)
        return data
