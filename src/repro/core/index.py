"""The IS-LABEL index facade.

:class:`ISLabelIndex` packages hierarchy construction (§4.1/§5.1), top-down
labeling (§6.1.4) and query processing (§4.3/§5.2) behind the API a
downstream user works with:

>>> from repro import Graph, ISLabelIndex
>>> g = Graph([(1, 2), (2, 3), (3, 4, 2)])
>>> index = ISLabelIndex.build(g)
>>> index.distance(1, 4)
4

Two storage modes mirror the paper's two configurations:

* ``storage="disk"`` — labels live in a simulated :class:`LabelStore`;
  every query charges read I/Os for the labels it touches, and
  :meth:`query` reports the paper's Time (a) (simulated I/O time at
  10 ms/IO) and Time (b) (measured search CPU) split.  This is "IS-LABEL"
  in Tables 4, 5 and 8.
* ``storage="memory"`` — labels stay in memory, Time (a) is zero.  This is
  "IM-ISL".

Orthogonally to storage, ``engine`` selects the query/compute backend by
registry name (:mod:`repro.core.engines` — the :class:`QueryEngine`
protocol and its registry; the directed index resolves through the same
registry under the ``"directed"`` kind):

* ``engine="fast"`` (default) — array-native hot paths: labels as sorted
  parallel numpy arrays with a merge-based Equation 1, ``G_k`` frozen into
  a CSR adjacency at build time, and Algorithm 1 run over flat
  ``indptr/indices/weights`` with dense-int distance maps from a shared
  buffer pool (:mod:`repro.core.fastlabels`).  :meth:`distances` becomes a
  true batch path that reuses the search buffers across the whole batch.
* ``engine="dict"`` — the reference implementation over dict-of-dict
  adjacency and entry-list labels; kept for ablations, as the correctness
  oracle of the cross-engine property tests, and for the mutable paths
  (dynamic updates, §8.3).

Both engines return bit-identical answers and identical I/O accounting;
path reconstruction (``keep_parents``) always runs on the reference search.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.engines import UNDIRECTED, resolve_engine
from repro.core.fastlabels import FastEngine, fast_top_down_labels
from repro.core.hierarchy import DEFAULT_SIGMA, VertexHierarchy, build_hierarchy
from repro.core.labeling import top_down_labels
from repro.core.labels import (
    BYTES_PER_ENTRY,
    BYTES_PER_ENTRY_WITH_PRED,
    LabelEntryList,
    eq1_distance_argmin,
    sort_label,
)
from repro.core.query import (
    BiDijkstraResult,
    SearchStats,
    csr_label_bidijkstra,
    label_bidijkstra,
)
from repro.errors import IndexBuildError, QueryError
from repro.extmem.iomodel import CostModel, IOStats
from repro.extmem.labelstore import NO_HINT, LabelStore
from repro.graph.graph import Graph

__all__ = ["ISLabelIndex", "IndexStats", "QueryResult"]


@dataclass(frozen=True)
class IndexStats:
    """Construction-side numbers — the columns of Tables 3, 6 and 7."""

    k: int
    num_vertices: int
    num_edges: int
    gk_vertices: int
    gk_edges: int
    label_entries: int
    label_bytes: int
    build_seconds: float
    hierarchy_seconds: float
    labeling_seconds: float
    sigma: Optional[float]

    @property
    def avg_label_entries(self) -> float:
        labeled = self.num_vertices
        return self.label_entries / labeled if labeled else 0.0


@dataclass
class QueryResult:
    """One query's answer plus the cost breakdown of Tables 4 and 5."""

    source: int
    target: int
    distance: float
    #: Table 5 classification: 1 = both endpoints in G_k, 2 = one, 3 = none.
    query_type: int
    used_bidijkstra: bool
    label_ios: int
    #: Simulated label-retrieval time — the paper's Time (a).
    time_label_s: float
    #: Measured search time — the paper's Time (b).
    time_search_s: float
    search: Optional[SearchStats] = None

    @property
    def total_time_s(self) -> float:
        return self.time_label_s + self.time_search_s


class ISLabelIndex:
    """A built IS-LABEL index over an undirected weighted graph."""

    def __init__(
        self,
        hierarchy: VertexHierarchy,
        labels: Dict[int, List[Tuple[int, int]]],
        preds: Optional[Dict[int, Dict[int, Optional[int]]]],
        store: Optional[LabelStore],
        cost_model: CostModel,
        labeling_seconds: float,
        fast: Optional[FastEngine] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.gk = hierarchy.gk
        self._labels = labels
        self._preds = preds
        self._store = store
        self.cost_model = cost_model
        self._labeling_seconds = labeling_seconds
        self.io_stats = store.stats if store is not None else IOStats()
        self._fast = fast
        # Lazily built hub sketch (the approximate tier); dropped whenever
        # labels change so it can never serve stale bounds.
        self._sketch = None

    @property
    def engine(self) -> str:
        """Registry name of the attached backend (``"dict"`` if none)."""
        return self._fast.name if self._fast is not None else "dict"

    @property
    def search_mode(self) -> str:
        """How Algorithm 1's search stage runs: ``"apsp"`` (small-``G_k``
        distance table), ``"csr"`` (flat-array bi-Dijkstra), ``"dict"``
        (reference adjacency) — or the backend's own name for
        protocol-only engines (e.g. ``"remote"``), whose search stage
        runs elsewhere."""
        if self._fast is None:
            return "dict"
        if not hasattr(self._fast, "has_apsp"):
            return self._fast.name
        return "apsp" if self._fast.has_apsp else "csr"

    def attach_fast_engine(self, engine: str = "fast") -> "ISLabelIndex":
        """Attach the registered ``engine`` over the current labels/``G_k``.

        Used by :func:`repro.core.serialization.load_index` and by tests
        that construct indexes directly.  Resolves through the engine
        registry, so a replacement backend registered under the same name
        is honoured everywhere.  The engine snapshots the labels — do not
        mutate them afterwards (dynamic maintenance must stay on the dict
        engine).
        """
        factory = resolve_engine(UNDIRECTED, engine)
        self._fast = factory(self.gk, self._labels) if factory is not None else None
        return self

    def invalidate_labels(self, dirty=None) -> None:
        """Tell the attached engine that labels (and possibly ``G_k``)
        changed behind its back.

        The facade half of the dynamic seam: §8.3 maintenance
        (:class:`repro.core.updates.DynamicISLabelIndex`) mutates
        ``self._labels`` and ``self.hierarchy.gk`` in place — both shared
        with the engine — then reports the touched vertices here.  With
        ``dirty`` the engine may repair its frozen arrays incrementally;
        with ``None`` it drops them and re-freezes on the next query.
        No-op on the dict reference path, whose structures *are* the
        mutable ones.
        """
        self._sketch = None  # sketches are built from labels; never stale
        if self._fast is not None:
            self._fast.invalidate(dirty)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        sigma: Optional[float] = DEFAULT_SIGMA,
        k: Optional[int] = None,
        full: bool = False,
        storage: str = "memory",
        cost_model: Optional[CostModel] = None,
        with_paths: bool = False,
        is_strategy: str = "min_degree",
        seed: Optional[int] = None,
        cache_blocks: Optional[int] = None,
        engine: str = "fast",
    ) -> "ISLabelIndex":
        """Build the index; see :func:`repro.core.hierarchy.build_hierarchy`
        for the hierarchy knobs (``sigma``, ``k``, ``full``, strategy).

        ``storage`` selects ``"memory"`` (IM-ISL) or ``"disk"`` (IS-LABEL
        with simulated label I/O); ``engine`` selects the ``"fast"``
        array/CSR compute backend (default) or the ``"dict"`` reference
        (see the module docstring); ``with_paths`` records the §8.1
        bookkeeping needed by :class:`repro.core.paths.PathReconstructor`;
        ``cache_blocks`` (disk mode) puts an LRU block cache in front of
        the label store, modelling the OS page cache the paper's testbed
        benefited from.
        """
        if storage not in ("memory", "disk"):
            raise IndexBuildError(f"unknown storage mode {storage!r}")
        factory = resolve_engine(UNDIRECTED, engine)
        model = cost_model or CostModel()

        hierarchy = build_hierarchy(
            graph,
            sigma=sigma,
            k=k,
            full=full,
            is_strategy=is_strategy,
            seed=seed,
            with_hints=with_paths,
        )
        labeling_started = time.perf_counter()
        fast = None
        if factory is not None and not with_paths:
            # Algorithm 4 with the sorted-array k-way min-merge for large
            # labels; the engine then packs the entry lists into its
            # backing arrays in one batch.
            labels, array_labels = fast_top_down_labels(hierarchy)
            preds = None
            fast = factory(hierarchy.gk, labels, array_labels)
        else:
            # Predecessor bookkeeping (with_paths) only exists on the dict
            # labeler; a registered engine can still wrap the result below.
            label_maps, preds = top_down_labels(hierarchy, with_preds=with_paths)
            labels = {v: sort_label(m) for v, m in label_maps.items()}
            if factory is not None:
                fast = factory(hierarchy.gk, labels)
        labeling_seconds = time.perf_counter() - labeling_started

        store = None
        if storage == "disk":
            store = LabelStore(model, with_hints=with_paths)
            for v, entries in labels.items():
                if with_paths:
                    pred_v = preds[v]  # type: ignore[index]
                    store.put(
                        v,
                        [
                            (w, d, NO_HINT if pred_v[w] is None else pred_v[w])
                            for w, d in entries
                        ],
                    )
                else:
                    store.put(v, entries)
            store.stats.reset()  # construction traffic is not query traffic
            if cache_blocks is not None:
                from repro.extmem.cache import CachedLabelStore

                store = CachedLabelStore(store, cache_blocks)

        return cls(hierarchy, labels, preds, store, model, labeling_seconds, fast)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Exact ``dist_G(source, target)`` (``inf`` when disconnected)."""
        return self.query(source, target).distance

    def hub_sketch(self, h: Optional[int] = None):
        """The lazily built approximate tier (:mod:`repro.caching.sketch`).

        One instance per label generation — :meth:`invalidate_labels`
        drops it, so §8.3 updates rebuild it from current labels before
        the next approximate query.  ``h`` pins the entries kept per
        vertex (a different ``h`` rebuilds); ``h=None`` reuses whatever
        sketch is already built, falling back to
        :data:`~repro.caching.sketch.DEFAULT_SKETCH_H` on first use.
        """
        from repro.caching.sketch import DEFAULT_SKETCH_H, HubSketch

        if h is None:
            if self._sketch is None:
                self._sketch = HubSketch.from_index(self, h=DEFAULT_SKETCH_H)
        elif self._sketch is None or self._sketch.table.h != h:
            self._sketch = HubSketch.from_index(self, h=h)
        return self._sketch

    def distances(self, pairs, approx: bool = False) -> List[float]:
        """Batch form of :meth:`distance` over an iterable of (s, t) pairs.

        On the fast engine this is a real batch path: Equation 1 runs once,
        vectorized over the stacked label arrays of the whole batch, the
        CSR search shares one set of pooled buffers, and the per-query
        :class:`QueryResult` and timing bookkeeping are skipped (I/O
        accounting in disk mode is preserved).

        ``approx=True`` answers from the hub-sketch tier instead: each
        result is an *upper bound* on the true distance (frequently
        exact — see :mod:`repro.caching.sketch` for the error contract)
        computed from the top-``h`` label entries only, with no label
        I/O and no search stage.  On a ``cached:*`` engine the bounds are
        cached under the ``"approx"`` namespace, never visible to exact
        queries.
        """
        if approx:
            pairs = list(pairs)
            sketch = self.hub_sketch()
            if self._fast is not None and hasattr(self._fast, "distances_via"):
                return self._fast.distances_via(pairs, sketch.bounds)
            return sketch.bounds(pairs)
        if self._fast is None:
            return [self.query(s, t).distance for s, t in pairs]
        # Facade duties before delegating the compute: vertex coverage and
        # the simulated label I/O of disk mode.
        pairs = list(pairs)
        level_of = self.hierarchy.level_of
        charge = self._store is not None
        for s, t in pairs:
            if s not in level_of:
                raise QueryError(f"vertex {s} is not covered by this index")
            if t not in level_of:
                raise QueryError(f"vertex {t} is not covered by this index")
            if charge and s != t:
                self._fetch_label(s)
                self._fetch_label(t)
        return self._fast.distances(pairs)

    def reachable(self, source: int, target: int) -> bool:
        """True iff the endpoints are connected in ``G``."""
        return not math.isinf(self.query(source, target).distance)

    def query(
        self, source: int, target: int, keep_parents: bool = False
    ) -> QueryResult:
        """Answer a P2P distance query with the Table 4/5 cost breakdown."""
        result, _ = self._query_detailed(source, target, keep_parents)
        return result

    def _query_detailed(
        self, source: int, target: int, keep_parents: bool = False
    ) -> Tuple[QueryResult, Optional[BiDijkstraResult]]:
        """Query plus the raw search result (path reconstruction needs it)."""
        self._check_vertex(source)
        self._check_vertex(target)
        s_in_gk = self.hierarchy.in_gk(source)
        t_in_gk = self.hierarchy.in_gk(target)
        table5_type = 1 if (s_in_gk and t_in_gk) else (2 if (s_in_gk or t_in_gk) else 3)

        if source == target:
            return (
                QueryResult(source, target, 0, table5_type, False, 0, 0.0, 0.0),
                None,
            )

        # Path reconstruction needs parent pointers, which only the
        # reference search records; everything else takes the fast path.
        if self._fast is not None and not keep_parents:
            if not hasattr(self._fast, "eq1"):
                # Protocol-only backend (e.g. the remote engine): it has
                # no packed internals to stage through — delegate the
                # whole query and time it as search cost.
                started = time.perf_counter()
                distance = self._fast.distance(source, target)
                elapsed = time.perf_counter() - started
                return (
                    QueryResult(
                        source, target, distance, table5_type, True, 0, 0.0, elapsed
                    ),
                    None,
                )
            return self._fast_query(source, target, table5_type)

        ios_before = self.io_stats.block_reads
        label_s = self._fetch_label(source)
        label_t = self._fetch_label(target)
        label_ios = self.io_stats.block_reads - ios_before
        time_label_s = self.cost_model.time_for(label_ios)

        search_started = time.perf_counter()
        mu0, _ = eq1_distance_argmin(label_s, label_t)

        seeds_f = self._gk_seeds(label_s)
        seeds_r = self._gk_seeds(label_t)
        # Type 1 (§5.2): no gateway into G_k on at least one side — the
        # whole shortest path lies below level k and Equation 1 is exact.
        # With a full hierarchy G_k is empty and every query lands here.
        if not seeds_f or not seeds_r:
            elapsed = time.perf_counter() - search_started
            return (
                QueryResult(
                    source,
                    target,
                    mu0,
                    table5_type,
                    False,
                    label_ios,
                    time_label_s,
                    elapsed,
                ),
                None,
            )

        result = label_bidijkstra(
            self._gk_adjacency,
            self._gk_adjacency,
            seeds_f,
            seeds_r,
            initial_mu=mu0,
            keep_parents=keep_parents,
        )
        elapsed = time.perf_counter() - search_started
        return (
            QueryResult(
                source,
                target,
                result.distance,
                table5_type,
                True,
                label_ios,
                time_label_s,
                elapsed,
                result.stats,
            ),
            result,
        )

    def _fast_query(
        self, source: int, target: int, table5_type: int
    ) -> Tuple[QueryResult, None]:
        """Array-native query: merge Eq. 1, pre-extracted seeds, CSR search."""
        fast = self._fast
        fast.freeze()
        ios_before = self.io_stats.block_reads
        if self._store is not None:
            # Same I/O accounting as the reference path: the store charge
            # is the model, the arrays are the compute.
            self._fetch_label(source)
            self._fetch_label(target)
        label_ios = self.io_stats.block_reads - ios_before
        time_label_s = self.cost_model.time_for(label_ios)

        search_started = time.perf_counter()
        mu0, _ = fast.eq1(source, target)
        use_apsp = fast.has_apsp
        seeds_of = fast.seeds_np if use_apsp else fast.seeds
        seeds_f = seeds_of(source)
        seeds_r = seeds_of(target)
        if not len(seeds_f[0]) or not len(seeds_r[0]):
            elapsed = time.perf_counter() - search_started
            return (
                QueryResult(
                    source,
                    target,
                    mu0,
                    table5_type,
                    False,
                    label_ios,
                    time_label_s,
                    elapsed,
                ),
                None,
            )
        stats: Optional[SearchStats] = None
        if use_apsp:
            distance = fast.search_distance(seeds_f, seeds_r, mu0)
        else:
            distance, _, stats = csr_label_bidijkstra(
                fast.indptr,
                fast.indices,
                fast.weights,
                seeds_f,
                seeds_r,
                fast.pool,
                fast.csr.num_vertices,
                initial_mu=mu0,
            )
        elapsed = time.perf_counter() - search_started
        return (
            QueryResult(
                source,
                target,
                distance,
                table5_type,
                True,
                label_ios,
                time_label_s,
                elapsed,
                stats,
            ),
            None,
        )

    def _gk_adjacency(self, v: int):
        return self.gk.neighbors(v).items()

    def _gk_seeds(self, label: LabelEntryList) -> List[Tuple[int, int]]:
        """Label entries whose ancestor lies in ``G_k`` (Algorithm 1 seeds)."""
        gk = self.gk
        return [(w, d) for w, d in label if gk.has_vertex(w)]

    def _fetch_label(self, v: int) -> LabelEntryList:
        """Label of ``v``; G_k vertices are implicit ``{(v, 0)}`` at no I/O.

        Table 5 relies on this: Type 1 queries (both endpoints in ``G_k``)
        show Time (a) = 0 because "there is no need to lookup the labels".
        Dynamically inserted vertices (§8.3) live in ``G_k`` but may carry
        an enriched label, which must genuinely be fetched.
        """
        if self.hierarchy.in_gk(v) and len(self._labels.get(v, ())) <= 1:
            return [(v, 0)]
        if self._store is not None:
            return self._store.fetch(v)
        return self._labels[v]

    def _fetch_preds(self, v: int) -> Dict[int, Optional[int]]:
        """Predecessor map of ``label(v)`` (path mode only)."""
        if self._preds is None:
            raise QueryError("index was built without with_paths=True")
        if self.hierarchy.in_gk(v):
            return {v: None}
        return self._preds[v]

    def _check_vertex(self, v: int) -> None:
        if v not in self.hierarchy.level_of:
            raise QueryError(f"vertex {v} is not covered by this index")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> IndexStats:
        label_entries = sum(len(entries) for entries in self._labels.values())
        entry_bytes = (
            BYTES_PER_ENTRY_WITH_PRED if self._preds is not None else BYTES_PER_ENTRY
        )
        hierarchy = self.hierarchy
        original_edges = (hierarchy.sizes[0] - hierarchy.num_vertices) if hierarchy.sizes else 0
        return IndexStats(
            k=hierarchy.k,
            num_vertices=hierarchy.num_vertices,
            num_edges=original_edges,
            gk_vertices=self.gk.num_vertices,
            gk_edges=self.gk.num_edges,
            label_entries=label_entries,
            label_bytes=label_entries * entry_bytes,
            build_seconds=hierarchy.build_seconds + self._labeling_seconds,
            hierarchy_seconds=hierarchy.build_seconds,
            labeling_seconds=self._labeling_seconds,
            sigma=hierarchy.sigma,
        )

    @property
    def k(self) -> int:
        return self.hierarchy.k

    def label(self, v: int) -> LabelEntryList:
        """Public read access to ``label(v)`` (no I/O accounting)."""
        self._check_vertex(v)
        if self.hierarchy.in_gk(v):
            return [(v, 0)]
        return self._labels[v]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (
            f"ISLabelIndex(k={s.k}, |V|={s.num_vertices}, "
            f"|V_Gk|={s.gk_vertices}, entries={s.label_entries})"
        )
