"""Vertex labeling — Definition 3 and Algorithm 4 (§4.2, §6.1.4).

Three implementations of the same mathematical object:

* :func:`definition3_label` — the recursive marking procedure of
  Definition 3, labeling one vertex at a time.  Quadratic-ish and only used
  as a reference oracle in tests (the paper makes the same point: "such a
  procedure ... involves much redundant processing").
* :func:`top_down_labels` — Algorithm 4 driven by Corollary 1:
  process levels from ``k-1`` down to ``1``; a vertex's label is the
  min-merge of its (already finished) higher-level neighbours' labels,
  shifted by the connecting edge weights.
* :func:`external_top_down_labels` — the I/O-efficient block nested-loop
  join version of Algorithm 4, for labels that exceed main memory.

A fourth implementation, :func:`repro.core.fastlabels.fast_top_down_labels`,
runs the same top-down pass with a sorted-array k-way min-merge for large
labels; the fast engine (``ISLabelIndex.build(engine="fast")``) uses it.

All three produce, for every vertex, a dict ``{ancestor: d(v, ancestor)}``
where ``d`` upper-bounds the true distance and is exact for the max-level
vertex of any shortest path (Lemma 5).  When ``with_preds`` is requested the
top-down labeler also returns, per entry, the *predecessor* neighbour the
minimum routed through (``None`` for the self entry and for entries realised
by a direct edge) — the §8.1 bookkeeping for path reconstruction.
"""

from __future__ import annotations

import heapq
import struct
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.hierarchy import VertexHierarchy
from repro.core.labels import merge_neighbor_labels
from repro.errors import IndexBuildError
from repro.extmem.blockdev import BlockDevice
from repro.extmem.iomodel import IOStats

__all__ = [
    "definition3_label",
    "top_down_labels",
    "external_top_down_labels",
    "LabelMap",
    "PredMap",
]

#: ``labels[v][w] = d(v, w)`` for every ancestor ``w`` of ``v``.
LabelMap = Dict[int, Dict[int, int]]

#: ``preds[v][w]`` = neighbour ``u`` whose label supplied the minimal
#: ``d(v, w)``; ``None`` when the entry is the self entry or a direct edge.
PredMap = Dict[int, Dict[int, Optional[int]]]


def definition3_label(hierarchy: VertexHierarchy, v: int) -> Dict[int, int]:
    """Compute ``label(v)`` exactly as Definition 3 prescribes.

    A marked vertex of minimum level is repeatedly unmarked and its
    higher-level neighbours relaxed.  Levels only grow along expansions, so
    each vertex is processed once; a lazy heap keyed by level implements
    "take a marked vertex with the smallest level number".
    """
    dist: Dict[int, int] = {v: 0}
    done: set = set()
    heap: List[Tuple[int, int]] = [(hierarchy.level(v), v)]
    while heap:
        level_u, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if level_u >= hierarchy.k:
            continue  # G_k vertices have no higher-level neighbours
        for w, weight in hierarchy.removal_adjacency(u):
            candidate = dist[u] + weight
            if w not in dist:
                dist[w] = candidate
                heapq.heappush(heap, (hierarchy.level(w), w))
            elif candidate < dist[w]:
                dist[w] = candidate
                if w not in done:
                    heapq.heappush(heap, (hierarchy.level(w), w))
    return dist


def top_down_labels(
    hierarchy: VertexHierarchy,
    with_preds: bool = False,
) -> Tuple[LabelMap, Optional[PredMap]]:
    """Algorithm 4 (in-memory): label every vertex top-down.

    Returns ``(labels, preds)``; ``preds`` is ``None`` unless requested.
    """
    labels: LabelMap = {}
    preds: Optional[PredMap] = {} if with_preds else None

    # Initialization: G_k vertices are their own single ancestor.
    for v in hierarchy.gk.vertices():
        labels[v] = {v: 0}
        if preds is not None:
            preds[v] = {v: None}

    # Top-down: level k-1 down to 1.  A level-i vertex's neighbours at
    # removal time all have level > i, so their labels are complete.
    for i in range(hierarchy.k - 1, 0, -1):
        for v in hierarchy.level_vertices(i):
            label_v, pred_v = merge_neighbor_labels(
                v, hierarchy.removal_adjacency(v), labels, with_preds
            )
            labels[v] = label_v
            if preds is not None:
                preds[v] = pred_v
    return labels, preds


# ----------------------------------------------------------------------
# External Algorithm 4: block nested-loop join over disk-resident labels
# ----------------------------------------------------------------------
_LAB_HEADER = struct.Struct("<qI")  # vertex, entry count
_LAB_ENTRY = struct.Struct("<qq")  # ancestor, distance


def _pack_label(vertex: int, label: Dict[int, int]) -> bytes:
    parts = [_LAB_HEADER.pack(vertex, len(label))]
    parts += [_LAB_ENTRY.pack(w, d) for w, d in sorted(label.items())]
    return b"".join(parts)


def _unpack_label(record: bytes) -> Tuple[int, Dict[int, int]]:
    vertex, count = _LAB_HEADER.unpack_from(record, 0)
    label = {}
    offset = _LAB_HEADER.size
    for _ in range(count):
        w, d = _LAB_ENTRY.unpack_from(record, offset)
        label[w] = d
        offset += _LAB_ENTRY.size
    return vertex, label


def external_top_down_labels(
    hierarchy: VertexHierarchy,
    device: Optional[BlockDevice] = None,
    block_vertices: Optional[int] = None,
) -> Tuple[LabelMap, IOStats]:
    """Algorithm 4 with the paper's block nested-loop join (§6.1.4).

    Labels of each level live in a disk file.  To label level ``i``, blocks
    of level-``i`` labels (``B_L``) are held in memory while the upper-level
    label file (``B_U``) is scanned once per block; whenever a scanned label
    belongs to a vertex present in a buffered label, it is merged in — the
    literal lines 8–17 of Algorithm 4, including the merging of *indirect*
    ancestors, which is redundant but harmless (their d-values are already
    minimal via direct neighbours; see DESIGN.md).

    Parameters
    ----------
    hierarchy:
        A built vertex hierarchy.
    device:
        Block device for the label files (a private one by default).
    block_vertices:
        How many level-``i`` labels fit in the ``B_L`` buffer at once —
        the ``b_L(i)/M`` knob of the I/O analysis.  Defaults to the number
        of label headers fitting in half the cost model's memory.

    Returns
    -------
    (labels, stats):
        The complete label map (also left on the device, one file per
        level) and the I/O counters accumulated while joining.
    """
    device = device or BlockDevice()
    if block_vertices is None:
        block_vertices = max(1, device.cost_model.memory // (2 * 64))

    # Initialization (lines 1-4): the top-level label file starts with the
    # single-entry labels of the G_k vertices.
    upper = device.create("labels_upper")
    for v in hierarchy.gk.sorted_vertices():
        upper.append(_pack_label(v, {v: 0}))
    upper.close()

    labels: LabelMap = {v: {v: 0} for v in hierarchy.gk.vertices()}
    snapshot = device.stats.snapshot()

    for i in range(hierarchy.k - 1, 0, -1):
        level_vertices = hierarchy.level_vertices(i)
        finished_rows: List[bytes] = []
        # Process B_L one buffer-load at a time (lines 8-17).
        for start in range(0, len(level_vertices), block_vertices):
            chunk = level_vertices[start : start + block_vertices]
            buffered: Dict[int, Dict[int, int]] = {}
            for v in chunk:
                init = {v: 0}
                for u, w in hierarchy.removal_adjacency(v):
                    init[u] = w
                buffered[v] = init
            # One full scan of B_U per buffer-load.
            for record in upper.records():
                u, label_u = _unpack_label(record)
                for v, label_v in buffered.items():
                    dvu = label_v.get(u)
                    if dvu is None:
                        continue
                    for w, duw in label_u.items():
                        candidate = dvu + duw
                        old = label_v.get(w)
                        if old is None or candidate < old:
                            label_v[w] = candidate
            for v in chunk:
                labels[v] = buffered[v]
                finished_rows.append(_pack_label(v, buffered[v]))
        # The finished level joins B_U for the next (lower) level.
        merged = device.create(f"labels_down_to_{i}")
        for record in upper.records():
            merged.append(record)
        for row in finished_rows:
            merged.append(row)
        merged.close()
        device.delete(upper.name)
        upper = merged

    return labels, device.stats.delta_since(snapshot)
