"""Label containers and label algebra (§4.2, §4.3).

A vertex label is a set of ``(ancestor, d(v, ancestor))`` pairs.  During
construction labels live as dicts (``{ancestor: distance}``); for querying
they are *sorted pair lists*, matching the paper's on-disk layout ("entries
... are sorted by the vertex ID's of the ancestors", §6.2), so that label
intersection is a linear merge.

This module also implements Equation 1 — the pure-label distance answer —
and the vertex-extraction / intersection operators of §4.3.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "LabelEntryList",
    "BYTES_PER_ENTRY",
    "BYTES_PER_ENTRY_WITH_PRED",
    "sort_label",
    "vertex_set",
    "intersect_labels",
    "eq1_distance",
    "eq1_distance_argmin",
    "merge_neighbor_labels",
    "label_nbytes",
]

#: A query-time label: ``(ancestor, distance)`` pairs sorted by ancestor id.
LabelEntryList = Sequence[Tuple[int, int]]

#: Bytes per stored label entry (8-byte ancestor + 8-byte distance),
#: matching :mod:`repro.extmem.labelstore` and the Table 3 size column.
BYTES_PER_ENTRY = 16

#: Bytes per label entry when the §8.1 predecessor hint is stored alongside
#: (8-byte ancestor + 8-byte distance + 8-byte predecessor).
BYTES_PER_ENTRY_WITH_PRED = 24


def sort_label(label: Dict[int, int]) -> List[Tuple[int, int]]:
    """Freeze a build-time label dict into the sorted query-time form."""
    return sorted(label.items())


def vertex_set(label: LabelEntryList) -> List[int]:
    """``V[label(v)]`` — the vertex-extraction operator of §4.3."""
    return [anc for anc, _ in label]


def intersect_labels(
    label_s: LabelEntryList, label_t: LabelEntryList
) -> Iterator[Tuple[int, int, int]]:
    """Merge-intersect two sorted labels.

    Yields ``(w, d(s, w), d(w, t))`` for every common ancestor ``w`` —
    the set ``X = label(s) ∩ label(t)`` with both distances attached.
    """
    i, j = 0, 0
    n, m = len(label_s), len(label_t)
    while i < n and j < m:
        a, da = label_s[i]
        b, db = label_t[j]
        if a == b:
            yield (a, da, db)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1


def eq1_distance(label_s: LabelEntryList, label_t: LabelEntryList) -> float:
    """Equation 1: ``min_{w ∈ X} d(s,w) + d(w,t)``, or ``inf`` if X = ∅."""
    return eq1_distance_argmin(label_s, label_t)[0]


def eq1_distance_argmin(
    label_s: LabelEntryList, label_t: LabelEntryList
) -> Tuple[float, int]:
    """Equation 1 plus the minimizing common ancestor (-1 if X = ∅).

    The argmin is the meeting vertex path reconstruction starts from;
    :func:`eq1_distance` is the thin distance-only wrapper.
    """
    best = math.inf
    best_w = -1
    for w, ds, dt in intersect_labels(label_s, label_t):
        total = ds + dt
        if total < best:
            best = total
            best_w = w
    return best, best_w


def merge_neighbor_labels(
    v: int,
    adjacency: Iterable[Tuple[int, int]],
    labels: Dict[int, Dict[int, int]],
    with_preds: bool = False,
) -> Tuple[Dict[int, int], Optional[Dict[int, Optional[int]]]]:
    """One top-down min-merge step of Algorithm 4 (§6.1.4).

    ``label(v) = {v: 0} min-merged with w -> weight + d_u(w)`` over every
    higher-level neighbour ``u`` reached by ``(u, weight)`` in
    ``adjacency``, reading each neighbour's finished label from ``labels``.
    This is the one code path behind the undirected labeler and *both*
    directions of the directed labeler (§8.2: out-labels merge over
    out-arcs, in-labels over in-arcs).

    When ``with_preds`` is set, also records per entry the predecessor
    neighbour the minimum routed through (``None`` for the self entry and
    for direct edges) — the §8.1 path-reconstruction bookkeeping.
    Returns ``(merged, preds)``; ``preds`` is ``None`` unless requested.
    """
    merged: Dict[int, int] = {v: 0}
    preds: Optional[Dict[int, Optional[int]]] = {v: None} if with_preds else None
    for u, weight in adjacency:
        for w, duw in labels[u].items():
            candidate = weight + duw
            old = merged.get(w)
            if old is None or candidate < old:
                merged[w] = candidate
                if preds is not None:
                    # A direct edge (w == u) needs no predecessor hop;
                    # otherwise the path runs v -> u ~> w.
                    preds[w] = None if w == u else u
    return merged, preds


def label_nbytes(label: Iterable) -> int:
    """Storage footprint of one label at 16 bytes/entry."""
    return BYTES_PER_ENTRY * sum(1 for _ in label)
