"""Query processing — Equation 1 and Algorithm 1 (§4.3, §5.2).

Two query modes:

* **Pure label (Equation 1)** — used for full hierarchies and for Type 1
  queries (both endpoints below level ``k`` and at least one label that
  never reaches ``G_k``); implemented in :mod:`repro.core.labels`.
* **Label-based bidirectional Dijkstra (Algorithm 1)** — used for Type 2
  queries.  The labels seed both priority queues with the distances to
  every ``G_k`` ancestor (exact for the relevant gateways, Theorem 4) and
  the label intersection provides the initial pruning bound ``µ``; the
  bidirectional search stops as soon as ``min(FQ) + min(RQ) ≥ µ``.

Deviation from the paper's pseudocode (see DESIGN.md §4): ``µ`` is updated
against the opposite side's *tentative* distances — on every scanned edge
and on every extraction — not only against settled entries inside the
improvement branch.  Tentative distances are always realizable path lengths
(seed + settled prefix + one edge), so ``µ`` stays an upper bound; without
this, the ``min(FQ) + min(RQ) ≥ µ`` stop can fire between the two
extractions of the meeting vertex (e.g. when the meeting vertex is a label
seed) and the published pseudocode returns an overestimate.

The search is written against adjacency *callables* so the directed variant
(§8.2) can reuse it with successor/predecessor maps.

:func:`csr_label_bidijkstra` is the fast engine's equivalent of
:func:`label_bidijkstra`: identical pruning and ``µ``-update semantics, but
over the flat ``indptr/indices/weights`` arrays of a frozen
:class:`repro.graph.csr.CSRGraph` with dense-int distance maps drawn from a
shared :class:`repro.core.fastlabels.LabelArrayPool` (epoch-stamped, so
nothing is cleared between queries).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SearchStats",
    "BiDijkstraResult",
    "label_bidijkstra",
    "csr_label_bidijkstra",
]

AdjacencyFn = Callable[[int], Iterable[Tuple[int, int]]]
Seed = Tuple[int, int]  # (G_k vertex, label distance)


@dataclass
class SearchStats:
    """Work counters for one Algorithm-1 run (ablation E11 reads these)."""

    settled_forward: int = 0
    settled_reverse: int = 0
    relaxed_edges: int = 0
    heap_pushes: int = 0

    @property
    def settled_total(self) -> int:
        return self.settled_forward + self.settled_reverse


@dataclass
class BiDijkstraResult:
    """Outcome of a label-based bidirectional Dijkstra search.

    ``distance`` is ``µ*`` (may be ``inf``).  ``meet_vertex`` is the ``G_k``
    vertex realising the best meeting, or ``None`` when the initial
    label-intersection bound was never beaten (the caller then reconstructs
    through the Equation-1 argmin ancestor instead).  ``parents_*`` map each
    reached vertex to its search parent (``None`` for label seeds), enabling
    §8.1 path reconstruction.
    """

    distance: float
    meet_vertex: Optional[int]
    stats: SearchStats
    parents_forward: Dict[int, Optional[int]] = field(default_factory=dict)
    parents_reverse: Dict[int, Optional[int]] = field(default_factory=dict)


def label_bidijkstra(
    forward_adj: AdjacencyFn,
    reverse_adj: AdjacencyFn,
    seeds_forward: Iterable[Seed],
    seeds_reverse: Iterable[Seed],
    initial_mu: float = math.inf,
    keep_parents: bool = False,
) -> BiDijkstraResult:
    """Run Algorithm 1's Stage 2 given the Stage-1 seeds and bound.

    Parameters
    ----------
    forward_adj, reverse_adj:
        Adjacency of ``G_k`` for the forward (from ``s``) and reverse
        (towards ``t``) searches; identical for undirected graphs.
    seeds_forward, seeds_reverse:
        ``(v, d(s, v))`` / ``(v, d(t, v))`` for every ``G_k`` ancestor in
        the respective label (lines 1–3).
    initial_mu:
        The label-intersection bound of lines 4–6 (``inf`` disables the
        pruning seed — the E11 ablation).
    keep_parents:
        Record parent pointers for path reconstruction.
    """
    dist_f: Dict[int, int] = {}
    dist_r: Dict[int, int] = {}
    settled_f: Dict[int, int] = {}
    settled_r: Dict[int, int] = {}
    heap_f: List[Tuple[int, int]] = []
    heap_r: List[Tuple[int, int]] = []
    parents_f: Dict[int, Optional[int]] = {}
    parents_r: Dict[int, Optional[int]] = {}
    stats = SearchStats()

    for v, d in seeds_forward:
        if d < dist_f.get(v, math.inf):
            dist_f[v] = d
            heapq.heappush(heap_f, (d, v))
            if keep_parents:
                parents_f[v] = None
    for v, d in seeds_reverse:
        if d < dist_r.get(v, math.inf):
            dist_r[v] = d
            heapq.heappush(heap_r, (d, v))
            if keep_parents:
                parents_r[v] = None

    mu = initial_mu
    meet: Optional[int] = None

    while True:
        min_f = _peek(heap_f, settled_f)
        min_r = _peek(heap_r, settled_r)
        if min_f + min_r >= mu:
            break  # pruning condition of line 8 (covers exhausted queues)

        if min_f <= min_r:
            side_heap, adj = heap_f, forward_adj
            dist_x, dist_o, settled_x = dist_f, dist_r, settled_f
            parents_x = parents_f
        else:
            side_heap, adj = heap_r, reverse_adj
            dist_x, dist_o, settled_x = dist_r, dist_f, settled_r
            parents_x = parents_r

        d, v = heapq.heappop(side_heap)
        if v in settled_x:
            continue
        settled_x[v] = d
        if side_heap is heap_f:
            stats.settled_forward += 1
        else:
            stats.settled_reverse += 1

        # µ update at settle time against the other side's best-known
        # (possibly tentative) distance — covers meetings at label seeds.
        other = dist_o.get(v)
        if other is not None and d + other < mu:
            mu = d + other
            meet = v

        for u, weight in adj(v):
            stats.relaxed_edges += 1
            if u in settled_x:
                continue
            candidate = d + weight
            if candidate < dist_x.get(u, math.inf):
                dist_x[u] = candidate
                heapq.heappush(side_heap, (candidate, u))
                stats.heap_pushes += 1
                if keep_parents:
                    parents_x[u] = v
            # µ update on every scan (DESIGN.md §4): the head may already
            # carry a distance on the other side whose meeting with this
            # side was never evaluated.
            other_u = dist_o.get(u)
            if other_u is not None:
                through = dist_x[u] + other_u
                if through < mu:
                    mu = through
                    meet = u

    return BiDijkstraResult(
        distance=mu,
        meet_vertex=meet,
        stats=stats,
        parents_forward=parents_f,
        parents_reverse=parents_r,
    )


def _peek(heap: List[Tuple[int, int]], settled: Dict[int, int]) -> float:
    """Smallest non-stale key in ``heap`` (``inf`` when exhausted)."""
    while heap and heap[0][1] in settled:
        heapq.heappop(heap)
    return heap[0][0] if heap else math.inf


def csr_label_bidijkstra(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[int],
    seeds_forward: Tuple[Sequence[int], Sequence[int]],
    seeds_reverse: Tuple[Sequence[int], Sequence[int]],
    pool,
    num_vertices: int,
    initial_mu: float = math.inf,
    indptr_r: Optional[Sequence[int]] = None,
    indices_r: Optional[Sequence[int]] = None,
    weights_r: Optional[Sequence[int]] = None,
) -> Tuple[float, int, SearchStats]:
    """Algorithm 1's Stage 2 over a CSR ``G_k`` with dense vertex ids.

    Answer-identical to :func:`label_bidijkstra` (same stopping rule, same
    µ updates on settle and on every scanned edge), but engineered for the
    CPython hot loop: every map is a flat list indexed by dense id —
    distances, settled flags and tentative-dist markers come from ``pool``
    (a :class:`repro.core.fastlabels.LabelArrayPool`) and are invalidated
    by epoch stamping instead of being cleared — and heap entries are
    single ints ``d * n + v`` (same ``(d, v)`` order as the reference's
    tuples, far cheaper to compare).  One extra prune the reference skips:
    an edge relaxation with ``tentative >= µ`` is dropped outright — any
    meeting through it costs at least ``tentative``, and the optimal path's
    relaxations always satisfy ``tentative <= OPT < µ`` until ``µ = OPT``,
    so the returned ``µ*`` is unchanged while the heap stays much smaller.

    Parameters
    ----------
    indptr, indices, weights:
        The CSR arrays of ``G_k`` as Python lists (scalar indexing on
        lists is what makes the inner loop fast in CPython).  For an
        undirected ``G_k`` they serve both search directions; for the
        directed index (§8.2) they are the *forward* (out-arc) arrays.
    indptr_r, indices_r, weights_r:
        Optional transposed CSR arrays the reverse search scans —
        predecessors of each dense vertex.  Defaults to the forward
        arrays (the undirected case).
    seeds_forward, seeds_reverse:
        Each a ``(dense_ids, dists)`` pair of parallel sequences — the
        pre-extracted label seeds of the two endpoints.
    pool:
        The shared search-buffer pool; acquired once per call.
    num_vertices:
        ``|V_{G_k}|`` (dense ids run ``0..num_vertices-1``).
    initial_mu:
        The Equation-1 label-intersection bound (lines 4-6).

    Returns
    -------
    (distance, meet_dense, stats):
        ``distance`` is ``µ*`` (``inf`` when the searches never meet);
        ``meet_dense`` the dense id of the best meeting vertex, ``-1``
        when the initial bound was never beaten.
    """
    n = num_vertices
    if indptr_r is None:
        indptr_r, indices_r, weights_r = indptr, indices, weights
    epoch = pool.acquire(n)
    dist_f, dist_r = pool.dist_f, pool.dist_r
    seen_f, seen_r = pool.seen_f, pool.seen_r
    done_f, done_r = pool.done_f, pool.done_r
    heap_f: List[int] = []
    heap_r: List[int] = []
    push = heapq.heappush
    pop = heapq.heappop

    for v, d in zip(*seeds_forward):
        dist_f[v] = d
        seen_f[v] = epoch
        heap_f.append(d * n + v)
    heapq.heapify(heap_f)
    for v, d in zip(*seeds_reverse):
        dist_r[v] = d
        seen_r[v] = epoch
        heap_r.append(d * n + v)
    heapq.heapify(heap_r)

    mu = initial_mu
    meet = -1
    settled_fwd = settled_rev = relaxed = pushes = 0

    while True:
        while heap_f and done_f[heap_f[0] % n] == epoch:
            pop(heap_f)
        min_f = heap_f[0] // n if heap_f else math.inf
        while heap_r and done_r[heap_r[0] % n] == epoch:
            pop(heap_r)
        min_r = heap_r[0] // n if heap_r else math.inf
        if min_f + min_r >= mu:
            break  # pruning condition of line 8 (covers exhausted queues)

        if min_f <= min_r:
            heap = heap_f
            dist_x, dist_o = dist_f, dist_r
            seen_x, seen_o = seen_f, seen_r
            done_x = done_f
            adj_ptr, adj_idx, adj_wts = indptr, indices, weights
            forward = True
        else:
            heap = heap_r
            dist_x, dist_o = dist_r, dist_f
            seen_x, seen_o = seen_r, seen_f
            done_x = done_r
            adj_ptr, adj_idx, adj_wts = indptr_r, indices_r, weights_r
            forward = False

        d, v = divmod(pop(heap), n)
        done_x[v] = epoch
        if forward:
            settled_fwd += 1
        else:
            settled_rev += 1

        # µ update at settle time against the other side's best-known
        # (possibly tentative) distance — covers meetings at label seeds.
        if seen_o[v] == epoch:
            through = d + dist_o[v]
            if through < mu:
                mu = through
                meet = v

        for p in range(adj_ptr[v], adj_ptr[v + 1]):
            relaxed += 1
            u = adj_idx[p]
            if done_x[u] == epoch:
                continue
            candidate = d + adj_wts[p]
            if candidate >= mu:
                continue  # cannot beat µ through here (see docstring)
            if seen_x[u] != epoch or candidate < dist_x[u]:
                dist_x[u] = candidate
                seen_x[u] = epoch
                push(heap, candidate * n + u)
                pushes += 1
            # µ update on every scan (DESIGN.md §4): the head may already
            # carry a distance on the other side whose meeting with this
            # side was never evaluated.
            if seen_o[u] == epoch:
                through = dist_x[u] + dist_o[u]
                if through < mu:
                    mu = through
                    meet = u

    stats = SearchStats(
        settled_forward=settled_fwd,
        settled_reverse=settled_rev,
        relaxed_edges=relaxed,
        heap_pushes=pushes,
    )
    return mu, meet, stats
