"""Distance-preserving graph reduction — Algorithm 3 (§6.1.2, Lemma 2).

``G_{i+1}`` is ``G_i`` minus the independent set ``L_i``, plus *augmenting
edges*: for every removed ``v`` and every pair ``u, w ∈ adj_{G_i}(v)``, the
edge ``(u, w)`` with weight ``ω(u,v) + ω(v,w)`` (min-merged if it already
exists).  Because ``L_i`` is independent, all of ``v``'s neighbours survive
into ``G_{i+1}``, so this 2-hop self join is exactly sufficient (the proof
of Lemma 2).

For §8.1 path reconstruction the reduction optionally records, per edge, the
*intermediate vertex* whose removal created (or last improved) it.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.extmem.blockdev import BlockDevice
from repro.extmem.extgraph import ExternalGraph, pack_row, unpack_row
from repro.extmem.extsort import external_sort
from repro.graph.graph import Graph

__all__ = ["reduce_graph_inplace", "reduce_graph", "external_reduce", "EdgeHints"]

Adjacency = List[Tuple[int, int]]

#: ``hints[(u, w)] = v`` (with ``u < w``) records that the *current* weight
#: of edge ``(u, w)`` decomposes as the 2-path ``u - v - w``.  Edges whose
#: current weight is their original input weight carry no entry (the paper's
#: ``φ``).
EdgeHints = Dict[Tuple[int, int], int]


def reduce_graph_inplace(
    graph: Graph,
    level_set: Iterable[int],
    adj_of: Dict[int, Adjacency],
    hints: Optional[EdgeHints] = None,
) -> Graph:
    """Turn ``G_i`` into ``G_{i+1}`` in place and return it.

    Parameters
    ----------
    graph:
        ``G_i``; mutated into ``G_{i+1}``.
    level_set:
        ``L_i`` — must be an independent set of ``graph``.
    adj_of:
        ``ADJ(L_i)`` as produced by Algorithm 2.
    hints:
        Optional §8.1 intermediate-vertex map, updated for every augmenting
        edge inserted or improved.
    """
    # Lines 1-2: remove L_i and its adjacency lists.
    for v in level_set:
        graph.remove_vertex(v)
    # Lines 3-8: self join each removed adjacency list into augmenting edges.
    for v, adjacency in adj_of.items():
        for a in range(len(adjacency)):
            u, wu = adjacency[a]
            for b in range(a + 1, len(adjacency)):
                w, ww = adjacency[b]
                weight = wu + ww
                if graph.merge_edge(u, w, weight) and hints is not None:
                    hints[(u, w) if u < w else (w, u)] = v
    return graph


def reduce_graph(
    graph: Graph,
    level_set: Iterable[int],
    adj_of: Dict[int, Adjacency],
    hints: Optional[EdgeHints] = None,
) -> Graph:
    """Non-mutating :func:`reduce_graph_inplace` (returns a new graph)."""
    return reduce_graph_inplace(graph.copy(), level_set, adj_of, hints)


def external_reduce(
    device: BlockDevice,
    graph: ExternalGraph,
    level_set: Iterable[int],
    adj_li: ExternalGraph,
    output_name: Optional[str] = None,
) -> ExternalGraph:
    """I/O-efficient Algorithm 3: build disk-resident ``G_{i+1}``.

    ``adj_li`` holds the ``ADJ(L_i)`` rows written by
    :func:`repro.core.independent_set.external_independent_set`.

    The implementation follows the paper's three phases: (1) scan ``G_i``
    dropping ``L_i`` rows and slots, (2) self-join ``ADJ(L_i)`` into the
    augmenting-edge array ``E_A`` (both directions) and sort it by vertex
    ids, (3) merge-scan ``E_A`` with the reduced rows, min-merging weights.
    """
    removed = set(level_set)

    # Phase 1 (line 2): remove L_i rows and slots pointing into L_i.
    reduced = device.create()
    for vertex, adjacency in graph.rows():
        if vertex in removed:
            continue
        kept = [(u, w) for u, w in adjacency if u not in removed]
        reduced.append(pack_row(vertex, kept))
    reduced.close()

    # Phase 2 (lines 3-7): emit both directions of each augmenting edge.
    ea = device.create()
    for _, adjacency in adj_li.rows():
        for a in range(len(adjacency)):
            u, wu = adjacency[a]
            for b in range(a + 1, len(adjacency)):
                w, ww = adjacency[b]
                ea.append(_pack_edge(u, w, wu + ww))
                ea.append(_pack_edge(w, u, wu + ww))
    ea.close()
    ea_sorted = external_sort(device, ea, key=_edge_key)
    device.delete(ea.name)

    # Phase 3 (line 8): merge E_A into the reduced adjacency file.
    out = device.create(output_name)
    num_vertices = 0
    slot_count = 0
    edge_stream = _dedup_min(_edges(ea_sorted))
    pending = next(edge_stream, None)
    for vertex, adjacency in _rows_of(reduced):
        merged: Dict[int, int] = dict(adjacency)
        while pending is not None and pending[0] == vertex:
            _, head, weight = pending
            if head not in merged or weight < merged[head]:
                merged[head] = weight
            pending = next(edge_stream, None)
        row = sorted(merged.items())
        out.append(pack_row(vertex, row))
        num_vertices += 1
        slot_count += len(row)
    if pending is not None:
        # Augmenting edges always join surviving vertices; leftovers mean
        # the inputs were inconsistent.
        raise ValueError(
            f"augmenting edge {pending} references a vertex outside G_{{i+1}}"
        )
    out.close()
    device.delete(reduced.name)
    device.delete(ea_sorted.name)
    return ExternalGraph(device, out, num_vertices, slot_count // 2)


# ----------------------------------------------------------------------
# Edge-record helpers for the E_A file
# ----------------------------------------------------------------------
_EDGE = struct.Struct("<qqq")


def _pack_edge(u: int, v: int, w: int) -> bytes:
    return _EDGE.pack(u, v, w)


def _edge_key(record: bytes) -> Tuple[int, int, int]:
    return _EDGE.unpack(record)


def _edges(block_file) -> Iterable[Tuple[int, int, int]]:
    for record in block_file.records():
        yield _EDGE.unpack(record)


def _dedup_min(edges: Iterable[Tuple[int, int, int]]) -> Iterable[Tuple[int, int, int]]:
    """Collapse duplicate ``(u, v)`` pairs to their minimum weight.

    The sorted ``E_A`` file may contain the same augmenting edge from
    several removed vertices; the first record after sorting by
    ``(u, v, w)`` carries the minimum weight.
    """
    last: Optional[Tuple[int, int]] = None
    for u, v, w in edges:
        if (u, v) != last:
            last = (u, v)
            yield (u, v, w)


def _rows_of(block_file) -> Iterable[Tuple[int, Adjacency]]:
    for record in block_file.records():
        yield unpack_row(record)
