"""Array-native directed query engine — the §8.2 index's "fast" backend.

The directed index carries *two* labels per vertex (out-ancestors and
in-ancestors) and its Type-2 search walks ``G_k`` forwards over successors
and backwards over predecessors.  :class:`DirectedFastEngine` is the
directed counterpart of :class:`repro.core.fastlabels.FastEngine`:

* both label tables are packed as sorted parallel ``int64`` arrays with
  the shared :func:`repro.core.fastlabels.pack_entry_lists` freeze (one
  batched conversion + one vectorized ``G_k``-seed extraction per table);
* ``G_k`` freezes into a :class:`repro.graph.csr.CSRDiGraph` — forward
  CSR arrays over out-arcs plus the transposed copy the backward search
  scans — and Algorithm 1 runs over the flat arrays via
  :func:`repro.core.query.csr_label_bidijkstra` with the epoch-stamped
  :class:`repro.core.fastlabels.LabelArrayPool` buffers;
* Equation 1 is the merge intersection of ``LABEL_out(s)`` with
  ``LABEL_in(t)`` (scalar two-pointer fallback for small labels), and
  :meth:`distances` vectorizes it across the whole batch with one
  :func:`repro.core.fastlabels.batch_eq1` pass;
* when the directed ``G_k`` fits the all-pairs memory budget, a lazily
  row-filled table of one-way ``dist_{G_k}(a -> b)`` answers the search
  stage with one fancy-indexed reduction — the Theorem 4 decomposition
  applied to out-seeds x in-seeds.

Like the undirected engine it freezes lazily on first query, so directed
index build time is unchanged, and it is read-only *between
invalidations*: §8.3 updates report the touched vertices through the
shared :meth:`repro.core.fastlabels.PackedEngineBase.invalidate`, which
re-packs just the dirty out/in labels, rebuilds the per-direction CSR
views, and repairs the one-way table through the inserted vertex (forward
row by Dijkstra over the out-arcs, backward distances over the transposed
arrays) instead of dropping everything.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.engines import CAP_LOCAL, DIRECTED, register_engine
from repro.core.fastlabels import (
    ArrayLabel,
    LabelArrayPool,
    LabelTable,
    PackedEngineBase,
    _EMPTY,
    apsp_ceiling,
    eq1_merge,
)
from repro.core.labels import eq1_distance_argmin
from repro.graph.csr import CSRDiGraph
from repro.graph.digraph import DiGraph

__all__ = ["DirectedFastEngine"]


class DirectedFastEngine(PackedEngineBase):
    """Frozen array-native query structures of one built directed index.

    The directed ``"fast"`` implementation of the
    :class:`repro.core.engines.QueryEngine` protocol; the query hot paths
    (single, batch, table reduction, row fills) live in
    :class:`repro.core.fastlabels.PackedEngineBase` and run here over the
    out-label/in-label tables and the per-direction CSR arrays.
    Construction is lazy — ``__init__`` records the label tables and
    ``G_k``; the first query (or an explicit :meth:`freeze`) builds the
    per-direction CSR views and packs both tables.
    """

    __slots__ = (
        "gk",
        "csr",
        "out_lists",
        "in_lists",
        "out_table",
        "in_table",
        "pool",
        "indptr",
        "indices",
        "weights",
        "rindptr",
        "rindices",
        "rweights",
        "frozen",
        "apsp_max_gk",
        "incremental_max_fraction",
        "_apsp",
        "_apsp_done",
    )

    #: Scalar-merge threshold, as in the undirected engine.
    EQ1_SMALL = 32

    def __init__(
        self,
        gk: DiGraph,
        out_lists: Dict[int, List[Tuple[int, int]]],
        in_lists: Dict[int, List[Tuple[int, int]]],
        apsp_budget_bytes: Optional[int] = None,
    ) -> None:
        self.gk = gk
        self.out_lists = out_lists
        self.in_lists = in_lists
        self.pool = LabelArrayPool()
        self.frozen = False
        #: All-pairs table ceiling from the shared memory budget (see
        #: :func:`repro.core.fastlabels.apsp_ceiling`); the directed table
        #: stores one-way distances, so the cost model is identical.
        self.apsp_max_gk = apsp_ceiling(apsp_budget_bytes)
        #: Dirty-set fraction above which ``invalidate(dirty=...)`` falls
        #: back to a full re-freeze; ``<= 0`` disables the incremental path.
        self.incremental_max_fraction = self.INCREMENTAL_MAX_FRACTION
        self.csr: Optional[CSRDiGraph] = None
        self.indptr: List[int] = []
        self.indices: List[int] = []
        self.weights: List[int] = []
        self.rindptr: List[int] = []
        self.rindices: List[int] = []
        self.rweights: List[int] = []
        self.out_table: Optional[LabelTable] = None
        self.in_table: Optional[LabelTable] = None
        self._apsp: Optional[np.ndarray] = None
        self._apsp_done: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------
    def freeze(self) -> "DirectedFastEngine":
        """Materialize the array structures (idempotent)."""
        if self.frozen:
            return self
        self.frozen = True
        self._rebuild_csr()
        ids = self.csr.ids_array
        self.out_table = LabelTable.pack(self.out_lists, {}, ids)
        self.in_table = LabelTable.pack(self.in_lists, {}, ids)
        n = self.csr.num_vertices
        if 0 < n <= self.apsp_max_gk:
            self._apsp = np.full((n, n), np.inf)
            self._apsp_done = np.zeros(n, dtype=bool)
        return self

    def _drop_frozen(self) -> None:
        """Full invalidation: drop the frozen structures; the next query
        re-freezes both label tables from the current entry lists."""
        self.frozen = False
        self.csr = None
        self.indptr = []
        self.indices = []
        self.weights = []
        self.rindptr = []
        self.rindices = []
        self.rweights = []
        self.out_table = None
        self.in_table = None
        self._apsp = None
        self._apsp_done = None

    # Backwards-compatible views of the frozen tables (tests/debugging).
    @property
    def out_labels(self) -> Dict[int, ArrayLabel]:
        return self.out_table.labels if self.out_table is not None else {}

    @property
    def in_labels(self) -> Dict[int, ArrayLabel]:
        return self.in_table.labels if self.in_table is not None else {}

    def _num_labels(self) -> int:
        return len(self.out_lists) + len(self.in_lists)

    def _rebuild_csr(self) -> None:
        self.csr = CSRDiGraph(self.gk)
        self.indptr = self.csr.indptr.tolist()
        self.indices = self.csr.indices.tolist()
        self.weights = self.csr.weights.tolist()
        self.rindptr = self.csr.rindptr.tolist()
        self.rindices = self.csr.rindices.tolist()
        self.rweights = self.csr.rweights.tolist()

    def _repack(self, dirty, gk_ids) -> None:
        self.out_table.repack(dirty, self.out_lists, gk_ids)
        self.in_table.repack(dirty, self.in_lists, gk_ids)

    def _backward_row(self, dx: int) -> np.ndarray:
        # One-way table: d'(a -> x) comes from a Dijkstra over the
        # transposed arrays (the backward search's adjacency).
        return np.asarray(
            self._dijkstra_row(dx, self.rindptr, self.rindices, self.rweights),
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Labels and seeds
    # ------------------------------------------------------------------
    def out_label(self, v: int) -> ArrayLabel:
        """Array out-label of ``v`` (implicit ``([v], [0])`` for G_k ids)."""
        if not self.frozen:
            self.freeze()
        got = self.out_table.label(v)
        if got is not None:
            return got
        return np.array([v], dtype=np.int64), np.zeros(1, dtype=np.int64)

    def in_label(self, v: int) -> ArrayLabel:
        """Array in-label of ``v`` (implicit ``([v], [0])`` for G_k ids)."""
        if not self.frozen:
            self.freeze()
        got = self.in_table.label(v)
        if got is not None:
            return got
        return np.array([v], dtype=np.int64), np.zeros(1, dtype=np.int64)

    def eq1(self, source: int, target: int) -> Tuple[float, int]:
        """Equation 1 over ``LABEL_out(source)`` ∩ ``LABEL_in(target)``.

        Hybrid dispatch as in the undirected engine: the scalar two-pointer
        merge for small-by-small, the vectorized merge otherwise.
        """
        entries_s = self.out_lists.get(source)
        entries_t = self.in_lists.get(target)
        if (
            entries_s is not None
            and entries_t is not None
            and len(entries_s) <= self.EQ1_SMALL
            and len(entries_t) <= self.EQ1_SMALL
        ):
            return eq1_distance_argmin(entries_s, entries_t)
        return eq1_merge(self.out_label(source), self.in_label(target))

    def seeds_out(self, v: int) -> Tuple[List[int], List[int]]:
        """Dense-id forward seeds: out-label entries lying in ``G_k``."""
        if not self.frozen:
            self.freeze()
        got = self.out_table.seeds(v)
        if got is not None:
            return got
        return self._fallback_seeds(v)[:2]

    def seeds_in(self, v: int) -> Tuple[List[int], List[int]]:
        """Dense-id backward seeds: in-label entries lying in ``G_k``."""
        if not self.frozen:
            self.freeze()
        got = self.in_table.seeds(v)
        if got is not None:
            return got
        return self._fallback_seeds(v)[:2]

    def seeds_out_np(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """The forward seeds as numpy arrays (for the table reduction)."""
        if not self.frozen:
            self.freeze()
        got = self.out_table.seeds_np(v)
        if got is not None:
            return got
        fallback = self._fallback_seeds(v)
        return fallback[2], fallback[3]

    def seeds_in_np(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """The backward seeds as numpy arrays (for the table reduction)."""
        if not self.frozen:
            self.freeze()
        got = self.in_table.seeds_np(v)
        if got is not None:
            return got
        fallback = self._fallback_seeds(v)
        return fallback[2], fallback[3]

    def _fallback_seeds(self, v: int):
        """Seeds of a vertex missing from the label tables (bare G_k id)."""
        if self.csr.has_vertex(v):
            dense = self.csr.dense_of[v]
            return (
                [dense],
                [0],
                np.array([dense], dtype=np.int64),
                np.zeros(1, dtype=np.int64),
            )
        return [], [], _EMPTY, _EMPTY

    # PackedEngineBase hooks: the forward side queries out-labels, the
    # reverse side in-labels, and the backward search scans the transposed
    # CSR arrays.
    _label_f = out_label
    _label_r = in_label
    _seeds_f = seeds_out
    _seeds_r = seeds_in
    _seeds_f_np = seeds_out_np
    _seeds_r_np = seeds_in_np

    def _search_arrays(self):
        return (
            (self.indptr, self.indices, self.weights),
            (self.rindptr, self.rindices, self.rweights),
        )

    def nbytes(self) -> int:
        """Approximate footprint: both CSR directions plus packed labels."""
        if not self.frozen:
            self.freeze()
        total = self.csr.nbytes() + self.out_table.nbytes() + self.in_table.nbytes()
        if self._apsp is not None:
            total += int(self._apsp.nbytes)
        return total


register_engine(DIRECTED, DirectedFastEngine.name, DirectedFastEngine, {CAP_LOCAL})
