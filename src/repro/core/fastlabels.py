"""Array-native label storage — the "fast" query engine's data plane.

The reference implementation keeps every query-time label as a Python list
of ``(ancestor, distance)`` tuples and runs Algorithm 1 over the dict
adjacency of ``G_k``.  That is faithful but slow: hub-labeling schemes live
or die on memory layout and scan speed.  This module provides the
flat-array equivalents behind ``ISLabelIndex.build(..., engine="fast")``:

* all labels live in **one packed pair of parallel ``int64`` arrays**
  (ancestors, distances) sorted by ancestor id within each label — the
  paper's on-disk layout (§6.2); per-vertex labels are zero-copy views, so
  freezing the engine is a single batch conversion, and Equation 1 is a
  merge over two sorted arrays (:func:`eq1_merge`, with a scalar fallback
  for tiny labels where numpy call overhead dominates);
* :func:`fast_top_down_labels` runs Algorithm 4's merge as a sorted-array
  k-way min-merge (``np.lexsort`` + first-of-group selection) whenever the
  merged label is large, falling back to the dict merge below the measured
  crossover;
* :class:`FastEngine` freezes ``G_k`` into a :class:`CSRGraph` once at
  build time, pre-extracts every label's Algorithm-1 seeds (the entries
  whose ancestor lies in ``G_k``) as dense-id arrays with a single
  vectorized membership pass, and owns the shared :class:`LabelArrayPool`
  of search buffers so batch queries stop re-allocating per call;
* when ``G_k`` is small (the common case for the paper's σ-rule on
  well-shrinking graphs), the engine answers the search stage from a
  lazily-filled **all-pairs distance table** over ``G_k``: by the
  decomposition behind Theorem 4 the query equals
  ``min(µ0, min_{a,b} d(s,a) + dist_Gk(a,b) + d(b,t))`` over the two seed
  sets, which one fancy-indexed numpy reduction evaluates — answers are
  bit-identical to running Algorithm 1's bidirectional search.

The engine is read-only *between invalidations*: dynamic maintenance
(§8.3) mutates the entry lists in place and then reports the touched
vertices through :meth:`PackedEngineBase.invalidate` — the engine either
re-packs just those labels (splicing fresh arrays over the stale views and
repairing the ``G_k`` structures in place) or, past a dirtiness threshold
or after a ``G_k`` change it cannot localize, drops everything and
re-freezes from the current labels on the next query.  See
:class:`repro.core.updates.DynamicISLabelIndex`, which drives this hook
after every update so dynamic indexes keep serving from the fast engine.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.engines import CAP_LOCAL, UNDIRECTED, register_engine
from repro.envvars import read_env_float
from repro.core.hierarchy import VertexHierarchy
from repro.core.labels import eq1_distance_argmin
from repro.core.query import csr_label_bidijkstra
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph

__all__ = [
    "ArrayLabel",
    "as_array_label",
    "array_label_entries",
    "eq1_merge",
    "batch_eq1",
    "batch_table_stage",
    "pack_entry_lists",
    "FlatLabels",
    "LabelTable",
    "fast_top_down_labels",
    "LabelArrayPool",
    "FastEngine",
    "DEFAULT_APSP_BUDGET_BYTES",
    "APSP_BUDGET_ENV",
    "apsp_ceiling",
]

#: A query-time label as parallel arrays: ``(ancestors, dists)``, both
#: ``int64``, sorted by ancestor id.
ArrayLabel = Tuple[np.ndarray, np.ndarray]

#: Below this many merged entries Algorithm 4's per-vertex merge is faster
#: as a plain dict than as numpy concatenate + lexsort (call overhead);
#: measured crossover on CPython 3.11 / numpy 2.x.
_SMALL_MERGE = 48

#: Incremental invalidation always accepts dirty sets up to this size even
#: when the fractional threshold would be smaller — re-packing a handful of
#: labels is cheaper than any full freeze regardless of index size.
_INCREMENTAL_MIN_DIRTY = 64

_EMPTY = np.empty(0, dtype=np.int64)

#: Default all-pairs-table memory budget: 32 MB of float64 cells, the
#: ceiling PR 1 hard-coded as ``APSP_MAX_GK = 2048`` (2048² x 8 bytes).
DEFAULT_APSP_BUDGET_BYTES = 32 * 1024 * 1024

#: Environment override for the table budget, in megabytes.  Accepted
#: values: a finite, non-negative number (fractional allowed, e.g.
#: ``"0.5"`` for half a megabyte); ``0`` disables the table.  Anything
#: else — non-numeric text, a negative number, ``nan``/``inf`` — raises
#: :class:`ValueError` naming the variable instead of silently disabling
#: the table or propagating a bare parse error.
APSP_BUDGET_ENV = "REPRO_APSP_BUDGET_MB"


def apsp_ceiling(budget_bytes: Optional[int] = None) -> int:
    """Largest ``|V_Gk|`` whose float64 all-pairs table fits ``budget_bytes``.

    ``None`` resolves the budget from :data:`APSP_BUDGET_ENV` (megabytes;
    see its docstring for the accepted range — invalid values raise
    :class:`ValueError`), falling back to
    :data:`DEFAULT_APSP_BUDGET_BYTES` — at the default 32 MB the ceiling
    is 2048 vertices, matching the PR 1 constant.  An explicit
    non-positive ``budget_bytes`` disables the table (ceiling 0).

    Unlike the other knobs a *blank* env value here is invalid, not
    unset: an operator who set the variable to an empty string must get
    an error, not a silently disabled table.
    """
    if budget_bytes is None:
        megabytes = read_env_float(
            APSP_BUDGET_ENV,
            what="all-pairs table budget in megabytes",
            blank_is_unset=False,
        )
        if megabytes is None:
            budget_bytes = DEFAULT_APSP_BUDGET_BYTES
        else:
            budget_bytes = int(megabytes * 1024 * 1024)
    if budget_bytes <= 0:
        return 0
    return math.isqrt(budget_bytes // 8)


def as_array_label(entries: Sequence[Tuple[int, int]]) -> ArrayLabel:
    """Freeze a sorted ``(ancestor, distance)`` entry list into arrays."""
    if not entries:
        return _EMPTY, _EMPTY
    anc, d = zip(*entries)
    return np.array(anc, dtype=np.int64), np.array(d, dtype=np.int64)


def array_label_entries(label: ArrayLabel) -> List[Tuple[int, int]]:
    """Materialize an array label back into the list-of-tuples form."""
    ancestors, dists = label
    return list(zip(ancestors.tolist(), dists.tolist()))


def eq1_merge(label_s: ArrayLabel, label_t: ArrayLabel) -> Tuple[float, int]:
    """Equation 1 over two array labels: ``(distance, argmin ancestor)``.

    Merge-intersects the sorted ancestor arrays and minimizes
    ``d(s, w) + d(w, t)`` over the common ancestors ``w``; returns
    ``(inf, -1)`` when the intersection is empty.
    """
    anc_s, d_s = label_s
    anc_t, d_t = label_t
    if len(anc_s) == 0 or len(anc_t) == 0:
        return math.inf, -1
    common, pos_s, pos_t = np.intersect1d(
        anc_s, anc_t, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        return math.inf, -1
    sums = d_s[pos_s] + d_t[pos_t]
    j = int(np.argmin(sums))
    return int(sums[j]), int(common[j])


def batch_eq1(
    labels_s: Sequence[ArrayLabel], labels_t: Sequence[ArrayLabel]
) -> np.ndarray:
    """Equation 1 for a whole batch in one ``searchsorted`` pass.

    ``labels_s[i]`` and ``labels_t[i]`` are the two (sorted, unique) array
    labels of query ``i``; the result is a float array of per-query
    Equation-1 distances (``inf`` where the intersection is empty).

    The trick is to make one flat sorted key space out of the stacked
    labels: entry ``(i, ancestor)`` becomes the scalar
    ``i * span + (ancestor - min_ancestor)`` with ``span`` wide enough that
    queries never overlap, so the concatenated target keys stay globally
    sorted and a single ``searchsorted`` of all source keys finds every
    intersection in the batch at once.  Per-query minima then come from one
    ``np.minimum.at`` scatter over the hits.  Falls back to the per-pair
    merge if the key space would overflow ``int64`` (absurd vertex ids).
    """
    q = len(labels_s)
    out = np.full(q, np.inf)
    if q == 0:
        return out
    len_s = np.array([len(lab[0]) for lab in labels_s], dtype=np.int64)
    len_t = np.array([len(lab[0]) for lab in labels_t], dtype=np.int64)
    if not len_s.sum() or not len_t.sum():
        return out
    anc_s = np.concatenate([lab[0] for lab in labels_s])
    d_s = np.concatenate([lab[1] for lab in labels_s])
    anc_t = np.concatenate([lab[0] for lab in labels_t])
    d_t = np.concatenate([lab[1] for lab in labels_t])

    lo = min(int(anc_s.min()), int(anc_t.min()))
    hi = max(int(anc_s.max()), int(anc_t.max()))
    span = hi - lo + 1
    if span > (2**62) // max(q, 1):
        for i, (ls, lt) in enumerate(zip(labels_s, labels_t)):
            out[i] = eq1_merge(ls, lt)[0]
        return out

    qid_s = np.repeat(np.arange(q, dtype=np.int64), len_s)
    qid_t = np.repeat(np.arange(q, dtype=np.int64), len_t)
    key_s = qid_s * span + (anc_s - lo)
    key_t = qid_t * span + (anc_t - lo)
    pos = np.searchsorted(key_t, key_s)
    pos[pos == len(key_t)] = 0  # clamp; the equality below rejects these
    hit = key_t[pos] == key_s
    if not hit.any():
        return out
    sums = (d_s[hit] + d_t[pos[hit]]).astype(np.float64)
    np.minimum.at(out, qid_s[hit], sums)
    return out


#: A single query whose seed cross product exceeds this many candidate
#: pairs is answered on its own instead of joining the flat batch gather.
_TABLE_FLAT_CAP = 4096


def batch_table_stage(
    table: np.ndarray,
    done: np.ndarray,
    fill_row,
    seeds_f: Sequence[Tuple[np.ndarray, np.ndarray]],
    seeds_r: Sequence[Tuple[np.ndarray, np.ndarray]],
    mu0s: np.ndarray,
) -> List[float]:
    """Stage-2 answers for a whole batch over the all-pairs ``G_k`` table.

    ``seeds_f[i]``/``seeds_r[i]`` are query ``i``'s dense-id seed arrays
    and ``mu0s[i]`` its Equation-1 bound.  Queries with an empty seed side
    are answered by the bound alone.  Everything else is flattened into one
    candidate list — the cross product of each query's seed pairs — so a
    single fancy-indexed gather ``table[A, B]`` plus one
    ``np.minimum.reduceat`` over the query boundaries evaluates the whole
    batch's Theorem-4 reduction at once.  The cross products themselves
    are built by segment arithmetic over the *concatenated* seed arrays
    (one ``arange`` + a handful of ``repeat``/gather passes for the whole
    batch) instead of per-query ``repeat``/``tile`` calls, whose fixed
    numpy overhead used to dominate warm batches of small labels.
    Missing table rows are filled on demand via ``fill_row``.
    """
    q = len(seeds_f)
    out: List[float] = [math.inf] * q
    vec: List[int] = []
    ns_list: List[int] = []
    nt_list: List[int] = []
    s_parts: List[np.ndarray] = []
    t_parts: List[np.ndarray] = []
    ds_parts: List[np.ndarray] = []
    dt_parts: List[np.ndarray] = []
    for i in range(q):
        ids_s, d_s = seeds_f[i]
        ids_t, d_t = seeds_r[i]
        ns, nt = len(ids_s), len(ids_t)
        mu0 = float(mu0s[i])
        if not ns or not nt:
            out[i] = int(mu0) if mu0 != math.inf else mu0
            continue
        if ns * nt > _TABLE_FLAT_CAP:
            # Pathologically seedy pair: answer it alone rather than
            # blowing up the flat candidate array.
            for a in ids_s.tolist():
                if not done[a]:
                    fill_row(a)
            sub = table[np.ix_(ids_s, ids_t)]
            best = float((sub + d_s[:, None] + d_t[None, :]).min())
            if best >= mu0:
                best = mu0
            out[i] = int(best) if best != math.inf else best
            continue
        vec.append(i)
        ns_list.append(ns)
        nt_list.append(nt)
        s_parts.append(ids_s)
        t_parts.append(ids_t)
        ds_parts.append(d_s)
        dt_parts.append(d_t)
    if vec:
        seed_s = np.concatenate(s_parts)
        seed_t = np.concatenate(t_parts)
        dist_s = np.concatenate(ds_parts)
        dist_t = np.concatenate(dt_parts)
        ns_arr = np.array(ns_list, dtype=np.int64)
        nt_arr = np.array(nt_list, dtype=np.int64)
        counts = ns_arr * nt_arr
        starts = np.zeros(len(vec), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        # Row-major cross product per query via segment arithmetic:
        # candidate j of query i has local index l = j - starts[i];
        # its source seed is l // nt_i (offset into seed_s's segment)
        # and its target seed l % nt_i (offset into seed_t's segment).
        local = np.arange(int(counts.sum()), dtype=np.int64) - np.repeat(
            starts, counts
        )
        nt_rep = np.repeat(nt_arr, counts)
        s_off = np.zeros(len(vec), dtype=np.int64)
        np.cumsum(ns_arr[:-1], out=s_off[1:])
        t_off = np.zeros(len(vec), dtype=np.int64)
        np.cumsum(nt_arr[:-1], out=t_off[1:])
        a_idx = np.repeat(s_off, counts) + local // nt_rep
        b_idx = np.repeat(t_off, counts) + local % nt_rep
        a_ids = seed_s[a_idx]
        b_ids = seed_t[b_idx]
        for a in np.unique(a_ids[~done[a_ids]]).tolist():
            fill_row(a)
        vals = table[a_ids, b_ids] + dist_s[a_idx] + dist_t[b_idx]
        mins = np.minimum.reduceat(vals, starts)
        best_all = np.minimum(mins, mu0s[vec])
        for j, i in enumerate(vec):
            best = float(best_all[j])
            out[i] = int(best) if best != math.inf else best
    return out


def pack_entry_lists(
    entry_lists: Dict[int, List[Tuple[int, int]]],
    prebuilt: Dict[int, ArrayLabel],
    gk_ids: np.ndarray,
):
    """Freeze entry-list labels into packed arrays plus dense ``G_k`` seeds.

    The shared engine-freeze primitive behind both the undirected
    :class:`FastEngine` and the directed engine's two label tables.  Labels
    already merged vectorially (``prebuilt``) are adopted as-is; the rest
    (the small-label majority) become views over two backing arrays built
    with one batched conversion.  The concatenated ancestor array then
    drives the vectorized seed extraction: the dense id of a ``G_k`` vertex
    equals its rank among the sorted ``G_k`` ids (CSR order), so membership
    and dense translation come from a single ``searchsorted`` over all
    labels at once.

    Returns ``(labels, seed_ids, seed_dists, seed_ids_np, seed_dists_np)``
    keyed by vertex: the packed :data:`ArrayLabel` per vertex and its
    Algorithm-1 seeds as Python lists and as numpy arrays.
    """
    n = len(gk_ids)
    order = list(entry_lists)
    labels: Dict[int, ArrayLabel] = {}
    seed_ids: Dict[int, List[int]] = {}
    seed_dists: Dict[int, List[int]] = {}
    seed_ids_np: Dict[int, np.ndarray] = {}
    seed_dists_np: Dict[int, np.ndarray] = {}

    counts: List[int] = []
    flat_anc: List[int] = []
    flat_d: List[int] = []
    packed: List[Tuple[int, int]] = []  # (order position, start offset)
    for i, v in enumerate(order):
        entries = entry_lists[v]
        counts.append(len(entries))
        ready = prebuilt.get(v)
        if ready is not None:
            labels[v] = ready
            continue
        packed.append((i, len(flat_anc)))
        if entries:
            anc, d = zip(*entries)
            flat_anc.extend(anc)
            flat_d.extend(d)
    pack_anc = np.array(flat_anc, dtype=np.int64)
    pack_d = np.array(flat_d, dtype=np.int64)
    for i, start in packed:
        v = order[i]
        labels[v] = (
            pack_anc[start : start + counts[i]],
            pack_d[start : start + counts[i]],
        )

    total = sum(counts)
    if n == 0 or total == 0:
        for v in order:
            seed_ids[v] = []
            seed_dists[v] = []
            seed_ids_np[v] = _EMPTY
            seed_dists_np[v] = _EMPTY
        return labels, seed_ids, seed_dists, seed_ids_np, seed_dists_np

    all_anc = np.concatenate([labels[v][0] for v in order])
    all_d = np.concatenate([labels[v][1] for v in order])
    pos = np.searchsorted(gk_ids, all_anc)
    pos[pos == n] = 0  # clamp before the gather; equality below rejects these
    mask = gk_ids[pos] == all_anc
    sel_pos = pos[mask]
    sel_d = all_d[mask]
    sel_ids = sel_pos.tolist()
    sel_dists = sel_d.tolist()
    # Prefix sums of the mask at each label boundary give each label's
    # slice of the selected entries.
    csum = np.cumsum(mask)
    start = 0
    boundary = 0
    for i, v in enumerate(order):
        boundary += counts[i]
        stop = int(csum[boundary - 1]) if boundary else 0
        seed_ids[v] = sel_ids[start:stop]
        seed_dists[v] = sel_dists[start:stop]
        seed_ids_np[v] = sel_pos[start:stop]
        seed_dists_np[v] = sel_d[start:stop]
        start = stop
    return labels, seed_ids, seed_dists, seed_ids_np, seed_dists_np


class FlatLabels(NamedTuple):
    """One frozen label table as seven flat arrays — the snapshot layout.

    ``keys`` holds the sorted vertex ids carrying a packed label;
    ``indptr`` (length ``len(keys) + 1``) delimits each vertex's slice of
    the parallel ``anc``/``dist`` arrays, and ``seed_indptr`` does the same
    for the pre-extracted Algorithm-1 seeds (``seed_ids`` are dense ``G_k``
    ids, ``seed_dists`` the matching label distances).  All arrays are
    ``int64``; they may live on the heap or be ``np.memmap`` views over a
    snapshot file — :class:`LabelTable` treats both identically.
    """

    keys: np.ndarray
    indptr: np.ndarray
    anc: np.ndarray
    dist: np.ndarray
    seed_indptr: np.ndarray
    seed_ids: np.ndarray
    seed_dists: np.ndarray


class LabelTable:
    """One frozen label table: per-vertex array labels plus dense seeds.

    The buffer-agnostic view struct behind the packed engines.  Two ways
    to come alive:

    * :meth:`pack` freezes live entry lists on the heap via
      :func:`pack_entry_lists` (the build/load-from-stream path);
    * :meth:`from_flat` adopts a :class:`FlatLabels` whose arrays may be
      ``np.memmap`` views over a snapshot file — per-vertex views are then
      materialized *lazily* on first touch (one ``searchsorted`` + two
      slices, no per-entry parsing), so a cold load costs O(1) and the OS
      page cache faults in only the labels a workload actually reads.

    Either way the query accessors (:meth:`label`, :meth:`seeds`,
    :meth:`seeds_np`) and the §8.3 incremental repair (:meth:`repack`,
    which splices freshly packed heap arrays over the stale views and
    evicts deleted vertices) run the same code path: the per-vertex dicts
    double as the override/cache layer in front of the optional flat
    backing.
    """

    __slots__ = (
        "labels",
        "seed_ids",
        "seed_dists",
        "seed_ids_np",
        "seed_dists_np",
        "flat",
        "_gone",
    )

    def __init__(
        self,
        labels: Optional[Dict[int, ArrayLabel]] = None,
        seed_ids: Optional[Dict[int, List[int]]] = None,
        seed_dists: Optional[Dict[int, List[int]]] = None,
        seed_ids_np: Optional[Dict[int, np.ndarray]] = None,
        seed_dists_np: Optional[Dict[int, np.ndarray]] = None,
        flat: Optional[FlatLabels] = None,
    ) -> None:
        self.labels = {} if labels is None else labels
        self.seed_ids = {} if seed_ids is None else seed_ids
        self.seed_dists = {} if seed_dists is None else seed_dists
        self.seed_ids_np = {} if seed_ids_np is None else seed_ids_np
        self.seed_dists_np = {} if seed_dists_np is None else seed_dists_np
        self.flat = flat
        self._gone: set = set()

    @classmethod
    def pack(cls, entry_lists, prebuilt, gk_ids: np.ndarray) -> "LabelTable":
        """Freeze live entry lists into a heap-backed table."""
        return cls(*pack_entry_lists(entry_lists, prebuilt, gk_ids))

    @classmethod
    def from_flat(cls, flat: FlatLabels) -> "LabelTable":
        """Adopt flat (possibly memmapped) arrays; views materialize lazily.

        ``np.memmap`` inputs are re-wrapped as plain ``ndarray`` views
        (zero-copy — same mapped buffer, kept alive through ``.base``, and
        pages still fault lazily): the memmap *subclass* carries heavy
        ``__array_finalize__``/``__getitem__`` machinery that would
        otherwise dominate per-label view materialization on the serving
        hot path.
        """
        return cls(flat=FlatLabels(*(np.asarray(arr) for arr in flat)))

    # ------------------------------------------------------------------
    # Query accessors
    # ------------------------------------------------------------------
    def _flat_pos(self, v: int) -> int:
        keys = self.flat.keys
        i = int(np.searchsorted(keys, v))
        if i < len(keys) and int(keys[i]) == v:
            return i
        return -1

    def _materialize(self, v: int, i: int) -> None:
        """Cache the label and numpy-seed views of flat position ``i``."""
        flat = self.flat
        lo, hi = int(flat.indptr[i]), int(flat.indptr[i + 1])
        self.labels[v] = (flat.anc[lo:hi], flat.dist[lo:hi])
        lo, hi = int(flat.seed_indptr[i]), int(flat.seed_indptr[i + 1])
        self.seed_ids_np[v] = flat.seed_ids[lo:hi]
        self.seed_dists_np[v] = flat.seed_dists[lo:hi]

    def label(self, v: int) -> Optional[ArrayLabel]:
        """Array label of ``v``, or ``None`` when the table has none."""
        got = self.labels.get(v)
        if got is not None:
            return got
        if self.flat is not None and v not in self._gone:
            i = self._flat_pos(v)
            if i >= 0:
                self._materialize(v, i)
                return self.labels[v]
        return None

    def seeds_np(self, v: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Dense-id seeds of ``v`` as numpy arrays, or ``None``."""
        ids = self.seed_ids_np.get(v)
        if ids is not None:
            return ids, self.seed_dists_np[v]
        if self.label(v) is None:
            return None
        ids = self.seed_ids_np.get(v)
        if ids is None:
            return None
        return ids, self.seed_dists_np[v]

    def seeds(self, v: int) -> Optional[Tuple[List[int], List[int]]]:
        """The seeds as Python lists (scalar search loop); lazily cached."""
        ids = self.seed_ids.get(v)
        if ids is not None:
            return ids, self.seed_dists[v]
        pair = self.seeds_np(v)
        if pair is None:
            return None
        ids = pair[0].tolist()
        dists = pair[1].tolist()
        self.seed_ids[v] = ids
        self.seed_dists[v] = dists
        return ids, dists

    # ------------------------------------------------------------------
    # §8.3 incremental repair
    # ------------------------------------------------------------------
    def repack(self, dirty, lists, gk_ids: np.ndarray) -> None:
        """Splice freshly packed arrays for ``dirty`` over this table.

        ``lists`` is the live entry-list dict (shared with the index
        facade, so it already reflects the mutations).  Dirty vertices
        present in ``lists`` get new array views (packed into a fresh
        backing pair — clean vertices keep their existing views); dirty
        vertices that disappeared (§8.3 deletions) are evicted, including
        from any flat backing.
        """
        present = {v: lists[v] for v in dirty if v in lists}
        packed = pack_entry_lists(present, {}, gk_ids)
        for target, fresh in zip(
            (
                self.labels,
                self.seed_ids,
                self.seed_dists,
                self.seed_ids_np,
                self.seed_dists_np,
            ),
            packed,
        ):
            target.update(fresh)
        if self.flat is not None:
            self._gone.difference_update(present)
        for v in dirty:
            if v not in present:
                for target in (
                    self.labels,
                    self.seed_ids,
                    self.seed_dists,
                    self.seed_ids_np,
                    self.seed_dists_np,
                ):
                    target.pop(v, None)
                if self.flat is not None:
                    self._gone.add(v)

    # ------------------------------------------------------------------
    # Introspection / flattening
    # ------------------------------------------------------------------
    def num_labels(self) -> int:
        if self.flat is not None:
            return len(self.flat.keys)
        return len(self.labels)

    def nbytes(self) -> int:
        if self.flat is not None:
            return int(self.flat.anc.nbytes + self.flat.dist.nbytes)
        total = 0
        for anc, d in self.labels.values():
            total += int(anc.nbytes + d.nbytes)
        return total

    def vertex_ids(self) -> List[int]:
        """Sorted vertex ids carrying a label (overrides + flat backing)."""
        if self.flat is None:
            return sorted(self.labels)
        ids = set(self.flat.keys.tolist())
        ids.difference_update(self._gone)
        ids.update(self.labels)
        return sorted(ids)

    def to_flat(self) -> FlatLabels:
        """Flatten the current state into :class:`FlatLabels`.

        Used when writing snapshots; materializes every label, so call it
        on the heap-frozen (or fully patched) state, not in a hot path.
        """
        keys = self.vertex_ids()
        indptr = np.zeros(len(keys) + 1, dtype=np.int64)
        seed_indptr = np.zeros(len(keys) + 1, dtype=np.int64)
        anc_parts: List[np.ndarray] = []
        dist_parts: List[np.ndarray] = []
        sid_parts: List[np.ndarray] = []
        sd_parts: List[np.ndarray] = []
        for j, v in enumerate(keys):
            anc, d = self.label(v)
            ids, dists = self.seeds_np(v)
            anc_parts.append(anc)
            dist_parts.append(d)
            sid_parts.append(ids)
            sd_parts.append(dists)
            indptr[j + 1] = indptr[j] + len(anc)
            seed_indptr[j + 1] = seed_indptr[j] + len(ids)

        def _cat(parts: List[np.ndarray]) -> np.ndarray:
            return np.concatenate(parts) if parts else _EMPTY.copy()

        return FlatLabels(
            np.array(keys, dtype=np.int64),
            indptr,
            _cat(anc_parts),
            _cat(dist_parts),
            seed_indptr,
            _cat(sid_parts),
            _cat(sd_parts),
        )


def fast_top_down_labels(
    hierarchy: VertexHierarchy,
) -> Tuple[Dict[int, List[Tuple[int, int]]], Dict[int, ArrayLabel]]:
    """Algorithm 4 with a sorted-array k-way min-merge for large labels.

    Returns ``(lists, arrays)``: the canonical sorted entry lists for every
    vertex (the same mathematical object as
    :func:`repro.core.labeling.top_down_labels` + ``sort_label``) plus the
    array form of every label that was merged vectorially, so the engine
    freeze can adopt them instead of re-converting.

    The per-vertex merge of the higher-level neighbours' labels dispatches
    on size: below ``_SMALL_MERGE`` entries a dict merge wins; above it the
    labels are concatenated as arrays, ``lexsort``-ed by
    ``(ancestor, dist)`` and reduced to the per-ancestor minimum by keeping
    the first entry of each group — no per-entry Python writes.
    """
    lists: Dict[int, List[Tuple[int, int]]] = {}
    arrays: Dict[int, ArrayLabel] = {}

    for v in hierarchy.gk.vertices():
        lists[v] = [(v, 0)]

    # levels[i] maps each peeled vertex to its removal-time adjacency, whose
    # endpoints all live at higher levels (Corollary 1) — iterate directly.
    for peeled in reversed(hierarchy.levels):
        for v, adjacency in peeled.items():
            total = 1
            for u, _ in adjacency:
                total += len(lists[u])
            if total <= _SMALL_MERGE:
                merged: Dict[int, int] = {v: 0}
                for u, weight in adjacency:
                    for a, du in lists[u]:
                        candidate = weight + du
                        old = merged.get(a)
                        if old is None or candidate < old:
                            merged[a] = candidate
                lists[v] = sorted(merged.items())
                continue
            parts_anc = [np.array([v], dtype=np.int64)]
            parts_d = [np.zeros(1, dtype=np.int64)]
            for u, weight in adjacency:
                got = arrays.get(u)
                if got is None:
                    got = arrays[u] = as_array_label(lists[u])
                anc_u, d_u = got
                parts_anc.append(anc_u)
                parts_d.append(d_u + weight)
            anc = np.concatenate(parts_anc)
            d = np.concatenate(parts_d)
            order = np.lexsort((d, anc))
            anc = anc[order]
            d = d[order]
            keep = np.empty(len(anc), dtype=bool)
            keep[0] = True
            np.not_equal(anc[1:], anc[:-1], out=keep[1:])
            anc = anc[keep]
            d = d[keep]
            arrays[v] = (anc, d)
            lists[v] = array_label_entries((anc, d))
    return lists, arrays


class LabelArrayPool:
    """Reusable dense search buffers for the CSR bidirectional Dijkstra.

    Algorithm 1 needs two distance maps, two settled sets and two
    tentative-dist markers over the dense ``0..n-1`` vertices of ``G_k``.
    Allocating (or worse, clearing) them per query dominates small-query
    cost, so the pool hands out the same six flat lists every time and
    invalidates stale entries with an epoch stamp: slot ``v`` is live only
    when ``stamp[v] == epoch``, and :meth:`acquire` bumps the epoch instead
    of zeroing anything.

    Plain Python lists, not ndarrays: the search loop is scalar, and
    CPython indexes a list several times faster than a numpy array.
    The pool is single-search-at-a-time — acquiring invalidates the
    previously handed-out buffers (fine for the sequential query loop;
    not thread-safe).
    """

    __slots__ = (
        "epoch",
        "dist_f",
        "dist_r",
        "seen_f",
        "seen_r",
        "done_f",
        "done_r",
        "_capacity",
    )

    def __init__(self) -> None:
        self.epoch = 0
        self._capacity = 0
        self.dist_f: List[int] = []
        self.dist_r: List[int] = []
        self.seen_f: List[int] = []
        self.seen_r: List[int] = []
        self.done_f: List[int] = []
        self.done_r: List[int] = []

    def acquire(self, n: int) -> int:
        """Invalidate previous buffers, grow to ``n`` slots, return the epoch."""
        if n > self._capacity:
            grow = n - self._capacity
            for buf in (
                self.dist_f,
                self.dist_r,
                self.seen_f,
                self.seen_r,
                self.done_f,
                self.done_r,
            ):
                buf.extend([0] * grow)
            self._capacity = n
        self.epoch += 1
        return self.epoch


class PackedEngineBase:
    """Shared query machinery of the packed-array engines.

    Everything the undirected :class:`FastEngine` and the directed
    :class:`repro.core.fastdirected.DirectedFastEngine` answer queries
    with is one code path parameterized by orientation: the subclass
    supplies ``eq1``, the per-side label accessors (``_label_f`` /
    ``_label_r``: Equation-1 inputs for a forward endpoint and a reverse
    endpoint), the per-side seed accessors (``_seeds_f[_np]`` /
    ``_seeds_r[_np]``) and :meth:`_search_arrays` (forward CSR triple plus
    the reverse triple — ``None`` s for an undirected graph, where one
    adjacency serves both directions).  This base then implements the
    :class:`repro.core.engines.QueryEngine` ``distance``/``distances``
    hot paths, the lazily row-filled all-pairs ``G_k`` table and its
    batched Theorem-4 reduction, identically for both orientations.

    It also implements the protocol's :meth:`invalidate`, including the
    §8.3 incremental path: given the set of vertices whose labels changed,
    it re-packs only those labels over the current ``G_k`` id space
    (:meth:`LabelTable.repack` splices the fresh array views over the
    stale ones), rebuilds the tiny CSR adjacency, and grows/repairs the all-pairs
    table instead of discarding it.  Subclasses supply the storage hooks
    (``_drop_frozen``, ``_rebuild_csr``, ``_repack``, ``_num_labels``,
    ``_backward_row``).
    """

    __slots__ = ()

    #: Registry name (`engines.py` protocol attribute).
    name = "fast"

    #: Default for ``incremental_max_fraction``: past this fraction of
    #: dirty labels (with an :data:`_INCREMENTAL_MIN_DIRTY` floor) an
    #: incremental invalidation re-packs enough of the index that one full
    #: re-freeze is cheaper.  Instances expose ``incremental_max_fraction``
    #: so dynamic workloads (and the benchmarks' forced-full ablation,
    #: which sets it to ``0``) can tune the tradeoff.
    INCREMENTAL_MAX_FRACTION = 0.25

    def _search_arrays(self):
        """``((indptr, indices, weights), (indptr_r, indices_r, weights_r))``
        for the stage-2 search; the reverse triple is ``(None, None, None)``
        when one adjacency serves both directions."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Small-G_k all-pairs table
    # ------------------------------------------------------------------
    @property
    def has_apsp(self) -> bool:
        """True when the search stage runs on the ``G_k`` distance table."""
        if not self.frozen:
            self.freeze()
        return self._apsp is not None

    def search_distance(
        self,
        seeds_s: Tuple[np.ndarray, np.ndarray],
        seeds_t: Tuple[np.ndarray, np.ndarray],
        bound: float,
    ) -> float:
        """Stage-2 answer ``min(bound, min_{a,b} d_a + dist_Gk(a,b) + d_b)``.

        Requires :attr:`has_apsp`; rows of the table are filled on first
        use by a plain Dijkstra over the (forward) CSR arrays — each row is
        computed at most once per engine lifetime, so a query workload
        amortizes the whole table while construction pays nothing.
        """
        ids_s, d_s = seeds_s
        ids_t, d_t = seeds_t
        table = self._apsp
        done = self._apsp_done
        for a in ids_s.tolist():
            if not done[a]:
                self._fill_apsp_row(a)
        sub = table[np.ix_(ids_s, ids_t)]
        best = (sub + d_s[:, None] + d_t[None, :]).min()
        if best < bound:
            return int(best)
        return bound

    def _dijkstra_row(self, a: int, indptr, indices, weights) -> List[float]:
        """Single-source Dijkstra from dense ``a`` over flat CSR arrays."""
        n = self.csr.num_vertices
        dist = [math.inf] * n
        dist[a] = 0
        heap = [a]  # encoded d * n + v
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, v = divmod(pop(heap), n)
            if d > dist[v]:
                continue
            for p in range(indptr[v], indptr[v + 1]):
                u = indices[p]
                candidate = d + weights[p]
                if candidate < dist[u]:
                    dist[u] = candidate
                    push(heap, candidate * n + u)
        return dist

    def _fill_apsp_row(self, a: int) -> None:
        """Fill table row ``a``: Dijkstra from ``a`` over the forward CSR."""
        self._apsp[a] = self._dijkstra_row(a, self.indptr, self.indices, self.weights)
        self._apsp_done[a] = True

    # ------------------------------------------------------------------
    # Invalidation (full and §8.3-incremental)
    # ------------------------------------------------------------------
    def invalidate(self, dirty: Optional[Iterable[int]] = None) -> None:
        """React to label/``G_k`` mutations behind the engine's back.

        ``dirty=None`` (or an incremental repair the engine cannot apply)
        drops every frozen structure; the next query re-freezes from the
        current entry lists.  With ``dirty`` — the vertices whose labels
        changed since the last freeze or invalidation — the engine instead
        re-packs just those labels and repairs the ``G_k`` structures in
        place, which is what makes §8.3 update streams cheap: IS-LABEL's
        augmenting-edge rule localizes label churn to the touched vertices'
        ancestor sets, so the dirty set stays small while the packed bulk
        of the index is untouched.

        The incremental path assumes §8.3-shaped mutations: label entry
        changes for the dirty vertices plus, optionally, new ``G_k``
        vertices (ids larger than every existing ``G_k`` id, as fresh
        vertex ids are) with arcs incident to them.  Anything it cannot
        prove safe — dense-id shifts from mid-range insertions or
        deletions, oversized dirty sets, unexpected adjacency edits — falls
        back to the full drop, so answers always match a from-scratch
        freeze bit for bit.
        """
        if dirty is not None and self._invalidate_incremental(set(dirty)):
            return
        self._drop_frozen()

    def _invalidate_incremental(self, dirty) -> bool:
        """Try the in-place repair; False means "fall back to a full drop"."""
        if not self.frozen:
            # Nothing frozen to patch — the next freeze reads the current
            # entry lists.  Only pre-merged arrays could go stale.
            self._forget_packed(dirty)
            return True
        fraction = self.incremental_max_fraction
        if fraction <= 0:
            return False
        if len(dirty) > max(_INCREMENTAL_MIN_DIRTY, fraction * self._num_labels()):
            return False
        old_csr = self.csr
        old_ids = old_csr.ids_array
        new_ids = np.array(sorted(self.gk.vertices()), dtype=np.int64)
        n_old = len(old_ids)
        appended = len(new_ids) - n_old
        if appended < 0 or not np.array_equal(new_ids[:n_old], old_ids):
            # G_k lost vertices, or gained mid-range ids: dense ids shift,
            # so every pre-extracted seed would need re-translation —
            # a full re-freeze is the honest cost.
            return False
        self._rebuild_csr()
        self._repack(dirty, new_ids)
        self._refresh_apsp(old_csr, appended)
        return True

    def _refresh_apsp(self, old_csr, appended: int) -> None:
        """Carry the all-pairs table across an incremental invalidation.

        Rows are lazily filled, so soundness only requires that ``done``
        rows hold exact current distances.  Three regimes:

        * ``G_k`` unchanged (pure label patching): the table is untouched.
        * one appended vertex ``x`` whose arcs are the only adjacency
          change (the §8.3 insert shape): the table grows and every filled
          row is *repaired* through the new vertex —
          ``d'(a, b) = min(d(a, b), d'(a, x) + d'(x, b))`` — which is exact
          because any new path must pass through ``x``;
        * anything else: the filled rows are evicted (``done`` cleared) and
          refill lazily from the new CSR; the allocation is kept.
        """
        n_new = self.csr.num_vertices
        n_old = old_csr.num_vertices
        if appended == 0:
            if self._apsp is not None and not self._same_adjacency(old_csr):
                self._apsp_done[:] = False
            return
        if self._apsp is None:
            if n_old == 0 and 0 < n_new <= self.apsp_max_gk:
                self._apsp = np.full((n_new, n_new), np.inf)
                self._apsp_done = np.zeros(n_new, dtype=bool)
            return
        if n_new > self.apsp_max_gk:
            self._apsp = None
            self._apsp_done = None
            return
        table = np.full((n_new, n_new), np.inf)
        table[:n_old, :n_old] = self._apsp
        done = np.zeros(n_new, dtype=bool)
        done[:n_old] = self._apsp_done
        self._apsp = table
        self._apsp_done = done
        rows = np.flatnonzero(done[:n_old])
        if not rows.size:
            return
        if appended == 1 and self._old_adjacency_preserved(old_csr):
            dx = n_old
            self._fill_apsp_row(dx)
            forward = table[dx]
            backward = self._backward_row(dx)
            table[rows] = np.minimum(
                table[rows], backward[rows][:, None] + forward[None, :]
            )
        else:
            done[:] = False

    def _same_adjacency(self, old_csr) -> bool:
        """True when the rebuilt forward CSR is identical to the old one."""
        new = self.csr
        return (
            np.array_equal(new.indptr, old_csr.indptr)
            and np.array_equal(new.indices, old_csr.indices)
            and np.array_equal(new.weights, old_csr.weights)
        )

    def _old_adjacency_preserved(self, old_csr) -> bool:
        """True when the old vertices' mutual adjacency is unchanged.

        With appended vertices, the new CSR restricted to dense ids below
        ``n_old`` must equal the old CSR exactly — then (and only then)
        every new path between old vertices passes through an appended
        vertex and the pivot repair in :meth:`_refresh_apsp` is exact.
        """
        new = self.csr
        n_old = old_csr.num_vertices
        src = np.repeat(
            np.arange(new.num_vertices, dtype=np.int64), np.diff(new.indptr)
        )
        sel = (src < n_old) & (new.indices < n_old)
        return (
            int(np.count_nonzero(sel)) == len(old_csr.indices)
            and np.array_equal(new.indices[sel], old_csr.indices)
            and np.array_equal(new.weights[sel], old_csr.weights)
            and np.array_equal(
                np.bincount(src[sel], minlength=n_old)[:n_old],
                np.diff(old_csr.indptr),
            )
        )

    def _forget_packed(self, dirty) -> None:
        """Drop any pre-freeze packed state for ``dirty`` (hook; no-op)."""

    def _backward_row(self, dx: int) -> np.ndarray:
        """``d'(a, x)`` for every dense ``a`` (reverse distances to ``dx``)."""
        raise NotImplementedError

    def _num_labels(self) -> int:
        """Number of frozen labels (the incremental-threshold denominator)."""
        raise NotImplementedError

    def _rebuild_csr(self) -> None:
        """Rebuild the CSR view(s) and flat search arrays from ``self.gk``."""
        raise NotImplementedError

    def _repack(self, dirty, gk_ids) -> None:
        """Re-pack the dirty labels of every label table."""
        raise NotImplementedError

    def _drop_frozen(self) -> None:
        """Full invalidation: drop every frozen structure."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # QueryEngine protocol: validated-query compute
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Exact distance between two covered vertices (no bookkeeping).

        The raw protocol hot path: Equation 1, pre-extracted seeds, then
        the table reduction or the CSR bidirectional Dijkstra.  Vertex
        coverage checks and I/O accounting belong to the index facade.
        """
        if source == target:
            return 0
        if not self.frozen:
            self.freeze()
        mu0, _ = self.eq1(source, target)
        if self._apsp is not None:
            seeds_f = self._seeds_f_np(source)
            seeds_r = self._seeds_r_np(target)
            if not len(seeds_f[0]) or not len(seeds_r[0]):
                return mu0
            return self.search_distance(seeds_f, seeds_r, mu0)
        seeds_f = self._seeds_f(source)
        seeds_r = self._seeds_r(target)
        if not len(seeds_f[0]) or not len(seeds_r[0]):
            return mu0
        forward, reverse = self._search_arrays()
        distance, _, _ = csr_label_bidijkstra(
            *forward,
            seeds_f,
            seeds_r,
            self.pool,
            self.csr.num_vertices,
            initial_mu=mu0,
            indptr_r=reverse[0],
            indices_r=reverse[1],
            weights_r=reverse[2],
        )
        return distance

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        """Batch :meth:`distance` with one vectorized Equation-1 stage.

        Stage 1 runs :func:`batch_eq1` once over the stacked label arrays
        of the whole batch (one ``searchsorted``, one scatter-min) instead
        of a per-pair merge.  In table mode, stage 2 vectorizes across the
        batch too (:func:`batch_table_stage`); in CSR mode it reuses the
        pooled search buffers across every remaining pair.
        """
        pairs = list(pairs)
        if not self.frozen:
            self.freeze()
        out: List[float] = [0] * len(pairs)
        live = [i for i, (s, t) in enumerate(pairs) if s != t]
        if not live:
            return out
        mu0s = batch_eq1(
            [self._label_f(pairs[i][0]) for i in live],
            [self._label_r(pairs[i][1]) for i in live],
        )
        if self._apsp is not None:
            seeds_f = [self._seeds_f_np(pairs[i][0]) for i in live]
            seeds_r = [self._seeds_r_np(pairs[i][1]) for i in live]
            # Seed-locality sort: order the batch by each query's first
            # forward-seed row so lazy APSP row fills (and the flat gather)
            # touch table rows in ascending, clustered order instead of
            # input order.  Answers are scattered back to input positions.
            order = sorted(
                range(len(live)),
                key=lambda j: int(seeds_f[j][0][0]) if len(seeds_f[j][0]) else -1,
            )
            answers = batch_table_stage(
                self._apsp,
                self._apsp_done,
                self._fill_apsp_row,
                [seeds_f[j] for j in order],
                [seeds_r[j] for j in order],
                mu0s[order],
            )
            for pos, j in enumerate(order):
                out[live[j]] = answers[pos]
            return out
        forward, reverse = self._search_arrays()
        n_gk = self.csr.num_vertices
        pool = self.pool
        for j, i in enumerate(live):
            s, t = pairs[i]
            mu0 = float(mu0s[j])
            sf = self._seeds_f(s)
            sr = self._seeds_r(t)
            if not len(sf[0]) or not len(sr[0]):
                out[i] = int(mu0) if mu0 != math.inf else mu0
                continue
            distance, _, _ = csr_label_bidijkstra(
                *forward,
                sf,
                sr,
                pool,
                n_gk,
                initial_mu=mu0,
                indptr_r=reverse[0],
                indices_r=reverse[1],
                weights_r=reverse[2],
            )
            out[i] = int(distance) if distance != math.inf else distance
        return out


class FastEngine(PackedEngineBase):
    """Frozen array-native query structures of one built IS-LABEL index.

    The undirected ``"fast"`` implementation of the
    :class:`repro.core.engines.QueryEngine` protocol.  Holds the
    :class:`CSRGraph` of ``G_k`` (plus flat Python-list mirrors of
    ``indptr/indices/weights`` for the scalar search loop), the packed
    label arrays, each label's pre-extracted ``G_k`` seeds in dense ids,
    the shared :class:`LabelArrayPool`, and — for small ``G_k`` — the lazy
    all-pairs ``G_k`` distance table.

    Construction is **lazy**: ``__init__`` only records the inputs, and the
    first query (or an explicit :meth:`freeze`) builds the CSR view, packs
    the labels and extracts the seeds in one vectorized batch.  Index build
    time therefore pays nothing for the engine; a serving workload absorbs
    one ~milliseconds-scale warm-up on its first query, which the batch
    benchmark amortizes away entirely.
    """

    __slots__ = (
        "gk",
        "csr",
        "entry_lists",
        "table",
        "pool",
        "indptr",
        "indices",
        "weights",
        "frozen",
        "apsp_max_gk",
        "incremental_max_fraction",
        "_prebuilt",
        "_apsp",
        "_apsp_done",
    )

    #: At or below this many entries (on both sides) the scalar two-pointer
    #: merge over the canonical entry lists beats the numpy intersection's
    #: call overhead; :meth:`eq1` switches on it.
    EQ1_SMALL = 32

    def __init__(
        self,
        gk: Graph,
        entry_lists: Dict[int, List[Tuple[int, int]]],
        arrays: Optional[Dict[int, ArrayLabel]] = None,
        apsp_budget_bytes: Optional[int] = None,
    ) -> None:
        self.gk = gk
        self.entry_lists = entry_lists
        self._prebuilt: Dict[int, ArrayLabel] = arrays or {}
        self.pool = LabelArrayPool()
        self.frozen = False
        #: Keep an all-pairs ``G_k`` distance table when ``|V_Gk|`` is at
        #: most this; derived from the memory budget (constructor arg, the
        #: :data:`APSP_BUDGET_ENV` variable, or the 32 MB default — the
        #: default works out to the 2048-vertex ceiling of PR 1).  Above
        #: it, the search stage runs the CSR bidirectional Dijkstra.
        self.apsp_max_gk = apsp_ceiling(apsp_budget_bytes)
        #: Dirty-set fraction above which ``invalidate(dirty=...)`` falls
        #: back to a full re-freeze; ``<= 0`` disables the incremental path.
        self.incremental_max_fraction = self.INCREMENTAL_MAX_FRACTION
        self.csr: Optional[CSRGraph] = None
        self.indptr: List[int] = []
        self.indices: List[int] = []
        self.weights: List[int] = []
        self.table: Optional[LabelTable] = None
        self._apsp: Optional[np.ndarray] = None
        self._apsp_done: Optional[np.ndarray] = None

    # Backwards-compatible alias used by tests and by ISLabelIndex.
    @classmethod
    def from_entry_lists(
        cls, gk: Graph, labels: Dict[int, List[Tuple[int, int]]]
    ) -> "FastEngine":
        """Build the engine from the canonical list-of-tuples labels."""
        return cls(gk, labels)

    # ------------------------------------------------------------------
    # Freezing: CSR view, packed labels, seed extraction (first use)
    # ------------------------------------------------------------------
    def freeze(self) -> "FastEngine":
        """Materialize the array structures (idempotent; see class docs)."""
        if self.frozen:
            return self
        self.frozen = True
        self._rebuild_csr()
        self.table = LabelTable.pack(
            self.entry_lists, self._prebuilt, self.csr.ids_array
        )
        self._prebuilt = {}
        n = self.csr.num_vertices
        if 0 < n <= self.apsp_max_gk:
            self._apsp = np.full((n, n), np.inf)
            self._apsp_done = np.zeros(n, dtype=bool)
        return self

    def _drop_frozen(self) -> None:
        """Full invalidation: drop the frozen structures and any pre-merged
        arrays; the next query re-freezes from the current entry lists."""
        self.frozen = False
        self.csr = None
        self.indptr = []
        self.indices = []
        self.weights = []
        self.table = None
        self._prebuilt = {}
        self._apsp = None
        self._apsp_done = None

    # Backwards-compatible views of the frozen table (tests and debugging).
    @property
    def labels(self) -> Dict[int, ArrayLabel]:
        return self.table.labels if self.table is not None else {}

    @property
    def _seed_ids(self) -> Dict[int, List[int]]:
        return self.table.seed_ids if self.table is not None else {}

    def _forget_packed(self, dirty) -> None:
        """Pre-freeze invalidation: only the pre-merged arrays can be stale."""
        for v in dirty:
            self._prebuilt.pop(v, None)

    def _num_labels(self) -> int:
        return len(self.entry_lists)

    def _rebuild_csr(self) -> None:
        self.csr = CSRGraph(self.gk)
        self.indptr = self.csr.indptr.tolist()
        self.indices = self.csr.indices.tolist()
        self.weights = self.csr.weights.tolist()

    def _repack(self, dirty, gk_ids) -> None:
        self.table.repack(dirty, self.entry_lists, gk_ids)

    def _backward_row(self, dx: int) -> np.ndarray:
        # Undirected G_k: distances are symmetric, reuse the forward row.
        return self._apsp[dx]

    # ------------------------------------------------------------------
    # Labels and seeds
    # ------------------------------------------------------------------
    def label(self, v: int) -> ArrayLabel:
        """Array label of ``v`` (implicit ``([v], [0])`` for bare G_k ids)."""
        if not self.frozen:
            self.freeze()
        got = self.table.label(v)
        if got is not None:
            return got
        return np.array([v], dtype=np.int64), np.zeros(1, dtype=np.int64)

    def eq1(self, source: int, target: int) -> Tuple[float, int]:
        """Equation 1 between two labels: ``(distance, argmin ancestor)``.

        Hybrid dispatch: small-by-small runs the scalar merge over the
        canonical entry lists (e.g. the singleton labels of two ``G_k``
        endpoints — the bulk of Type-1 traffic); everything else takes the
        vectorized merge intersection.  Both return identical answers.
        """
        entries_s = self.entry_lists.get(source)
        entries_t = self.entry_lists.get(target)
        if (
            entries_s is not None
            and entries_t is not None
            and len(entries_s) <= self.EQ1_SMALL
            and len(entries_t) <= self.EQ1_SMALL
        ):
            return eq1_distance_argmin(entries_s, entries_t)
        return eq1_merge(self.label(source), self.label(target))

    def seeds(self, v: int) -> Tuple[List[int], List[int]]:
        """Dense-id Algorithm-1 seeds of ``label(v)`` (pre-extracted)."""
        if not self.frozen:
            self.freeze()
        got = self.table.seeds(v)
        if got is not None:
            return got
        return self._fallback_seeds(v)[:2]

    def seeds_np(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """The seeds as numpy arrays (for the APSP reduction)."""
        if not self.frozen:
            self.freeze()
        got = self.table.seeds_np(v)
        if got is not None:
            return got
        fallback = self._fallback_seeds(v)
        return fallback[2], fallback[3]

    def _fallback_seeds(self, v: int):
        """Seeds of a vertex missing from the label tables (bare G_k id)."""
        if self.csr.has_vertex(v):
            dense = self.csr.dense_of[v]
            return (
                [dense],
                [0],
                np.array([dense], dtype=np.int64),
                np.zeros(1, dtype=np.int64),
            )
        return [], [], _EMPTY, _EMPTY

    # PackedEngineBase hooks: on an undirected graph both query sides read
    # the same label table and one adjacency serves both searches.
    _label_f = label
    _label_r = label
    _seeds_f = seeds
    _seeds_r = seeds
    _seeds_f_np = seeds_np
    _seeds_r_np = seeds_np

    def _search_arrays(self):
        return (self.indptr, self.indices, self.weights), (None, None, None)

    def nbytes(self) -> int:
        """Approximate footprint of the CSR arrays plus packed labels."""
        if not self.frozen:
            self.freeze()
        total = self.csr.nbytes() + self.table.nbytes()
        if self._apsp is not None:
            total += int(self._apsp.nbytes)
        return total


register_engine(UNDIRECTED, FastEngine.name, FastEngine, {CAP_LOCAL})
