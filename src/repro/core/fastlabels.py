"""Array-native label storage — the "fast" query engine's data plane.

The reference implementation keeps every query-time label as a Python list
of ``(ancestor, distance)`` tuples and runs Algorithm 1 over the dict
adjacency of ``G_k``.  That is faithful but slow: hub-labeling schemes live
or die on memory layout and scan speed.  This module provides the
flat-array equivalents behind ``ISLabelIndex.build(..., engine="fast")``:

* all labels live in **one packed pair of parallel ``int64`` arrays**
  (ancestors, distances) sorted by ancestor id within each label — the
  paper's on-disk layout (§6.2); per-vertex labels are zero-copy views, so
  freezing the engine is a single batch conversion, and Equation 1 is a
  merge over two sorted arrays (:func:`eq1_merge`, with a scalar fallback
  for tiny labels where numpy call overhead dominates);
* :func:`fast_top_down_labels` runs Algorithm 4's merge as a sorted-array
  k-way min-merge (``np.lexsort`` + first-of-group selection) whenever the
  merged label is large, falling back to the dict merge below the measured
  crossover;
* :class:`FastEngine` freezes ``G_k`` into a :class:`CSRGraph` once at
  build time, pre-extracts every label's Algorithm-1 seeds (the entries
  whose ancestor lies in ``G_k``) as dense-id arrays with a single
  vectorized membership pass, and owns the shared :class:`LabelArrayPool`
  of search buffers so batch queries stop re-allocating per call;
* when ``G_k`` is small (the common case for the paper's σ-rule on
  well-shrinking graphs), the engine answers the search stage from a
  lazily-filled **all-pairs distance table** over ``G_k``: by the
  decomposition behind Theorem 4 the query equals
  ``min(µ0, min_{a,b} d(s,a) + dist_Gk(a,b) + d(b,t))`` over the two seed
  sets, which one fancy-indexed numpy reduction evaluates — answers are
  bit-identical to running Algorithm 1's bidirectional search.

The engine is read-only by design: dynamic maintenance (§8.3) mutates
labels in place and therefore runs on the dict engine
(see :class:`repro.core.updates.DynamicISLabelIndex`).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hierarchy import VertexHierarchy
from repro.core.labels import eq1_distance_argmin
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph

__all__ = [
    "ArrayLabel",
    "as_array_label",
    "array_label_entries",
    "eq1_merge",
    "fast_top_down_labels",
    "LabelArrayPool",
    "FastEngine",
]

#: A query-time label as parallel arrays: ``(ancestors, dists)``, both
#: ``int64``, sorted by ancestor id.
ArrayLabel = Tuple[np.ndarray, np.ndarray]

#: Below this many merged entries Algorithm 4's per-vertex merge is faster
#: as a plain dict than as numpy concatenate + lexsort (call overhead);
#: measured crossover on CPython 3.11 / numpy 2.x.
_SMALL_MERGE = 48

_EMPTY = np.empty(0, dtype=np.int64)


def as_array_label(entries: Sequence[Tuple[int, int]]) -> ArrayLabel:
    """Freeze a sorted ``(ancestor, distance)`` entry list into arrays."""
    if not entries:
        return _EMPTY, _EMPTY
    anc, d = zip(*entries)
    return np.array(anc, dtype=np.int64), np.array(d, dtype=np.int64)


def array_label_entries(label: ArrayLabel) -> List[Tuple[int, int]]:
    """Materialize an array label back into the list-of-tuples form."""
    ancestors, dists = label
    return list(zip(ancestors.tolist(), dists.tolist()))


def eq1_merge(label_s: ArrayLabel, label_t: ArrayLabel) -> Tuple[float, int]:
    """Equation 1 over two array labels: ``(distance, argmin ancestor)``.

    Merge-intersects the sorted ancestor arrays and minimizes
    ``d(s, w) + d(w, t)`` over the common ancestors ``w``; returns
    ``(inf, -1)`` when the intersection is empty.
    """
    anc_s, d_s = label_s
    anc_t, d_t = label_t
    if len(anc_s) == 0 or len(anc_t) == 0:
        return math.inf, -1
    common, pos_s, pos_t = np.intersect1d(
        anc_s, anc_t, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        return math.inf, -1
    sums = d_s[pos_s] + d_t[pos_t]
    j = int(np.argmin(sums))
    return int(sums[j]), int(common[j])


def fast_top_down_labels(
    hierarchy: VertexHierarchy,
) -> Tuple[Dict[int, List[Tuple[int, int]]], Dict[int, ArrayLabel]]:
    """Algorithm 4 with a sorted-array k-way min-merge for large labels.

    Returns ``(lists, arrays)``: the canonical sorted entry lists for every
    vertex (the same mathematical object as
    :func:`repro.core.labeling.top_down_labels` + ``sort_label``) plus the
    array form of every label that was merged vectorially, so the engine
    freeze can adopt them instead of re-converting.

    The per-vertex merge of the higher-level neighbours' labels dispatches
    on size: below ``_SMALL_MERGE`` entries a dict merge wins; above it the
    labels are concatenated as arrays, ``lexsort``-ed by
    ``(ancestor, dist)`` and reduced to the per-ancestor minimum by keeping
    the first entry of each group — no per-entry Python writes.
    """
    lists: Dict[int, List[Tuple[int, int]]] = {}
    arrays: Dict[int, ArrayLabel] = {}

    for v in hierarchy.gk.vertices():
        lists[v] = [(v, 0)]

    # levels[i] maps each peeled vertex to its removal-time adjacency, whose
    # endpoints all live at higher levels (Corollary 1) — iterate directly.
    for peeled in reversed(hierarchy.levels):
        for v, adjacency in peeled.items():
            total = 1
            for u, _ in adjacency:
                total += len(lists[u])
            if total <= _SMALL_MERGE:
                merged: Dict[int, int] = {v: 0}
                for u, weight in adjacency:
                    for a, du in lists[u]:
                        candidate = weight + du
                        old = merged.get(a)
                        if old is None or candidate < old:
                            merged[a] = candidate
                lists[v] = sorted(merged.items())
                continue
            parts_anc = [np.array([v], dtype=np.int64)]
            parts_d = [np.zeros(1, dtype=np.int64)]
            for u, weight in adjacency:
                got = arrays.get(u)
                if got is None:
                    got = arrays[u] = as_array_label(lists[u])
                anc_u, d_u = got
                parts_anc.append(anc_u)
                parts_d.append(d_u + weight)
            anc = np.concatenate(parts_anc)
            d = np.concatenate(parts_d)
            order = np.lexsort((d, anc))
            anc = anc[order]
            d = d[order]
            keep = np.empty(len(anc), dtype=bool)
            keep[0] = True
            np.not_equal(anc[1:], anc[:-1], out=keep[1:])
            anc = anc[keep]
            d = d[keep]
            arrays[v] = (anc, d)
            lists[v] = array_label_entries((anc, d))
    return lists, arrays


class LabelArrayPool:
    """Reusable dense search buffers for the CSR bidirectional Dijkstra.

    Algorithm 1 needs two distance maps, two settled sets and two
    tentative-dist markers over the dense ``0..n-1`` vertices of ``G_k``.
    Allocating (or worse, clearing) them per query dominates small-query
    cost, so the pool hands out the same six flat lists every time and
    invalidates stale entries with an epoch stamp: slot ``v`` is live only
    when ``stamp[v] == epoch``, and :meth:`acquire` bumps the epoch instead
    of zeroing anything.

    Plain Python lists, not ndarrays: the search loop is scalar, and
    CPython indexes a list several times faster than a numpy array.
    The pool is single-search-at-a-time — acquiring invalidates the
    previously handed-out buffers (fine for the sequential query loop;
    not thread-safe).
    """

    __slots__ = (
        "epoch",
        "dist_f",
        "dist_r",
        "seen_f",
        "seen_r",
        "done_f",
        "done_r",
        "_capacity",
    )

    def __init__(self) -> None:
        self.epoch = 0
        self._capacity = 0
        self.dist_f: List[int] = []
        self.dist_r: List[int] = []
        self.seen_f: List[int] = []
        self.seen_r: List[int] = []
        self.done_f: List[int] = []
        self.done_r: List[int] = []

    def acquire(self, n: int) -> int:
        """Invalidate previous buffers, grow to ``n`` slots, return the epoch."""
        if n > self._capacity:
            grow = n - self._capacity
            for buf in (
                self.dist_f,
                self.dist_r,
                self.seen_f,
                self.seen_r,
                self.done_f,
                self.done_r,
            ):
                buf.extend([0] * grow)
            self._capacity = n
        self.epoch += 1
        return self.epoch


class FastEngine:
    """Frozen array-native query structures of one built IS-LABEL index.

    Holds the :class:`CSRGraph` of ``G_k`` (plus flat Python-list mirrors
    of ``indptr/indices/weights`` for the scalar search loop), the packed
    label arrays, each label's pre-extracted ``G_k`` seeds in dense ids,
    the shared :class:`LabelArrayPool`, and — for small ``G_k`` — the lazy
    all-pairs ``G_k`` distance table.

    Construction is **lazy**: ``__init__`` only records the inputs, and the
    first query (or an explicit :meth:`freeze`) builds the CSR view, packs
    the labels and extracts the seeds in one vectorized batch.  Index build
    time therefore pays nothing for the engine; a serving workload absorbs
    one ~milliseconds-scale warm-up on its first query, which the batch
    benchmark amortizes away entirely.
    """

    __slots__ = (
        "gk",
        "csr",
        "entry_lists",
        "labels",
        "pool",
        "indptr",
        "indices",
        "weights",
        "frozen",
        "_prebuilt",
        "_seed_ids",
        "_seed_dists",
        "_seed_ids_np",
        "_seed_dists_np",
        "_apsp",
        "_apsp_done",
    )

    #: At or below this many entries (on both sides) the scalar two-pointer
    #: merge over the canonical entry lists beats the numpy intersection's
    #: call overhead; :meth:`eq1` switches on it.
    EQ1_SMALL = 32

    #: Keep an all-pairs ``G_k`` distance table when ``|V_Gk|`` is at most
    #: this (8 bytes per cell: 2048² = 32 MB ceiling).  Above it, the
    #: search stage falls back to the CSR bidirectional Dijkstra.
    APSP_MAX_GK = 2048

    def __init__(
        self,
        gk: Graph,
        entry_lists: Dict[int, List[Tuple[int, int]]],
        arrays: Optional[Dict[int, ArrayLabel]] = None,
    ) -> None:
        self.gk = gk
        self.entry_lists = entry_lists
        self._prebuilt: Dict[int, ArrayLabel] = arrays or {}
        self.pool = LabelArrayPool()
        self.frozen = False
        self.csr: Optional[CSRGraph] = None
        self.indptr: List[int] = []
        self.indices: List[int] = []
        self.weights: List[int] = []
        self.labels: Dict[int, ArrayLabel] = {}
        self._seed_ids: Dict[int, List[int]] = {}
        self._seed_dists: Dict[int, List[int]] = {}
        self._seed_ids_np: Dict[int, np.ndarray] = {}
        self._seed_dists_np: Dict[int, np.ndarray] = {}
        self._apsp: Optional[np.ndarray] = None
        self._apsp_done: Optional[np.ndarray] = None

    # Backwards-compatible alias used by tests and by ISLabelIndex.
    @classmethod
    def from_entry_lists(
        cls, gk: Graph, labels: Dict[int, List[Tuple[int, int]]]
    ) -> "FastEngine":
        """Build the engine from the canonical list-of-tuples labels."""
        return cls(gk, labels)

    # ------------------------------------------------------------------
    # Freezing: CSR view, packed labels, seed extraction (first use)
    # ------------------------------------------------------------------
    def freeze(self) -> "FastEngine":
        """Materialize the array structures (idempotent; see class docs)."""
        if self.frozen:
            return self
        self.frozen = True
        self.csr = CSRGraph(self.gk)
        self.indptr = self.csr.indptr.tolist()
        self.indices = self.csr.indices.tolist()
        self.weights = self.csr.weights.tolist()
        self._pack_labels(self._prebuilt)
        self._prebuilt = {}
        n = self.csr.num_vertices
        if 0 < n <= self.APSP_MAX_GK:
            self._apsp = np.full((n, n), np.inf)
            self._apsp_done = np.zeros(n, dtype=bool)
        return self

    def _pack_labels(self, prebuilt: Dict[int, ArrayLabel]) -> None:
        """Freeze every entry list into label arrays, batched.

        Labels the array-native labeler already merged vectorially are
        adopted as-is; the rest (the small-label majority) are packed into
        views over two backing arrays with one batched conversion (two flat
        extends + two ``np.array`` calls) instead of a per-vertex
        allocation.  The concatenated ancestor array then drives the
        vectorized seed extraction: the dense id of a ``G_k`` vertex equals
        its rank among the sorted ``G_k`` ids (CSR order), so membership
        and dense translation come from a single ``searchsorted`` over all
        labels at once.
        """
        order = list(self.entry_lists)
        labels = self.labels
        counts: List[int] = []
        flat_anc: List[int] = []
        flat_d: List[int] = []
        packed: List[Tuple[int, int]] = []  # (order position, start offset)
        for i, v in enumerate(order):
            entries = self.entry_lists[v]
            counts.append(len(entries))
            ready = prebuilt.get(v)
            if ready is not None:
                labels[v] = ready
                continue
            packed.append((i, len(flat_anc)))
            if entries:
                anc, d = zip(*entries)
                flat_anc.extend(anc)
                flat_d.extend(d)
        pack_anc = np.array(flat_anc, dtype=np.int64)
        pack_d = np.array(flat_d, dtype=np.int64)
        for i, start in packed:
            v = order[i]
            labels[v] = (
                pack_anc[start : start + counts[i]],
                pack_d[start : start + counts[i]],
            )

        n = self.csr.num_vertices
        total = sum(counts)
        if n == 0 or total == 0:
            for v in order:
                self._seed_ids[v] = []
                self._seed_dists[v] = []
                self._seed_ids_np[v] = _EMPTY
                self._seed_dists_np[v] = _EMPTY
            return
        all_anc = np.concatenate([labels[v][0] for v in order])
        all_d = np.concatenate([labels[v][1] for v in order])
        gk_ids = self.csr.ids_array
        pos = np.searchsorted(gk_ids, all_anc)
        pos[pos == n] = 0  # clamp before the gather; equality below rejects these
        mask = gk_ids[pos] == all_anc
        sel_pos = pos[mask]
        sel_d = all_d[mask]
        sel_ids = sel_pos.tolist()
        sel_dists = sel_d.tolist()
        # Prefix sums of the mask at each label boundary give each label's
        # slice of the selected entries.
        csum = np.cumsum(mask)
        start = 0
        boundary = 0
        for i, v in enumerate(order):
            boundary += counts[i]
            stop = int(csum[boundary - 1]) if boundary else 0
            self._seed_ids[v] = sel_ids[start:stop]
            self._seed_dists[v] = sel_dists[start:stop]
            self._seed_ids_np[v] = sel_pos[start:stop]
            self._seed_dists_np[v] = sel_d[start:stop]
            start = stop

    # ------------------------------------------------------------------
    # Labels and seeds
    # ------------------------------------------------------------------
    def label(self, v: int) -> ArrayLabel:
        """Array label of ``v`` (implicit ``([v], [0])`` for bare G_k ids)."""
        if not self.frozen:
            self.freeze()
        got = self.labels.get(v)
        if got is not None:
            return got
        return np.array([v], dtype=np.int64), np.zeros(1, dtype=np.int64)

    def eq1(self, source: int, target: int) -> Tuple[float, int]:
        """Equation 1 between two labels: ``(distance, argmin ancestor)``.

        Hybrid dispatch: small-by-small runs the scalar merge over the
        canonical entry lists (e.g. the singleton labels of two ``G_k``
        endpoints — the bulk of Type-1 traffic); everything else takes the
        vectorized merge intersection.  Both return identical answers.
        """
        entries_s = self.entry_lists.get(source)
        entries_t = self.entry_lists.get(target)
        if (
            entries_s is not None
            and entries_t is not None
            and len(entries_s) <= self.EQ1_SMALL
            and len(entries_t) <= self.EQ1_SMALL
        ):
            return eq1_distance_argmin(entries_s, entries_t)
        return eq1_merge(self.label(source), self.label(target))

    def seeds(self, v: int) -> Tuple[List[int], List[int]]:
        """Dense-id Algorithm-1 seeds of ``label(v)`` (pre-extracted)."""
        if not self.frozen:
            self.freeze()
        ids = self._seed_ids.get(v)
        if ids is not None:
            return ids, self._seed_dists[v]
        return self._fallback_seeds(v)[:2]

    def seeds_np(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """The seeds as numpy arrays (for the APSP reduction)."""
        if not self.frozen:
            self.freeze()
        ids = self._seed_ids_np.get(v)
        if ids is not None:
            return ids, self._seed_dists_np[v]
        fallback = self._fallback_seeds(v)
        return fallback[2], fallback[3]

    def _fallback_seeds(self, v: int):
        """Seeds of a vertex missing from the label tables (bare G_k id)."""
        if self.csr.has_vertex(v):
            dense = self.csr.dense_of[v]
            return (
                [dense],
                [0],
                np.array([dense], dtype=np.int64),
                np.zeros(1, dtype=np.int64),
            )
        return [], [], _EMPTY, _EMPTY

    # ------------------------------------------------------------------
    # Small-G_k all-pairs table
    # ------------------------------------------------------------------
    @property
    def has_apsp(self) -> bool:
        """True when the search stage runs on the ``G_k`` distance table."""
        if not self.frozen:
            self.freeze()
        return self._apsp is not None

    def search_distance(
        self,
        seeds_s: Tuple[np.ndarray, np.ndarray],
        seeds_t: Tuple[np.ndarray, np.ndarray],
        bound: float,
    ) -> float:
        """Stage-2 answer ``min(bound, min_{a,b} d_a + dist_Gk(a,b) + d_b)``.

        Requires :attr:`has_apsp`; rows of the table are filled on first
        use by a plain Dijkstra over the CSR arrays (each row is computed
        at most once per engine lifetime, so a query workload amortizes the
        whole table while construction pays nothing).
        """
        ids_s, d_s = seeds_s
        ids_t, d_t = seeds_t
        table = self._apsp
        done = self._apsp_done
        for a in ids_s.tolist():
            if not done[a]:
                self._fill_apsp_row(a)
        sub = table[np.ix_(ids_s, ids_t)]
        best = (sub + d_s[:, None] + d_t[None, :]).min()
        if best < bound:
            return int(best)
        return bound

    def _fill_apsp_row(self, a: int) -> None:
        """Single-source Dijkstra from dense ``a`` over the CSR lists."""
        n = self.csr.num_vertices
        indptr, indices, weights = self.indptr, self.indices, self.weights
        dist = [math.inf] * n
        dist[a] = 0
        heap = [a]  # encoded d * n + v
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, v = divmod(pop(heap), n)
            if d > dist[v]:
                continue
            for p in range(indptr[v], indptr[v + 1]):
                u = indices[p]
                candidate = d + weights[p]
                if candidate < dist[u]:
                    dist[u] = candidate
                    push(heap, candidate * n + u)
        self._apsp[a] = dist
        self._apsp_done[a] = True

    def nbytes(self) -> int:
        """Approximate footprint of the CSR arrays plus packed labels."""
        if not self.frozen:
            self.freeze()
        total = self.csr.nbytes()
        for anc, d in self.labels.values():
            total += int(anc.nbytes + d.nbytes)
        if self._apsp is not None:
            total += int(self._apsp.nbytes)
        return total
